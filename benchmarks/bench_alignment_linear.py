"""Micro-benchmark: the alignment's O(|p| + |q|) claim (§4.3).

Times the greedy alignment over growing path lengths and asserts the
per-element cost stays flat — the observable signature of linear time.
Also benches the DP reference for contrast (it is O(|p|·|q|)).  Run::

    pytest benchmarks/bench_alignment_linear.py --benchmark-only -s
"""

import time

import pytest

from repro.paths.alignment import align, align_optimal
from repro.paths.model import Path
from repro.rdf.terms import URI, Variable
from repro.scoring.weights import PAPER_WEIGHTS

_LENGTHS = [8, 32, 128, 512]

_PER_ELEMENT: dict[int, float] = {}


def _make_paths(length: int):
    nodes = [URI(f"http://x/n{i}") for i in range(length)]
    edges = [URI(f"http://x/e{i}") for i in range(length - 1)]
    data_path = Path(nodes, edges)
    query_nodes = [Variable(f"v{i}") if i % 3 else nodes[i]
                   for i in range(length)]
    query_path = Path(query_nodes, edges)
    return data_path, query_path


@pytest.mark.parametrize("length", _LENGTHS)
def test_greedy_alignment_scales_linearly(benchmark, length):
    data_path, query_path = _make_paths(length)
    result = benchmark(align, data_path, query_path)
    assert result is not None
    # Record per-element time out-of-band for the report test.
    started = time.perf_counter()
    rounds = 50
    for _ in range(rounds):
        align(data_path, query_path)
    elapsed = (time.perf_counter() - started) / rounds
    _PER_ELEMENT[length] = elapsed / length


@pytest.mark.parametrize("length", [8, 32, 64])
def test_optimal_alignment_quadratic_reference(benchmark, length):
    data_path, query_path = _make_paths(length)
    benchmark(align_optimal, data_path, query_path, PAPER_WEIGHTS)


def test_linearity_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_PER_ELEMENT) == len(_LENGTHS), "timings did not run"
    print("\nalignment cost per path element (µs):")
    for length in _LENGTHS:
        print(f"  |p| = {length:4d}: {_PER_ELEMENT[length] * 1e6:8.3f}")
    # Linear time = flat per-element cost.  Allow generous jitter: the
    # largest per-element cost may not exceed ~4x the smallest.
    costs = [_PER_ELEMENT[length] for length in _LENGTHS]
    assert max(costs) <= 4 * min(costs)
