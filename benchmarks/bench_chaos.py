"""Chaos benchmark: availability and degradation under shard loss.

Runs the Fig. 6 LUBM workload (cold cache every round) against one
4-shard index while a seeded :class:`FaultPlan` hard-fails a growing
number of shards, and measures what the resilience layer actually
buys:

- **availability** — the fraction of queries that return at all
  (complete or degraded) instead of raising.  With fault isolation a
  dead shard's candidates are dropped and the surviving shards' k-way
  merge still answers, so availability should stay at 1.0 while up to
  half the shards are down;
- **degraded fraction** — how many of those answers carry a
  ``SHARD_FAILED`` degradation reason (honesty: losing a shard must be
  *visible*, not silent);
- **breaker effect** — wall-clock per query before and after the dead
  shard's circuit breaker opens.  The first queries pay the storage
  retries that trip the breaker; once open, dispatch skips the shard
  and the failure costs nothing per query.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full run
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke    # CI gate

Results land in ``BENCH_chaos.json`` (committed, machine-readable)
and ``results/chaos.txt``.  ``--smoke`` runs a reduced workload and
fails (exit 1) when availability under shard loss drops below
``AVAILABILITY_FLOOR``, when a no-fault run reports any degradation,
or when a faulted run hides the loss (no ``SHARD_FAILED`` reasons).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import EngineConfig, SamaEngine  # noqa: E402
from repro.resilience import FaultPlan, install, uninstall  # noqa: E402
from repro.resilience.budget import DegradationCause  # noqa: E402

#: Same workload subset as ``bench_sharding.py`` / Fig. 6.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
SHARDS = 4
#: Conditions: how many of the 4 shards the plan hard-fails.
DEAD_COUNTS = (0, 1, 2)
WORKERS = 4
SEED = 7

#: Queries must keep answering while a minority of shards is down.
AVAILABILITY_FLOOR = 0.99

JSON_PATH = REPO_ROOT / "BENCH_chaos.json"
TXT_PATH = REPO_ROOT / "results" / "chaos.txt"


def _shard_failed(result) -> bool:
    return any(reason.cause is DegradationCause.SHARD_FAILED
               for reason in result.reasons)


def run_bench(triples: int, rounds: int, k: int, seed: int = 0) -> dict:
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]

    conditions: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="sama-chaos-") as directory:
        from repro.index.sharded import build_sharded_index

        index_dir = os.path.join(directory, f"shards{SHARDS}")
        index, _ = build_sharded_index(graph, index_dir, SHARDS)
        index.close()

        for dead in DEAD_COUNTS:
            name = f"dead{dead}"
            engine = SamaEngine.open(
                index_dir, config=EngineConfig(workers=WORKERS))
            plan = FaultPlan(fail_shards=tuple(range(dead)), seed=SEED)
            install(engine, plan)
            attempts = answered = degraded = errors = 0
            latencies: list[float] = []
            try:
                for _ in range(rounds):
                    for spec in queries:
                        engine.cold_cache()
                        attempts += 1
                        started = time.perf_counter()
                        try:
                            result = engine.query(spec.graph, k=k)
                        except Exception:  # unavailability, whatever the type
                            errors += 1
                            continue
                        latencies.append(time.perf_counter() - started)
                        answered += 1
                        if _shard_failed(result):
                            degraded += 1
                trips = sum(row["trips"]
                            for row in engine.index.health.snapshot())
            finally:
                uninstall(engine)
                engine.close()
            latencies.sort()
            conditions[name] = {
                "dead_shards": dead,
                "attempts": attempts,
                "answered": answered,
                "errors": errors,
                "availability": round(answered / attempts, 4),
                "degraded": degraded,
                "degraded_fraction": round(degraded / attempts, 4),
                "breaker_trips": trips,
                "first_query_ms": round(latencies[0] * 1000, 3)
                if latencies else None,
                "median_ms": round(
                    latencies[len(latencies) // 2] * 1000, 3)
                if latencies else None,
            }

    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "shards": SHARDS,
            "workers": WORKERS,
            "fault_seed": SEED,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "conditions": conditions,
    }


def render_report(report: dict) -> str:
    lines = []
    meta = report["meta"]
    lines.append("Chaos benchmark (availability and degradation under "
                 "hard shard loss)")
    lines.append(f"LUBM {meta['triples']} triples, {meta['shards']} shards, "
                 f"queries {', '.join(meta['queries'])}, k={meta['k']}, "
                 f"{meta['rounds']} cold rounds, seed {meta['fault_seed']}, "
                 f"Python {meta['python']}")
    lines.append("")
    lines.append(f"{'condition':<10} {'avail':>7} {'degraded':>9} "
                 f"{'errors':>7} {'trips':>6} {'median ms':>10}")
    for name, row in report["conditions"].items():
        median = row["median_ms"]
        lines.append(
            f"{name:<10} {row['availability']:>7.4f} "
            f"{row['degraded']:>4}/{row['attempts']:<4} "
            f"{row['errors']:>7} {row['breaker_trips']:>6} "
            f"{median if median is not None else float('nan'):>10.1f}")
    lines.append("")
    lines.append("availability = answered / attempted; a dead minority of "
                 "shards must cost candidates (degraded answers), never "
                 "whole queries (errors).")
    return "\n".join(lines)


def smoke_check(report: dict) -> int:
    """Absolute gates — no committed baseline needed, the floors are
    machine-independent correctness claims, not wall-clock."""
    failures = []
    healthy = report["conditions"]["dead0"]
    if healthy["availability"] < 1.0 or healthy["degraded"]:
        print(f"smoke: fault-free run not clean: {healthy}")
        failures.append("dead0")
    for name, row in report["conditions"].items():
        if row["dead_shards"] == 0:
            continue
        status = "ok"
        if row["availability"] < AVAILABILITY_FLOOR:
            status = "BELOW FLOOR"
            failures.append(f"{name}-availability")
        if row["degraded"] == 0:
            status = "SILENT LOSS"
            failures.append(f"{name}-silent")
        print(f"smoke: {name:<7} availability "
              f"{row['availability']:.4f} (floor "
              f"{AVAILABILITY_FLOOR:.2f}), degraded "
              f"{row['degraded']}/{row['attempts']}  [{status}]")
    if failures:
        print(f"smoke: FAIL — {', '.join(failures)}")
        return 1
    print("smoke: PASS — shard loss degrades answers, never availability")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=None,
                        help="LUBM scale (default 3000; 2000 under --smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cold rounds over the workload "
                             "(default 3; 2 under --smoke)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run; gate availability floors instead "
                             "of rewriting BENCH_chaos.json")
    args = parser.parse_args(argv)

    triples = args.triples or (2000 if args.smoke else 3000)
    rounds = args.rounds or (2 if args.smoke else 3)

    report = run_bench(triples, rounds, args.k)
    print(render_report(report))
    print()

    if args.smoke:
        return smoke_check(report)

    code = smoke_check(report)
    if code:
        return code
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    TXT_PATH.parent.mkdir(exist_ok=True)
    TXT_PATH.write_text(render_report(report) + "\n")
    print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
