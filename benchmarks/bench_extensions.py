"""Ablation benchmarks for the §7 extensions: compression and updates.

Quantifies (a) dictionary compression — index bytes and build time,
plain vs compressed — and (b) incremental maintenance — per-triple
update cost vs rebuilding the index from scratch.  Run::

    pytest benchmarks/bench_extensions.py --benchmark-only -s
"""

import pytest

from repro.datasets import dataset
from repro.evaluation.reporting import format_bytes, format_table
from repro.index import build_index
from repro.index.incremental import IncrementalIndex

_SIZES: dict[str, int] = {}


def test_bench_plain_index_build(benchmark, lubm_graph, tmp_path):
    counter = [0]

    def build():
        counter[0] += 1
        index, stats = build_index(lubm_graph,
                                   str(tmp_path / f"plain{counter[0]}"))
        index.close()
        return stats

    stats = benchmark.pedantic(build, rounds=2, iterations=1)
    _SIZES["plain"] = stats.size_bytes


def test_bench_compressed_index_build(benchmark, lubm_graph, tmp_path):
    counter = [0]

    def build():
        counter[0] += 1
        index, stats = build_index(lubm_graph,
                                   str(tmp_path / f"packed{counter[0]}"),
                                   compress=True)
        index.close()
        return stats

    stats = benchmark.pedantic(build, rounds=2, iterations=1)
    _SIZES["compressed"] = stats.size_bytes


def test_compression_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert "plain" in _SIZES and "compressed" in _SIZES
    ratio = _SIZES["compressed"] / _SIZES["plain"]
    print()
    print(format_table(
        ["codec", "bytes", "rendered"],
        [["plain", _SIZES["plain"], format_bytes(_SIZES["plain"])],
         ["compressed", _SIZES["compressed"],
          format_bytes(_SIZES["compressed"])],
         ["ratio", round(ratio, 3), f"{ratio:.1%}"]],
        title="Dictionary compression (LUBM index)"))
    # The whole point: at least 3x smaller.
    assert ratio < 1 / 3


@pytest.fixture(scope="module")
def update_batch():
    """Fresh triples to insert: a new department's worth of LUBM data."""
    extra = dataset("lubm").build(300, seed=99)
    return list(extra.triples())


def test_bench_incremental_updates(benchmark, tmp_path, update_batch):
    base = dataset("lubm").build(1500, seed=0)
    index = IncrementalIndex(base.copy(), str(tmp_path / "inc"))
    batch = iter(update_batch)

    def insert_one():
        triple = next(batch)
        index.add_triple(*triple)

    benchmark.pedantic(insert_one, rounds=50, iterations=1)
    assert index.stats.triples_added >= 50
    print(f"\nincremental stats: {index.stats}")


def test_bench_full_rebuild_for_contrast(benchmark, tmp_path, update_batch):
    base = dataset("lubm").build(1500, seed=0)
    graph = base.copy()
    for triple in update_batch[:50]:
        graph.add_triple(*triple)
    counter = [0]

    def rebuild():
        counter[0] += 1
        index, stats = build_index(graph,
                                   str(tmp_path / f"rb{counter[0]}"))
        index.close()
        return stats

    benchmark.pedantic(rebuild, rounds=2, iterations=1)
