"""Fig. 6: average response time on LUBM — Sama vs SAPPER/BOUNDED/DOGMA.

Each benchmark times the top-10 evaluation of one query on one system;
6a is the cold-cache condition (buffer pool cleared before every run),
6b the warm-cache one.  The module prints the grouped log-scale bars of
the figure at the end.  Run::

    pytest benchmarks/bench_fig6_response_time.py --benchmark-only -s
"""

import time

import pytest

from repro.evaluation.reporting import log_bar_chart

# Queries benched per system (all 12 through Sama would dominate the
# suite's wall-clock; the subset spans the complexity range).
_QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]

_RESULTS: dict[str, dict[str, float]] = {"cold": {}, "warm": {}}


def _specs(queries):
    return [spec for spec in queries if spec.qid in _QUERY_IDS]


@pytest.mark.parametrize("qid", _QUERY_IDS)
def test_fig6a_sama_cold(benchmark, engine, queries, qid):
    spec = next(s for s in queries if s.qid == qid)

    def cold_query():
        engine.cold_cache()
        started = time.perf_counter()
        engine.query(spec.graph, k=10)
        return (time.perf_counter() - started) * 1000

    elapsed = benchmark.pedantic(cold_query, rounds=3, iterations=1)
    _RESULTS["cold"][f"sama/{qid}"] = elapsed


@pytest.mark.parametrize("qid", _QUERY_IDS)
def test_fig6b_sama_warm(benchmark, engine, queries, qid):
    spec = next(s for s in queries if s.qid == qid)
    engine.warm_cache()
    engine.query(spec.graph, k=10)  # prime

    def warm_query():
        started = time.perf_counter()
        engine.query(spec.graph, k=10)
        return (time.perf_counter() - started) * 1000

    elapsed = benchmark.pedantic(warm_query, rounds=3, iterations=1)
    _RESULTS["warm"][f"sama/{qid}"] = elapsed


@pytest.mark.parametrize("qid", _QUERY_IDS)
@pytest.mark.parametrize("system", ["sapper", "bounded", "dogma"])
def test_fig6_baseline(benchmark, baselines, queries, system, qid):
    spec = next(s for s in queries if s.qid == qid)
    matcher = baselines[system]

    def run():
        if hasattr(matcher, "clear_cache"):
            matcher.clear_cache()  # cold condition for the baselines too
        started = time.perf_counter()
        matcher.search(spec.graph, limit=10)
        return (time.perf_counter() - started) * 1000

    elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    # The in-memory baselines have no cache distinction; one number
    # serves both panels (the paper's baselines behaved likewise).
    _RESULTS["cold"][f"{system}/{qid}"] = elapsed
    _RESULTS["warm"][f"{system}/{qid}"] = elapsed


def test_print_fig6_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS["cold"], "timings did not run"
    for condition, title in (("cold", "Fig. 6a (cold-cache)"),
                             ("warm", "Fig. 6b (warm-cache)")):
        series: dict[str, list[float]] = {}
        for system in ("sama", "sapper", "bounded", "dogma"):
            series[system] = [
                _RESULTS[condition].get(f"{system}/{qid}", 0.0)
                for qid in _QUERY_IDS]
        print()
        print(log_bar_chart(_QUERY_IDS, series,
                            title=f"{title}: avg response time on LUBM"))
    # Shape check: warm Sama is never slower than cold Sama overall.
    cold_total = sum(_RESULTS["cold"][f"sama/{qid}"] for qid in _QUERY_IDS)
    warm_total = sum(_RESULTS["warm"][f"sama/{qid}"] for qid in _QUERY_IDS)
    assert warm_total <= cold_total * 1.25
