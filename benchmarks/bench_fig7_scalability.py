"""Fig. 7: Sama's scalability — vs I, vs |Q| nodes, vs #variables.

Each panel is a sweep with a quadratic trendline, like the figure
(whose trendline equations support the O(h·I²) analysis).  Run::

    pytest benchmarks/bench_fig7_scalability.py --benchmark-only -s
"""

import pytest

from repro.evaluation.reporting import xy_series
from repro.evaluation.scalability import (quadratic_fit, sweep_data_size,
                                          sweep_query_nodes,
                                          sweep_variable_count)

_PANELS: dict[str, tuple] = {}


def test_fig7a_runtime_vs_extracted_paths(benchmark):
    """Panel (a): cold-cache runtime against I (#extracted paths)."""

    def sweep():
        return sweep_data_size(sizes=[800, 1_600, 2_400, 3_200, 4_000],
                               runs=2)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = quadratic_fit(points)
    _PANELS["7a"] = (points, fit, "I (#extracted paths)")
    xs = [p.x for p in points]
    assert xs == sorted(xs)
    assert len(set(xs)) == len(xs)  # I grows with the data


def test_fig7b_runtime_vs_query_nodes(benchmark):
    """Panel (b): runtime against |Q| in nodes (3-23, like the figure)."""

    def sweep():
        return sweep_query_nodes(node_counts=[3, 7, 11, 15, 19, 23],
                                 triples=3_000, runs=2)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = quadratic_fit(points)
    _PANELS["7b"] = (points, fit, "#nodes in Q")
    assert [p.x for p in points] == [3, 7, 11, 15, 19, 23]


def test_fig7c_runtime_vs_variables(benchmark):
    """Panel (c): runtime against the number of variables (1-7)."""

    def sweep():
        return sweep_variable_count(variable_counts=[1, 2, 3, 4, 5, 6, 7],
                                    triples=3_000, runs=2)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = quadratic_fit(points)
    _PANELS["7c"] = (points, fit, "#variables in Q")
    assert [p.x for p in points] == [1, 2, 3, 4, 5, 6, 7]


def test_print_fig7_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _PANELS, "sweeps did not run"
    for panel, (points, fit, x_label) in sorted(_PANELS.items()):
        print()
        print(xy_series(points, x_label, "msec",
                        title=f"Fig. {panel}: Sama scalability",
                        fit_equation=fit.equation()))
    # Shape: runtime grows with every panel's x overall (last >= first).
    for panel, (points, _fit, _label) in _PANELS.items():
        assert points[-1].mean_ms >= points[0].mean_ms * 0.5, panel
