"""Fig. 8: number of matches found per query per system (no k imposed).

Sama and SAPPER — the approximating systems — should identify more
meaningful matches than BOUNDED and DOGMA, the paper's headline
effectiveness observation.  Run::

    pytest benchmarks/bench_fig8_matches.py --benchmark-only -s
"""

import pytest

from repro.evaluation.matches import baseline_match_count, sama_match_count
from repro.evaluation.reporting import log_bar_chart

_QUERY_IDS = ["Q1", "Q2", "Q3", "Q4", "Q5"]

_COUNTS: dict[str, dict[str, int]] = {}


@pytest.mark.parametrize("qid", _QUERY_IDS)
def test_fig8_sama(benchmark, engine, queries, qid):
    spec = next(s for s in queries if s.qid == qid)

    def count():
        return sama_match_count(engine, spec.graph, qid,
                                uncapped_k=200).count

    value = benchmark.pedantic(count, rounds=1, iterations=1)
    _COUNTS.setdefault("sama", {})[qid] = value
    assert value > 0


@pytest.mark.parametrize("qid", _QUERY_IDS)
@pytest.mark.parametrize("system", ["sapper", "bounded", "dogma"])
def test_fig8_baseline(benchmark, baselines, queries, system, qid):
    spec = next(s for s in queries if s.qid == qid)
    matcher = baselines[system]

    def count():
        return baseline_match_count(matcher, spec.graph, qid,
                                    limit=200).count

    value = benchmark.pedantic(count, rounds=1, iterations=1)
    _COUNTS.setdefault(system, {})[qid] = value


def test_print_fig8_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert "sama" in _COUNTS, "counts did not run"
    series = {system: [float(_COUNTS[system].get(qid, 0))
                       for qid in _QUERY_IDS]
              for system in ("sama", "sapper", "bounded", "dogma")}
    print()
    print(log_bar_chart(_QUERY_IDS, series, unit="# of matches",
                        title="Fig. 8: matches found on LUBM (no k imposed)"))
    # The paper's shape: the approximate systems find at least as many
    # matches as the exact ones, per query.
    for index, qid in enumerate(_QUERY_IDS):
        approx = max(series["sama"][index], series["sapper"][index])
        exact = max(series["bounded"][index], series["dogma"][index])
        assert approx >= exact, qid
    # And Sama always returns something, even where exact systems fail.
    assert all(value > 0 for value in series["sama"])
