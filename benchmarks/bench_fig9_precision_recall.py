"""Fig. 9: interpolated precision/recall on LUBM, plus the §6.3 RR table.

Sama's precision is split by query-path count bands like the paper
(``|Q| in [1,4]``, ``[5,10]``, ``[11,17]``); each baseline gets one
curve.  Ground truth comes from the relevance oracle (exact matching
over minimally relaxed queries — the offline stand-in for the paper's
domain experts).  Run::

    pytest benchmarks/bench_fig9_precision_recall.py --benchmark-only -s
"""

import pytest

from repro.engine.preprocess import prepare_query
from repro.evaluation.metrics import (average_interpolated,
                                      interpolated_precision,
                                      precision_recall_curve,
                                      reciprocal_rank)
from repro.evaluation.reporting import format_table

_K = 40
_QUERY_LIMIT = 6  # Q1..Q6 keep the oracle affordable at bench scale

_CURVES: dict[str, list] = {}
_RR_ROWS: list = []


def _band(spec) -> str:
    count = len(prepare_query(spec.graph).paths)
    if count <= 4:
        return "|Q| in [1,4]"
    if count <= 10:
        return "|Q| in [5,10]"
    return "|Q| in [11,17]"


def test_fig9_sama_curves(benchmark, engine, oracle, queries):
    specs = queries[:_QUERY_LIMIT]

    def evaluate():
        bands: dict[str, list] = {}
        for spec in specs:
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            answers = engine.query(spec.graph, k=_K)
            flags = [oracle.judge_sama_answer(truth, a) for a in answers]
            curve = interpolated_precision(
                precision_recall_curve(flags, len(truth)))
            bands.setdefault(_band(spec), []).append(curve)
            _RR_ROWS.append([spec.qid, truth.relaxation_level, len(truth),
                             reciprocal_rank(flags)])
        return {band: average_interpolated(curves)
                for band, curves in bands.items()}

    result = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    for band, curve in result.items():
        _CURVES[f"sama {band}"] = curve
    assert result


@pytest.mark.parametrize("system", ["sapper", "bounded", "dogma"])
def test_fig9_baseline_curves(benchmark, baselines, oracle, queries, system):
    matcher = baselines[system]
    specs = queries[:_QUERY_LIMIT]

    def evaluate():
        curves = []
        for spec in specs:
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            matches = matcher.search(spec.graph, limit=_K)
            flags = [oracle.judge_match(truth, m) for m in matches]
            curves.append(interpolated_precision(
                precision_recall_curve(flags, len(truth))))
        return average_interpolated(curves)

    _CURVES[system] = benchmark.pedantic(evaluate, rounds=1, iterations=1)


def test_print_fig9_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _CURVES, "curves did not run"
    names = sorted(_CURVES)
    headers = ["recall"] + names
    rows = []
    for position in range(11):
        row = [round(0.1 * position, 1)]
        row.extend(_CURVES[name][position].precision for name in names)
        rows.append(row)
    print()
    print(format_table(headers, rows,
                       title="Fig. 9: interpolated precision/recall on LUBM"))
    print()
    print(format_table(["query", "relax level", "#relevant", "RR"],
                       _RR_ROWS,
                       title="Reciprocal rank of Sama (§6.3; paper: all 1)"))
    # §6.3's headline holds for exact ground truth (relaxation level 0,
    # the analogue of the paper's expert-judged correct answers).  On
    # queries whose truth only exists after relaxation, the oracle and
    # the measure can legitimately disagree at bench scale; those RR
    # values are reported above rather than asserted.
    exact_rows = [row for row in _RR_ROWS if row[1] == 0]
    assert exact_rows, "no exact-truth queries were judged"
    assert all(row[3] == 1.0 for row in exact_rows)
    # Sama curves exist and start at high precision.
    sama_curves = [curve for name, curve in _CURVES.items()
                   if name.startswith("sama")]
    assert sama_curves
    for curve in sama_curves:
        assert curve[0].precision > 0.0
