"""Hot-path A/B benchmark: dense-ID fast path vs the pre-interning engine.

Times the three online stages (prepare / cluster / search) of the
Fig. 6 LUBM workload twice over the *same* on-disk index:

- ``fast``: the default engine — interned label-id χ/ψ intersections,
  per-query alignment memo, transcript-free alignments, buffer-pool
  read-ahead, parallel clustering when workers are available;
- ``base``: ``EngineConfig(fast_path=False)`` with read-ahead zeroed —
  the engine exactly as it behaved before the hot-path overhaul.

Both modes must produce identical rankings and scores; the run aborts
otherwise.  Results land in ``BENCH_hotpath.json`` (machine-readable,
committed so CI can gate on it) and ``results/hotpath.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke    # CI gate

``--smoke`` runs a reduced workload and compares the measured
fast-vs-base speedups against the committed ``BENCH_hotpath.json``:
the build fails (exit 1) when a stage's speedup regressed by more than
``--tolerance`` (default 30%).  Ratios, not wall-clock, are compared,
so the gate is machine-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import EngineConfig, SamaEngine  # noqa: E402
from repro.engine.search import top_k  # noqa: E402
from repro.index.pathindex import DEFAULT_READ_AHEAD  # noqa: E402

#: Same workload subset as ``bench_fig6_response_time.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
STAGES = ("prepare", "cluster", "search")

JSON_PATH = REPO_ROOT / "BENCH_hotpath.json"
TXT_PATH = REPO_ROOT / "results" / "hotpath.txt"


def _time_stages(engine: SamaEngine, graph, k: int) -> "tuple[dict, list]":
    """One cold-cache evaluation, timed per stage; returns the ranking."""
    engine.cold_cache()
    timings = {}
    started = time.perf_counter()
    prepared = engine.prepare(graph)
    timings["prepare"] = time.perf_counter() - started

    started = time.perf_counter()
    clusters = engine.clusters(prepared)
    timings["cluster"] = time.perf_counter() - started

    config = replace(engine.config.search, k=k)
    if not engine.config.fast_path and config.interned:
        config = replace(config, interned=False)
    started = time.perf_counter()
    result = top_k(prepared, clusters, weights=engine.config.weights,
                   config=config)
    timings["search"] = time.perf_counter() - started

    ranking = [(round(answer.score, 9), str(answer))
               for answer in result.answers]
    return timings, ranking


def run_bench(triples: int, rounds: int, k: int,
              seed: int = 0) -> dict:
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]

    with tempfile.TemporaryDirectory(prefix="sama-hotpath-") as directory:
        # Two indexes over the same graph: the current default format
        # (interned records + label dictionary) for ``fast``, and the
        # pre-overhaul inline-term records for ``base``, whose engine
        # also runs with every hot-path feature switched off.
        from repro.index.builder import build_index
        from repro.index.thesaurus import default_thesaurus

        thesaurus = default_thesaurus()
        fast_index, _ = build_index(graph, os.path.join(directory, "fast"),
                                    thesaurus=thesaurus)
        base_index, _ = build_index(graph, os.path.join(directory, "base"),
                                    thesaurus=thesaurus,
                                    intern_records=False)
        engines = {
            "fast": SamaEngine(fast_index, config=EngineConfig(),
                               thesaurus=thesaurus),
            "base": SamaEngine(base_index,
                               config=EngineConfig(fast_path=False),
                               thesaurus=thesaurus),
        }
        read_ahead = {"fast": DEFAULT_READ_AHEAD, "base": 0}
        # Pre-overhaul decode did not intern labels; skip it on base so
        # its cluster stage is not charged work the old engine never did.
        base_index.interner.intern_path = lambda path: path

        per_query: dict[str, dict] = {}
        totals = {mode: dict.fromkeys(STAGES, 0.0) for mode in engines}
        for spec in queries:
            per_query[spec.qid] = {}
            rankings = {}
            for mode, engine in engines.items():
                engine.index._records.pool.read_ahead = read_ahead[mode]
                samples = {stage: [] for stage in STAGES}
                for _ in range(rounds):
                    timings, ranking = _time_stages(engine, spec.graph, k)
                    for stage in STAGES:
                        samples[stage].append(timings[stage])
                rankings[mode] = ranking
                best = {stage: min(samples[stage]) for stage in STAGES}
                per_query[spec.qid][mode] = {
                    stage: round(best[stage] * 1000, 3) for stage in STAGES}
                for stage in STAGES:
                    totals[mode][stage] += best[stage]
            if rankings["fast"] != rankings["base"]:
                raise SystemExit(
                    f"FATAL: fast/base rankings diverge on {spec.qid} — "
                    f"the fast path is not score-preserving")
        fast_index.close()
        base_index.close()

    stage_summary = {}
    for stage in STAGES:
        fast_ms = totals["fast"][stage] * 1000
        base_ms = totals["base"][stage] * 1000
        stage_summary[stage] = {
            "fast_ms": round(fast_ms, 3),
            "base_ms": round(base_ms, 3),
            "speedup": round(base_ms / fast_ms, 3) if fast_ms else None,
        }
    fast_total = sum(totals["fast"].values()) * 1000
    base_total = sum(totals["base"].values()) * 1000
    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "python": platform.python_version(),
            "workers_env": os.environ.get("SAMA_WORKERS"),
            "cpu_count": os.cpu_count(),
        },
        "stages": stage_summary,
        "total": {
            "fast_ms": round(fast_total, 3),
            "base_ms": round(base_total, 3),
            "speedup": round(base_total / fast_total, 3),
        },
        "per_query": per_query,
        "rankings_identical": True,
    }


def render_report(report: dict) -> str:
    lines = []
    meta = report["meta"]
    lines.append("Hot-path A/B benchmark (fast = interned ids + memo + "
                 "read-ahead; base = pre-overhaul engine)")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, "
                 f"best of {meta['rounds']} cold rounds, "
                 f"Python {meta['python']}")
    lines.append("")
    lines.append(f"{'stage':<10} {'base ms':>10} {'fast ms':>10} "
                 f"{'speedup':>9}")
    for stage in STAGES:
        row = report["stages"][stage]
        lines.append(f"{stage:<10} {row['base_ms']:>10.1f} "
                     f"{row['fast_ms']:>10.1f} {row['speedup']:>8.2f}x")
    total = report["total"]
    lines.append(f"{'total':<10} {total['base_ms']:>10.1f} "
                 f"{total['fast_ms']:>10.1f} {total['speedup']:>8.2f}x")
    lines.append("")
    lines.append(f"{'query':<8}" + "".join(
        f" {stage + ' b/f':>16}" for stage in STAGES))
    for qid, modes in report["per_query"].items():
        cells = []
        for stage in STAGES:
            cells.append(f" {modes['base'][stage]:>7.1f}/"
                         f"{modes['fast'][stage]:<8.1f}")
        lines.append(f"{qid:<8}" + "".join(cells))
    lines.append("")
    lines.append("Rankings and scores identical across modes: "
                 f"{report['rankings_identical']}")
    return "\n".join(lines)


def smoke_check(current: dict, committed_path: Path,
                tolerance: float) -> int:
    """Compare measured speedups against the committed baseline.

    A stage fails when its measured fast-vs-base speedup fell more
    than ``tolerance`` below the committed one — e.g. a committed 2.0x
    that now measures below 1.4x at the default 30%.  Stages whose
    committed base time is under 5 ms are skipped as noise.
    """
    if not committed_path.exists():
        print(f"smoke: no committed baseline at {committed_path}; "
              "nothing to gate against")
        return 0
    committed = json.loads(committed_path.read_text())
    failures = []
    checks = [(stage, committed["stages"][stage], current["stages"][stage])
              for stage in STAGES]
    checks.append(("total", committed["total"], current["total"]))
    for name, want, got in checks:
        if want.get("speedup") is None or want.get("base_ms", 0.0) < 5.0:
            print(f"smoke: {name:<8} skipped (committed base "
                  f"{want.get('base_ms', 0.0):.1f} ms below noise floor)")
            continue
        floor = want["speedup"] * (1.0 - tolerance)
        status = "ok" if got["speedup"] >= floor else "REGRESSED"
        print(f"smoke: {name:<8} committed {want['speedup']:.2f}x, "
              f"measured {got['speedup']:.2f}x, floor {floor:.2f}x  "
              f"[{status}]")
        if got["speedup"] < floor:
            failures.append(name)
    if failures:
        print(f"smoke: FAIL — speedup regressed >{tolerance:.0%} on: "
              + ", ".join(failures))
        return 1
    print("smoke: PASS — all stage speedups within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=None,
                        help="LUBM scale (default 3000; 800 under --smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cold rounds per query/mode, best-of "
                             "(default 3; 1 under --smoke)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run; gate speedup ratios against the "
                             "committed BENCH_hotpath.json instead of "
                             "rewriting it")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative speedup regression in smoke "
                             "mode (default 0.30)")
    args = parser.parse_args(argv)

    triples = args.triples or (800 if args.smoke else 3000)
    rounds = args.rounds or (1 if args.smoke else 3)

    report = run_bench(triples, rounds, args.k)
    print(render_report(report))

    if args.smoke:
        return smoke_check(report, JSON_PATH, args.tolerance)

    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    TXT_PATH.parent.mkdir(exist_ok=True)
    TXT_PATH.write_text(render_report(report) + "\n")
    print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
