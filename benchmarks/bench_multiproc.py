"""Multi-process scatter-gather benchmark: serial vs threads vs procs.

Times the Fig. 6 LUBM workload end-to-end over the *same* sharded
index under the engine's three execution modes
(``EngineConfig.worker_mode`` plus a ``workers=1`` serial baseline):

* ``serial``  — ``workers=1``: no scatter-gather, one coordinator
  thread decodes and aligns every candidate.
* ``threads`` — shard fan-out on the shared thread pool (the PR-5
  engine).  Pure-Python alignment is GIL-bound, so with an in-memory
  store this mostly measures dispatch overhead.
* ``procs``   — long-lived worker processes score their shard against
  a columnar view (``repro.index.columnar``) in their own interpreter,
  shipping back compact ``(score, gid, plen)`` rows.

All mode x shard-count combinations must produce bit-identical
rankings and scores — the run aborts otherwise; that guarantee is the
point of the deterministic ``(λ, gid)`` merge in
``repro.engine.clustering``.

Unlike ``bench_sharding.py`` this is an **in-memory** condition
(``read_latency=0``): there are no page-read stalls to overlap, so the
workload is exactly the CPU-bound path the GIL serialises.  The
serial/threads arms pay a cold cache every round; the procs arm's
workers keep their columnar views across ``cold_cache()`` — building
the columns once per worker lifetime instead of decoding paths per
query is the architecture, not a benchmarking artefact.

Usage::

    PYTHONPATH=src python benchmarks/bench_multiproc.py            # full run
    PYTHONPATH=src python benchmarks/bench_multiproc.py --smoke    # CI gate

Results land in ``BENCH_multiproc.json`` (committed, machine-readable)
and ``results/multiproc.txt``.  The full run fails (exit 1) when the
4-shard procs-vs-serial speedup is below the 2.5x acceptance floor;
``--smoke`` runs a reduced workload and fails when rankings diverge,
when the measured 4-shard procs speedup drops below the 1.3x smoke
floor, or when it falls more than ``--tolerance`` below the committed
full-run ratio.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import EngineConfig, SamaEngine  # noqa: E402

#: Same workload subset as ``bench_fig6_response_time.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
SHARD_COUNTS = (1, 2, 4)
MODES = ("serial", "threads", "procs")

PAGE_SIZE = 1024
WORKERS = 4

#: The committed full run must clear this procs-vs-serial end-to-end
#: speedup at 4 shards (the ISSUE's acceptance floor) ...
SPEEDUP_FLOOR = 2.5
#: ... and a smoke run on the reduced dataset must clear this one.
SMOKE_FLOOR = 1.3

JSON_PATH = REPO_ROOT / "BENCH_multiproc.json"
TXT_PATH = REPO_ROOT / "results" / "multiproc.txt"


def _mode_config(mode: str) -> EngineConfig:
    if mode == "serial":
        return EngineConfig(workers=1, worker_mode="threads")
    return EngineConfig(workers=WORKERS, worker_mode=mode)


def run_bench(triples: int, rounds: int, k: int, seed: int = 0) -> dict:
    from repro.index.sharded import build_sharded_index
    from repro.index.thesaurus import default_thesaurus

    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]
    thesaurus = default_thesaurus()

    per_query: dict[str, dict] = {spec.qid: {} for spec in queries}
    totals: dict[str, float] = {}
    reference: dict[str, list] = {}
    with tempfile.TemporaryDirectory(prefix="sama-multiproc-") as directory:
        for shards in SHARD_COUNTS:
            shard_path = os.path.join(directory, f"shards{shards}")
            index, _ = build_sharded_index(graph, shard_path, shards,
                                           thesaurus=thesaurus,
                                           page_size=PAGE_SIZE)
            index.close()
            engines = {
                mode: SamaEngine.open(shard_path, config=_mode_config(mode))
                for mode in MODES}
            engines["procs"].warm_workers()
            try:
                for spec in queries:
                    for mode, engine in engines.items():
                        arm = f"shards{shards}-{mode}"
                        samples = []
                        for _ in range(rounds):
                            engine.cold_cache()
                            started = time.perf_counter()
                            result = engine.query(spec.graph, k=k)
                            samples.append(time.perf_counter() - started)
                        ranking = [(round(answer.score, 9), str(answer))
                                   for answer in result]
                        if spec.qid not in reference:
                            reference[spec.qid] = ranking
                        elif ranking != reference[spec.qid]:
                            raise SystemExit(
                                f"FATAL: {arm} ranking diverges on "
                                f"{spec.qid} — execution mode changed "
                                f"the answer")
                        best = min(samples)
                        per_query[spec.qid][arm] = round(best * 1000, 3)
                        totals[arm] = totals.get(arm, 0.0) + best
            finally:
                for engine in engines.values():
                    engine.close()

    summary: dict[str, dict] = {}
    for shards in SHARD_COUNTS:
        base_ms = totals[f"shards{shards}-serial"] * 1000
        block = {}
        for mode in MODES:
            mode_ms = totals[f"shards{shards}-{mode}"] * 1000
            block[mode] = {
                "total_ms": round(mode_ms, 3),
                "speedup": round(base_ms / mode_ms, 3) if mode_ms else None,
            }
        summary[f"shards{shards}"] = block
    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "workers": WORKERS,
            "page_size": PAGE_SIZE,
            "read_latency_s": 0.0,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "shards": summary,
        "per_query": per_query,
        "rankings_identical": True,
    }


def render_report(report: dict) -> str:
    lines = []
    meta = report["meta"]
    lines.append("Multi-process scatter-gather benchmark "
                 "(serial vs threads vs procs, in-memory, "
                 "end-to-end cold-cache wall clock)")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, best of "
                 f"{meta['rounds']} rounds, {meta['workers']} workers, "
                 f"Python {meta['python']}, {meta['cpu_count']} CPUs")
    lines.append("")
    lines.append(f"{'arm':<16} {'total ms':>10} {'speedup':>9}")
    for shards in SHARD_COUNTS:
        for mode in MODES:
            row = report["shards"][f"shards{shards}"][mode]
            lines.append(f"{f'shards{shards}-{mode}':<16} "
                         f"{row['total_ms']:>10.1f} "
                         f"{row['speedup']:>8.2f}x")
    lines.append("")
    arms = [f"shards{n}-{m}" for n in SHARD_COUNTS for m in MODES]
    lines.append(f"{'query':<8}" + "".join(f" {arm:>16}" for arm in arms))
    for qid, rows in report["per_query"].items():
        lines.append(f"{qid:<8}" + "".join(
            f" {rows[arm]:>16.1f}" for arm in arms))
    lines.append("")
    lines.append("Rankings and scores identical across every mode and "
                 f"shard count: {report['rankings_identical']}")
    return "\n".join(lines)


def smoke_check(current: dict, committed_path: Path,
                tolerance: float) -> int:
    """Gate the measured 4-shard procs speedup against the committed run.

    Ratios, not wall-clock, are compared, so the tolerance part of the
    gate is machine-independent; the committed (full-size) run must
    itself clear :data:`SPEEDUP_FLOOR` and the smoke measurement must
    clear the absolute :data:`SMOKE_FLOOR`.
    """
    failures = []
    got = current["shards"]["shards4"]["procs"]["speedup"]
    status = "ok" if got >= SMOKE_FLOOR else "BELOW FLOOR"
    print(f"smoke: shards4-procs measured {got:.2f}x, absolute floor "
          f"{SMOKE_FLOOR:.1f}x  [{status}]")
    if got < SMOKE_FLOOR:
        failures.append("smoke-floor")
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        want = committed["shards"]["shards4"]["procs"]["speedup"]
        if want < SPEEDUP_FLOOR:
            print(f"smoke: committed full-run 4-shard procs speedup "
                  f"{want:.2f}x is below the {SPEEDUP_FLOOR:.1f}x floor")
            failures.append("committed-floor")
        floor = want * (1.0 - tolerance)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"smoke: shards4-procs committed {want:.2f}x, measured "
              f"{got:.2f}x, floor {floor:.2f}x  [{status}]")
        if got < floor:
            failures.append("shards4-procs")
    else:
        print(f"smoke: no committed baseline at {committed_path}; "
              "gating on the absolute floor only")
    if failures:
        print(f"smoke: FAIL — {', '.join(failures)}")
        return 1
    print("smoke: PASS — rankings identical across all modes and shard "
          "counts, procs speedup above floor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=None,
                        help="LUBM scale (default 8000; 2000 under --smoke "
                             "— below ~1500 triples clusters are too small "
                             "for scatter-gather to engage, so a smaller "
                             "smoke would not exercise the fast path)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cold rounds per query/arm, best-of "
                             "(default 3; 1 under --smoke)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run; gate the procs speedup against "
                             "the smoke floor and the committed "
                             "BENCH_multiproc.json instead of rewriting it")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative speedup regression in smoke "
                             "mode (default 0.30)")
    args = parser.parse_args(argv)

    triples = args.triples or (2000 if args.smoke else 8000)
    rounds = args.rounds or (1 if args.smoke else 3)

    report = run_bench(triples, rounds, args.k)
    print(render_report(report))

    if args.smoke:
        return smoke_check(report, JSON_PATH, args.tolerance)

    measured = report["shards"]["shards4"]["procs"]["speedup"]
    if measured < SPEEDUP_FLOOR:
        print(f"\nFAIL: 4-shard procs end-to-end speedup {measured:.2f}x "
              f"is below the {SPEEDUP_FLOOR:.1f}x floor")
        return 1
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    TXT_PATH.parent.mkdir(exist_ok=True)
    TXT_PATH.write_text(render_report(report) + "\n")
    print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
