"""Observability overhead: instrumented vs ``SAMA_OBS=off``.

Runs the Fig. 6 LUBM workload through one engine twice per round —
once with the metrics registry + stage spans live, once with
observability configured off (the same state ``SAMA_OBS=off`` yields
at process start) — interleaving the arms so machine drift hits both
equally.  The per-arm cost is the *minimum* sweep time (robust to
scheduler noise); the overhead ratio must stay under 3% in full runs
(<5% smoke gate in CI) and the rankings of the two arms must be
bit-identical, proving instrumentation cannot change answers.

``--smoke`` additionally stands up the HTTP serving stack and asserts
``GET /metrics`` parses as Prometheus text exposition with the
expected families present.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import SamaEngine  # noqa: E402
from repro.serving import ServingConfig, ServingEngine, serve  # noqa: E402

#: Same workload subset as ``bench_fig6_response_time.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]

JSON_PATH = REPO_ROOT / "BENCH_obs.json"
TXT_PATH = REPO_ROOT / "results" / "obs_overhead.txt"

#: Full-run target from the issue; smoke gets headroom for CI noise.
FULL_TARGET = 1.03
SMOKE_TARGET = 1.05

#: Prometheus families the smoke gate requires on ``/metrics``.
REQUIRED_SAMPLES = (
    "sama_serving_requests_total",
    "sama_serving_served_total",
    'sama_stage_seconds_count{stage="cluster"}',
    'sama_stage_seconds_count{stage="search"}',
    "sama_request_seconds_count",
    "sama_record_decodes_total",
)


def _ranking(answers) -> list:
    return [(round(a.score, 9), round(a.quality, 9),
             round(a.conformity, 9)) for a in answers]


def _sweep(engine: SamaEngine, queries, k: int) -> "tuple[float, dict]":
    """One pass over the workload: (seconds, {qid: ranking})."""
    rankings = {}
    started = time.perf_counter()
    for spec in queries:
        rankings[spec.qid] = _ranking(engine.query(spec.graph, k=k))
    return time.perf_counter() - started, rankings


def run_bench(triples: int, rounds: int, k: int, seed: int = 0) -> dict:
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]

    sweep_times = {"on": [], "off": []}
    rankings = {"on": None, "off": None}
    previous = obs.configure(enabled=True)
    try:
        with tempfile.TemporaryDirectory(prefix="sama-obs-") as directory:
            engine = SamaEngine.from_graph(graph, directory=directory)
            # One untimed pass faults the index in so neither arm pays
            # the cold-cache cost of going first.
            _sweep(engine, queries, k)
            for _ in range(rounds):
                for mode in ("on", "off"):
                    obs.configure(enabled=(mode == "on"))
                    seconds, ranking = _sweep(engine, queries, k)
                    sweep_times[mode].append(seconds)
                    if rankings[mode] is None:
                        rankings[mode] = ranking
                    elif rankings[mode] != ranking:
                        raise SystemExit(
                            f"FATAL: {mode} arm rankings unstable across "
                            f"rounds — benchmark cannot gate identity")
            engine.close()
    finally:
        obs.configure(enabled=previous[0], registry=previous[1])

    identical = rankings["on"] == rankings["off"]
    if not identical:
        raise SystemExit(
            "FATAL: instrumented rankings diverge from SAMA_OBS=off — "
            "observability must never change answers")
    best_on = min(sweep_times["on"])
    best_off = min(sweep_times["off"])
    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "instrumented_seconds": round(best_on, 4),
        "dark_seconds": round(best_off, 4),
        "overhead_ratio": round(best_on / best_off, 4),
        "sweeps": {mode: [round(s, 4) for s in times]
                   for mode, times in sweep_times.items()},
        "rankings_identical": identical,
    }


def check_metrics_endpoint(triples: int, k: int, seed: int = 0) -> list:
    """Serve a small index, hit /metrics, validate the exposition."""
    failures = []
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]
    previous = obs.configure(enabled=True)
    try:
        with tempfile.TemporaryDirectory(prefix="sama-obs-http-") as directory:
            engine = SamaEngine.from_graph(graph, directory=directory)
            serving = ServingEngine(engine, ServingConfig(workers=2,
                                                          default_k=k))
            server = serve(serving, port=0).serve_background()
            try:
                for spec in queries[:2]:
                    payload = json.dumps({"query": spec.sparql,
                                          "k": k}).encode()
                    with urllib.request.urlopen(server.url + "/query",
                                                data=payload) as response:
                        if response.status != 200:
                            failures.append(
                                f"POST /query -> {response.status}")
                with urllib.request.urlopen(server.url + "/metrics") as response:
                    content_type = response.headers.get("Content-Type", "")
                    text = response.read().decode("utf-8")
                if not content_type.startswith("text/plain"):
                    failures.append(f"bad content type: {content_type}")
                try:
                    samples = obs.parse_prometheus(text)
                except ValueError as exc:
                    failures.append(f"/metrics does not parse: {exc}")
                    samples = {}
                for name in REQUIRED_SAMPLES:
                    if name not in samples:
                        failures.append(f"/metrics missing {name}")
            finally:
                server.shutdown(close_engine=True)
    finally:
        obs.configure(enabled=previous[0], registry=previous[1])
    return failures


def render_report(report: dict) -> str:
    meta = report["meta"]
    lines = []
    lines.append("Observability overhead: instrumented vs SAMA_OBS=off")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, "
                 f"{meta['rounds']} interleaved rounds per arm, "
                 f"Python {meta['python']}")
    lines.append("")
    lines.append(f"{'arm':<14} {'best sweep s':>13}")
    lines.append(f"{'instrumented':<14} "
                 f"{report['instrumented_seconds']:>13.4f}")
    lines.append(f"{'SAMA_OBS=off':<14} {report['dark_seconds']:>13.4f}")
    lines.append("")
    overhead = (report["overhead_ratio"] - 1.0) * 100.0
    lines.append(f"overhead: {overhead:+.2f}% "
                 f"(ratio {report['overhead_ratio']:.4f}, target <3%)")
    lines.append("Rankings bit-identical across arms: "
                 f"{report['rankings_identical']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--triples", type=int, default=3000)
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved sweeps per arm")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload + ratio/exposition gate "
                             "for CI")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update the committed result files")
    args = parser.parse_args(argv)

    if args.smoke:
        # Smoke sweeps are short (~0.2 s), so min-of-sweeps needs more
        # rounds than the full run for scheduler noise to converge.
        args.triples = min(args.triples, 1000)
        args.rounds = max(args.rounds, 9)

    report = run_bench(args.triples, args.rounds, args.k, seed=args.seed)
    print(render_report(report))

    if args.smoke:
        failures = []
        if report["overhead_ratio"] > SMOKE_TARGET:
            failures.append(
                f"overhead ratio {report['overhead_ratio']:.4f} exceeds "
                f"the {SMOKE_TARGET} smoke gate")
        if not report["rankings_identical"]:
            failures.append("rankings diverged between arms")
        failures.extend(check_metrics_endpoint(args.triples, args.k,
                                               seed=args.seed))
        for line in (failures or ["all checks passed"]):
            print(f"smoke: {line}")
        print(f"smoke: {'FAIL' if failures else 'PASS'}")
        return 1 if failures else 0

    if report["overhead_ratio"] > FULL_TARGET:
        print(f"WARNING: overhead ratio {report['overhead_ratio']:.4f} "
              f"exceeds the {FULL_TARGET} target")
    if not args.no_write:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
        TXT_PATH.parent.mkdir(exist_ok=True)
        TXT_PATH.write_text(render_report(report) + "\n")
        print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
