"""Quotient-compressed scoring benchmark: one alignment per class.

Runs the Fig. 9 LUBM workload against sharded indexes carrying
persisted equality-pattern quotients (``sama index quotient``) and
measures the two claims the subsystem makes:

* **quotients are free of risk** — rankings and scores are
  bit-identical to the unquotiented engine at every shard count, under
  both scatter-gather worker modes (threads / procs) and with the
  two-stage sketch filter off or in safe mode.  The run aborts on the
  first divergence.
* **classes actually compress** — LUBM's schema-regular paths collapse
  into a small set of equality patterns, so the stored-paths-per-class
  ratio must clear :data:`COMPRESSION_FLOOR` (the ISSUE's acceptance
  criterion: at least 2x on LUBM 3000; the measured ratio is orders of
  magnitude higher).  Representative-vs-member work is recorded from
  the engine's own ``sama_quotient_reps_total`` /
  ``sama_quotient_members_total`` counters, so the numbers are exactly
  what serving telemetry reports.

Wall-clock per arm is recorded for context; only identity and
compression are gated (timing floors live in ``bench_multiproc.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_quotient.py            # full run
    PYTHONPATH=src python benchmarks/bench_quotient.py --smoke    # CI gate

Results land in ``BENCH_quotient.json`` (committed, machine-readable)
and ``results/quotient.txt``.  The full run refuses to write artifacts
when any arm diverges or compression falls below
:data:`COMPRESSION_FLOOR`; ``--smoke`` runs a reduced workload and
fails on divergence, on a ratio below the same absolute floor, or when
the committed full run stops clearing its own floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import EngineConfig, SamaEngine  # noqa: E402
from repro.obs import get_registry  # noqa: E402

#: Same workload subset as ``bench_multiproc.py`` / ``bench_twostage.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
#: The ISSUE's acceptance matrix: {1, 4} shards x {threads, procs}
#: workers x {off, safe} two-stage modes, every arm bit-identical.
SHARD_COUNTS = (1, 4)
WORKER_MODES = ("threads", "procs")
TWO_STAGE_MODES = ("off", "safe")

PAGE_SIZE = 1024
WORKERS = 4

#: Stored paths per equivalence class the committed full run (LUBM
#: 3000) and every smoke run must clear.
COMPRESSION_FLOOR = 2.0

JSON_PATH = REPO_ROOT / "BENCH_quotient.json"
TXT_PATH = REPO_ROOT / "results" / "quotient.txt"

COUNTER_REPS = "sama_quotient_reps_total"
COUNTER_MEMBERS = "sama_quotient_members_total"


def _config(quotient: str, worker_mode: str = "threads",
            two_stage: str = "off", serial: bool = False) -> EngineConfig:
    return EngineConfig(quotient=quotient,
                        workers=1 if serial else WORKERS,
                        worker_mode=worker_mode, two_stage=two_stage)


def _ranking(engine, spec, k: int) -> list:
    return [(round(answer.score, 9), str(answer))
            for answer in engine.query(spec.graph, k=k)]


def _timed_rankings(engine, queries, k: int, rounds: int):
    """Best-of-``rounds`` cold-cache total plus the final rankings.

    One untimed pass first: the loaded quotients, memoised match sets
    and columnar caches are steady-state serving structures, not
    per-query work.
    """
    for spec in queries:
        engine.query(spec.graph, k=k)
    samples = []
    rankings = {}
    for _ in range(rounds):
        engine.cold_cache()
        started = time.perf_counter()
        for spec in queries:
            rankings[spec.qid] = _ranking(engine, spec, k)
        samples.append(time.perf_counter() - started)
    return min(samples), rankings


def _counter(snapshot: dict, name: str) -> float:
    return float(snapshot.get(name, 0))


def run_bench(triples: int, rounds: int, k: int, seed: int = 0) -> dict:
    from repro.index.sharded import build_sharded_index
    from repro.index.thesaurus import default_thesaurus
    from repro.quotient import QuotientIndex, build_quotients
    from repro.sketch import build_sketches

    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]
    thesaurus = default_thesaurus()

    reference: dict[str, list] = {}
    arms: dict[str, float] = {}
    compression: dict[str, dict] = {}
    sharing: dict = {}
    with tempfile.TemporaryDirectory(prefix="sama-quotient-") as directory:
        for shards in SHARD_COUNTS:
            shard_path = os.path.join(directory, f"shards{shards}")
            index, _ = build_sharded_index(graph, shard_path, shards,
                                           thesaurus=thesaurus,
                                           page_size=PAGE_SIZE)
            build_sketches(index)
            build_quotients(index)
            quotients = QuotientIndex.for_index(index)
            if quotients is None:
                raise SystemExit(
                    f"FATAL: shards{shards} has no loadable quotients")
            compression[f"shards{shards}"] = {
                "paths": quotients.path_count,
                "classes": quotients.class_count,
                "ratio": round(quotients.compression_ratio, 2),
            }
            index.close()

            # Unquotiented exhaustive reference for this shard count.
            engine = SamaEngine.open(shard_path,
                                     config=_config("off", serial=True))
            total, rankings = _timed_rankings(engine, queries, k, rounds)
            engine.close()
            arms[f"shards{shards}-unquotiented"] = total
            for qid, ranking in rankings.items():
                if qid not in reference:
                    reference[qid] = ranking
                elif ranking != reference[qid]:
                    raise SystemExit(
                        f"FATAL: unquotiented shards{shards} ranking "
                        f"diverges on {qid} — sharding changed the answer")

            # The quotiented serial arm (and the rep/member counters).
            engine = SamaEngine.open(shard_path, config=_config(
                "auto", serial=True))
            try:
                if engine.quotient_resolver() is None:
                    raise SystemExit(
                        f"FATAL: shards{shards} engine loaded no quotients")
                before = get_registry().snapshot()
                total, rankings = _timed_rankings(engine, queries, k,
                                                  rounds)
                after = get_registry().snapshot()
            finally:
                engine.close()
            arms[f"shards{shards}-quotient-serial"] = total
            for qid, ranking in rankings.items():
                if ranking != reference[qid]:
                    raise SystemExit(
                        f"FATAL: shards{shards}-quotient-serial diverges "
                        f"on {qid} — quotients changed the answer")
            reps = (_counter(after, COUNTER_REPS)
                    - _counter(before, COUNTER_REPS))
            members = (_counter(after, COUNTER_MEMBERS)
                       - _counter(before, COUNTER_MEMBERS))
            sharing[f"shards{shards}"] = {
                "reps": int(reps),
                "members": int(members),
                "share_rate": round(members / max(1.0, reps + members), 4),
            }

            # Scatter-gather arms: both worker modes, sketch filter off
            # and in safe mode — the full acceptance matrix.
            for worker_mode in WORKER_MODES:
                for two_stage in TWO_STAGE_MODES:
                    arm = (f"shards{shards}-quotient-{worker_mode}"
                           f"-sketch_{two_stage}")
                    engine = SamaEngine.open(shard_path, config=_config(
                        "auto", worker_mode=worker_mode,
                        two_stage=two_stage))
                    if worker_mode == "procs":
                        engine.warm_workers()
                    try:
                        total, rankings = _timed_rankings(
                            engine, queries, k, rounds)
                    finally:
                        engine.close()
                    arms[arm] = total
                    for qid, ranking in rankings.items():
                        if ranking != reference[qid]:
                            raise SystemExit(
                                f"FATAL: {arm} ranking diverges on {qid} "
                                f"— quotients changed the answer")

    for arm, total in arms.items():
        arms[arm] = round(total, 4)
    ratios = [row["ratio"] for row in compression.values()]
    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "workers": WORKERS,
            "page_size": PAGE_SIZE,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "identical": True,
        "compression": dict(compression,
                            min_ratio=round(min(ratios), 2)),
        "sharing": sharing,
        "total_s": arms,
    }


def render_report(report: dict) -> str:
    meta = report["meta"]
    lines = []
    lines.append("Quotient-compressed scoring benchmark (one alignment "
                 "per equivalence class)")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, best of "
                 f"{meta['rounds']} rounds, Python {meta['python']}, "
                 f"{meta['cpu_count']} CPUs")
    lines.append("")
    lines.append(f"{'arm':<38} {'total s':>9}")
    for arm, total in report["total_s"].items():
        lines.append(f"{arm:<38} {total:>9.3f}")
    lines.append("")
    for name, row in report["compression"].items():
        if name == "min_ratio":
            continue
        lines.append(f"{name}: {row['paths']} paths -> {row['classes']} "
                     f"classes ({row['ratio']:.1f}x compression)")
    for name, row in report["sharing"].items():
        lines.append(f"{name}: {row['reps']} representatives aligned, "
                     f"{row['members']} members copied "
                     f"({100 * row['share_rate']:.1f}% shared)")
    lines.append("")
    lines.append("Quotiented rankings bit-identical to the unquotiented "
                 "engine at every shard count, worker mode and sketch "
                 f"mode: {report['identical']}")
    return "\n".join(lines)


def smoke_check(current: dict, committed_path: Path) -> int:
    """Gate identity and compression.

    Identity already gated hard inside :func:`run_bench` (the run
    aborts on the first divergent arm); here the compression ratio is
    checked against the absolute floor — ratios, not wall-clock, so
    the gate is machine-independent — and the committed full run must
    itself still clear the same floor.
    """
    failures = []
    ratio = current["compression"]["min_ratio"]
    status = "ok" if ratio >= COMPRESSION_FLOOR else "BELOW FLOOR"
    print(f"smoke: min compression {ratio:.2f}x, floor "
          f"{COMPRESSION_FLOOR:.1f}x  [{status}]")
    if ratio < COMPRESSION_FLOOR:
        failures.append("compression")
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        want = committed["compression"]["min_ratio"]
        if want < COMPRESSION_FLOOR:
            print(f"smoke: committed full run ({want:.2f}x) is below the "
                  f"{COMPRESSION_FLOOR:.1f}x floor")
            failures.append("committed-floor")
        if not committed.get("identical", False):
            print("smoke: committed full run did not record identity")
            failures.append("committed-identity")
    else:
        print(f"smoke: no committed baseline at {committed_path}; "
              "gating on the absolute floor only")
    if failures:
        print(f"smoke: FAIL — {', '.join(failures)}")
        return 1
    print("smoke: PASS — every arm bit-identical, compression above "
          "the floor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=None,
                        help="LUBM scale (default 3000; 1000 under "
                             "--smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cold rounds per arm, best-of "
                             "(default 2; 1 under --smoke)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run; gate identity and compression "
                             "against the committed BENCH_quotient.json "
                             "instead of rewriting it")
    args = parser.parse_args(argv)

    triples = args.triples or (1000 if args.smoke else 3000)
    rounds = args.rounds or (1 if args.smoke else 2)

    report = run_bench(triples, rounds, args.k)
    print(render_report(report))

    if args.smoke:
        return smoke_check(report, JSON_PATH)

    ratio = report["compression"]["min_ratio"]
    if ratio < COMPRESSION_FLOOR:
        print(f"\nFAIL: compression {ratio:.2f}x is below the "
              f"{COMPRESSION_FLOOR:.1f}x floor")
        return 1
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    TXT_PATH.parent.mkdir(exist_ok=True)
    TXT_PATH.write_text(render_report(report) + "\n")
    print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
