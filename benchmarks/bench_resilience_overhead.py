"""Budget-check overhead on the Fig. 6 workload: must stay under 5 %.

Every query in the online path polls its :class:`repro.resilience.Budget`
at the cooperative cancellation points; the strided clock check
(``check_stride``) is what keeps that affordable.  This module measures
the end-to-end cost: the Fig. 6 query subset, warm cache, unbudgeted
vs. carrying a deadline so large it never trips — so the entire
difference is bookkeeping.  Rounds are paired and the per-mode minimum
taken, which cancels machine noise.  The number lands in
``results/resilience_overhead.txt``.  Run::

    pytest benchmarks/bench_resilience_overhead.py --benchmark-only -s
"""

import os
import time

# Same subset as bench_fig6_response_time (spans the complexity range).
_QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
_ROUNDS = 7
_HUGE_DEADLINE_MS = 3_600_000.0  # one hour: armed, never trips

_RESULTS_FILE = os.path.join(os.path.dirname(__file__), "..", "results",
                             "resilience_overhead.txt")


def _workload_ms(engine, specs, deadline_ms):
    elapsed = 0.0
    for spec in specs:
        started = time.perf_counter()
        result = engine.query(spec.graph, k=10, deadline_ms=deadline_ms)
        elapsed += time.perf_counter() - started
        assert result.complete, f"budget tripped on {spec.qid}"
    return elapsed * 1000


def test_budget_overhead_under_5_percent(benchmark, engine, queries):
    specs = [spec for spec in queries if spec.qid in _QUERY_IDS]
    engine.warm_cache()
    for spec in specs:  # prime every per-query cache before timing
        engine.query(spec.graph, k=10)

    def measure():
        plain, budgeted = [], []
        for _ in range(_ROUNDS):
            plain.append(_workload_ms(engine, specs, None))
            budgeted.append(_workload_ms(engine, specs, _HUGE_DEADLINE_MS))
        return min(plain), min(budgeted)

    base_ms, budgeted_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = (budgeted_ms - base_ms) / base_ms * 100.0

    report = "\n".join([
        "Resilience budget-check overhead (Fig. 6 LUBM workload, warm cache)",
        f"queries: {', '.join(_QUERY_IDS)}  "
        f"rounds: {_ROUNDS} (paired, min per mode)",
        f"unbudgeted workload: {base_ms:.2f} ms",
        f"deadline_ms={_HUGE_DEADLINE_MS:g} workload: {budgeted_ms:.2f} ms",
        f"overhead: {overhead:+.2f} %  (target: < 5 %)",
        "",
    ])
    print("\n" + report)
    with open(_RESULTS_FILE, "w", encoding="utf-8") as handle:
        handle.write(report)
    assert overhead < 5.0, f"budget checks cost {overhead:.2f} % (>= 5 %)"
