"""Ablation: the guided A* join vs naive combination enumeration.

§5's claim is that the engine generates the top-k "directly ... by
trying to minimize the number of combinations between paths".  This
module measures the guided search against the enumerate-everything
reference on the same clusters — per-cluster truncation is the only
way to keep the naive side finite, and even then it falls behind.
Run::

    pytest benchmarks/bench_search_ablation.py --benchmark-only -s
"""

import pytest

from repro.engine.naive import naive_top_k
from repro.engine.search import SearchConfig, top_k

_STATS: dict[str, float] = {}


@pytest.fixture(scope="module")
def prepared_and_clusters(engine, queries):
    spec = next(s for s in queries if s.qid == "Q5")
    prepared = engine.prepare(spec.graph)
    clusters = engine.clusters(prepared)
    return prepared, clusters


def test_bench_guided_search(benchmark, prepared_and_clusters):
    prepared, clusters = prepared_and_clusters

    def run():
        return top_k(prepared, clusters, config=SearchConfig(k=10))

    result = benchmark(run)
    _STATS["guided_expansions"] = result.expansions
    _STATS["guided_best"] = result.answers[0].score if result.answers \
        else float("inf")


def test_bench_naive_enumeration(benchmark, prepared_and_clusters):
    prepared, clusters = prepared_and_clusters

    def run():
        # Without truncation the product is astronomically large; even
        # the top-8-per-cluster slice is orders of magnitude more work
        # than the guided search per answer.
        return naive_top_k(prepared, clusters, k=10, per_cluster=8)

    result = benchmark(run)
    _STATS["naive_combinations"] = result.expansions
    _STATS["naive_best"] = result.answers[0].score if result.answers \
        else float("inf")


def test_ablation_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _STATS, "searches did not run"
    print(f"\nguided search:  {_STATS['guided_expansions']:,} expansions, "
          f"best score {_STATS['guided_best']:.2f}")
    print(f"naive (top-8/cluster): {_STATS['naive_combinations']:,} "
          f"combinations, best score {_STATS['naive_best']:.2f}")
    # The naive side only sees each cluster's top 8; the guided search
    # roams the full clusters, so it must never be worse.
    assert _STATS["guided_best"] <= _STATS["naive_best"] + 1e-9
