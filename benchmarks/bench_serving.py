"""Serving-layer throughput benchmark: concurrent clients, cache on/off.

Runs the Fig. 6 LUBM workload against a real HTTP serving stack
(ThreadingHTTPServer + ServingEngine) three ways over the *same*
on-disk index:

- ``direct``: the cold single-shot baseline — one thread calling
  ``SamaEngine.query`` with a cold cache per evaluation, the way the
  CLI answers a query today;
- ``serve_cold``: 8 concurrent HTTP clients with the result cache
  disabled — what concurrency alone buys;
- ``serve_warm``: the same clients with the cache on, measured after
  one warming pass — what the epoch-keyed result cache buys.

Every ranking served over HTTP must be bit-identical (same JSON wire
form) to the direct engine's; the run aborts otherwise.  Results land
in ``BENCH_serving.json`` and ``results/serving.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke    # CI gate

``--smoke`` runs a reduced workload and gates on behaviour, not
wall-clock: zero HTTP errors, at least one cache hit, zero shed
requests, rankings identical, clean shutdown.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import SamaEngine  # noqa: E402
from repro.serving import (ServingClient, ServingConfig,  # noqa: E402
                           ServingEngine, answers_payload, serve)

#: Same workload subset as ``bench_fig6_response_time.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]

JSON_PATH = REPO_ROOT / "BENCH_serving.json"
TXT_PATH = REPO_ROOT / "results" / "serving.txt"


def _direct_baseline(engine: SamaEngine, queries, k: int,
                     rounds: int) -> dict:
    """Cold single-shot: one query at a time, caches dropped each time."""
    evaluated = 0
    started = time.perf_counter()
    for _ in range(rounds):
        for spec in queries:
            engine.cold_cache()
            engine.query(spec.graph, k=k)
            evaluated += 1
    elapsed = time.perf_counter() - started
    return {"requests": evaluated, "seconds": round(elapsed, 4),
            "qps": round(evaluated / elapsed, 2)}


def _reference_payloads(engine: SamaEngine, queries, k: int) -> dict:
    return {spec.qid: answers_payload(engine.query(spec.graph, k=k), k,
                                      epoch=0)["answers"]
            for spec in queries}


def _hammer(url: str, queries, k: int, clients: int, rounds: int,
            reference: dict) -> dict:
    """``clients`` threads, each sweeping the workload ``rounds`` times."""
    lock = threading.Lock()
    state = {"requests": 0, "errors": 0, "divergences": []}

    def worker(offset: int):
        client = ServingClient(url, timeout=300)
        for round_no in range(rounds):
            for step in range(len(queries)):
                spec = queries[(offset + step) % len(queries)]
                try:
                    document = client.query(spec.sparql, k=k)
                except Exception:
                    with lock:
                        state["errors"] += 1
                    continue
                with lock:
                    state["requests"] += 1
                    if document["answers"] != reference[spec.qid]:
                        state["divergences"].append(spec.qid)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if state["divergences"]:
        raise SystemExit(
            "FATAL: served rankings diverge from SamaEngine.query on "
            + ", ".join(sorted(set(state["divergences"])))
            + " — the serving layer is not answer-preserving")
    return {
        "requests": state["requests"],
        "errors": state["errors"],
        "seconds": round(elapsed, 4),
        "qps": round(state["requests"] / elapsed, 2) if elapsed else None,
    }


def run_bench(triples: int, clients: int, rounds: int, k: int,
              workers: int, seed: int = 0) -> dict:
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]

    with tempfile.TemporaryDirectory(prefix="sama-serving-") as directory:
        engine = SamaEngine.from_graph(graph, directory=directory)
        reference = _reference_payloads(engine, queries, k)
        direct = _direct_baseline(engine, queries, k, rounds=1)

        arms = {}
        stats = {}
        for arm, cache_bytes in (("serve_cold", 0),
                                 ("serve_warm", 64 << 20)):
            serving = ServingEngine(engine, ServingConfig(
                workers=workers, max_queue=max(2 * clients, 8),
                cache_bytes=cache_bytes, default_k=k))
            server = serve(serving, port=0).serve_background()
            try:
                if cache_bytes:
                    # One warming sweep; the measured phase is all-warm.
                    _hammer(server.url, queries, k, clients=1, rounds=1,
                            reference=reference)
                arms[arm] = _hammer(server.url, queries, k,
                                    clients=clients, rounds=rounds,
                                    reference=reference)
                stats[arm] = serving.stats_payload()
            finally:
                server.shutdown(close_engine=False)
        engine.close()

    warm_vs_direct = (arms["serve_warm"]["qps"] / direct["qps"]
                      if direct["qps"] else None)
    cold_vs_direct = (arms["serve_cold"]["qps"] / direct["qps"]
                      if direct["qps"] else None)
    return {
        "meta": {
            "triples": triples,
            "clients": clients,
            "rounds": rounds,
            "k": k,
            "workers": workers,
            "queries": QUERY_IDS,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "direct": direct,
        "serve_cold": {**arms["serve_cold"],
                       "shed": stats["serve_cold"]["shed"]},
        "serve_warm": {
            **arms["serve_warm"],
            "shed": stats["serve_warm"]["shed"],
            "cache_hit_rate": stats["serve_warm"]["cache"]["hit_rate"],
            "cache_hits": stats["serve_warm"]["cache"]["hits"],
            "cache_misses": stats["serve_warm"]["cache"]["misses"],
        },
        "speedup": {
            "serve_cold_vs_direct": round(cold_vs_direct, 3),
            "serve_warm_vs_direct": round(warm_vs_direct, 3),
        },
        "rankings_identical": True,
    }


def render_report(report: dict) -> str:
    meta = report["meta"]
    lines = []
    lines.append("Serving-layer throughput: concurrent HTTP clients vs "
                 "cold single-shot queries")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, "
                 f"{meta['clients']} clients x {meta['rounds']} rounds, "
                 f"{meta['workers']} workers, Python {meta['python']}")
    lines.append("")
    lines.append(f"{'arm':<12} {'requests':>9} {'errors':>7} "
                 f"{'seconds':>9} {'req/s':>9} {'vs direct':>10}")
    speedups = {"direct": 1.0,
                "serve_cold": report["speedup"]["serve_cold_vs_direct"],
                "serve_warm": report["speedup"]["serve_warm_vs_direct"]}
    for arm in ("direct", "serve_cold", "serve_warm"):
        row = report[arm]
        lines.append(f"{arm:<12} {row['requests']:>9} "
                     f"{row.get('errors', 0):>7} {row['seconds']:>9.2f} "
                     f"{row['qps']:>9.1f} {speedups[arm]:>9.2f}x")
    warm = report["serve_warm"]
    lines.append("")
    lines.append(f"warm cache: {warm['cache_hit_rate']:.1%} hit rate "
                 f"({warm['cache_hits']} hits / {warm['cache_misses']} "
                 f"misses), {warm['shed']} shed")
    lines.append("Served rankings bit-identical to SamaEngine.query: "
                 f"{report['rankings_identical']}")
    return "\n".join(lines)


def smoke_check(report: dict) -> int:
    """Behavioural gate for CI: correctness, not wall-clock."""
    failures = []
    for arm in ("serve_cold", "serve_warm"):
        if report[arm]["errors"]:
            failures.append(f"{arm}: {report[arm]['errors']} HTTP errors")
        if report[arm]["shed"]:
            failures.append(f"{arm}: {report[arm]['shed']} shed requests")
    if report["serve_warm"]["cache_hits"] < 1:
        failures.append("serve_warm: no cache hits recorded")
    if not report["rankings_identical"]:
        failures.append("served rankings diverged")
    for line in (failures or ["all checks passed"]):
        print(f"smoke: {line}")
    print(f"smoke: {'FAIL' if failures else 'PASS'}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--triples", type=int, default=3000)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=4,
                        help="workload sweeps per client")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--workers", type=int, default=None,
                        help="serving worker threads "
                             "(default: min(clients, cpu_count))")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload + behavioural gate for CI")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update the committed result files")
    args = parser.parse_args(argv)

    if args.smoke:
        args.triples = min(args.triples, 800)
        args.rounds = min(args.rounds, 2)
        args.clients = min(args.clients, 4)
    workers = args.workers or min(args.clients, os.cpu_count() or 4)

    report = run_bench(args.triples, args.clients, args.rounds, args.k,
                       workers=workers, seed=args.seed)
    text = render_report(report)
    print(text)

    if args.smoke:
        return smoke_check(report)

    warm_ratio = report["speedup"]["serve_warm_vs_direct"]
    if warm_ratio < 3.0:
        print(f"WARNING: warm-cache throughput is only {warm_ratio:.2f}x "
              "the cold single-shot baseline (target: >= 3x)")
    if not args.no_write:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
        TXT_PATH.parent.mkdir(exist_ok=True)
        TXT_PATH.write_text(text + "\n")
        print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
