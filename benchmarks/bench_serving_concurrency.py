"""Asyncio front-end concurrency benchmark: 1k+ keep-alive connections.

Opens ``--connections`` simultaneous keep-alive HTTP/1.1 connections
against the :mod:`repro.serving.aserve` front end over one LUBM index
and drives a closed loop (every client waits for its response before
sending the next request) through two arms:

- ``identical``: every client sends the *same* query with the result
  cache disabled — the single-flight stampede case.  Each wave of
  concurrent requests must collapse onto one engine computation, so
  the coalesce rate is the headline number;
- ``mixed``: clients sweep the five-query Fig. 6 workload with the
  cache enabled — the steady-state case; p99 latency under full
  connection load is the headline number.

Each arm reports client-side latency percentiles (p50/p95/p99), the
shed rate (engine 503s), the coalesce rate, and the server's framing
counters — any connection the server closed to protect framing is a
correctness failure, not a statistic.  Results land in
``BENCH_concurrency.json`` and ``results/concurrency.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_concurrency.py          # full run
    PYTHONPATH=src python benchmarks/bench_serving_concurrency.py --smoke  # CI gate

``--smoke`` shrinks the fleet and gates on behaviour, not wall-clock:
zero framing errors on either side, zero HTTP-level client errors, a
non-zero coalesce rate under identical load, and a reported p99.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import SamaEngine  # noqa: E402
from repro.serving import (ServingConfig, ServingEngine,  # noqa: E402
                           serve_async)

QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]

JSON_PATH = REPO_ROOT / "BENCH_concurrency.json"
TXT_PATH = REPO_ROOT / "results" / "concurrency.txt"


def _raise_fd_limit(connections: int) -> int:
    """Ask for enough file descriptors (client + server ends + slack);
    returns the connection count that actually fits."""
    try:
        import resource
    except ImportError:  # non-POSIX: hope for the best
        return connections
    needed = 4 * connections + 256
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE,
                               (min(needed, hard), hard))
            soft = min(needed, hard)
        except (ValueError, OSError):
            pass
    if soft < needed:
        fitting = max(16, (soft - 256) // 4)
        print(f"note: RLIMIT_NOFILE={soft} caps the fleet at {fitting} "
              f"connections (asked for {connections})")
        return fitting
    return connections


def _post_bytes(body: bytes) -> bytes:
    return (f"POST /query HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode() + body


def _read_response(handle) -> "tuple[int, bytes]":
    """One framed response; raises ValueError on any framing violation."""
    status_line = handle.readline()
    if not status_line.startswith(b"HTTP/1.1 "):
        raise ValueError(f"bad status line {status_line!r}")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = handle.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise ValueError("EOF inside response headers")
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    body = handle.read(length)
    if len(body) != length:
        raise ValueError(f"truncated body ({len(body)}/{length})")
    return status, body


class _ArmState:
    """Shared accumulator for one arm's client fleet."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms: "list[float]" = []
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.framing = 0


def _client(host: str, port: int, payloads: "list[bytes]", rounds: int,
            offset: int, barrier: threading.Barrier,
            state: _ArmState) -> None:
    """One closed-loop keep-alive connection for the whole arm."""
    try:
        sock = socket.create_connection((host, port), timeout=600)
        handle = sock.makefile("rb")
    except OSError:
        with state.lock:
            state.errors += rounds
        barrier.wait()
        return
    try:
        barrier.wait()  # every connection is open before traffic starts
        for step in range(rounds):
            request = payloads[(offset + step) % len(payloads)]
            started = time.perf_counter()
            try:
                sock.sendall(request)
                status, _body = _read_response(handle)
            except ValueError:
                with state.lock:
                    state.framing += 1
                return  # the connection is desynchronised: stop using it
            except OSError:
                with state.lock:
                    state.errors += 1
                return
            latency_ms = (time.perf_counter() - started) * 1000.0
            with state.lock:
                state.latencies_ms.append(latency_ms)
                if status == 200:
                    state.ok += 1
                elif status == 503:
                    state.shed += 1
                else:
                    state.errors += 1
    finally:
        handle.close()
        sock.close()


def _percentile(ordered: "list[float]", fraction: float) -> "float | None":
    if not ordered:
        return None
    position = min(len(ordered) - 1,
                   max(0, round(fraction * (len(ordered) - 1))))
    return round(ordered[position], 3)


def _run_arm(server, payloads: "list[bytes]", connections: int,
             rounds: int) -> dict:
    """``connections`` keep-alive clients, each issuing ``rounds``
    closed-loop requests; client-side latencies + server counters."""
    state = _ArmState()
    barrier = threading.Barrier(connections + 1)
    flight0 = (server.flight.leaders, server.flight.coalesced)
    framing0 = server.connections.framing_close
    shed0 = server.serving.stats.snapshot().shed
    threads = [
        threading.Thread(target=_client,
                         args=(server.host, server.port, payloads, rounds,
                               i, barrier, state), daemon=True)
        for i in range(connections)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    leaders = server.flight.leaders - flight0[0]
    coalesced = server.flight.coalesced - flight0[1]
    attempts = state.ok + state.shed + state.errors
    ordered = sorted(state.latencies_ms)
    return {
        "connections": connections,
        "requests": attempts,
        "ok": state.ok,
        "shed": state.shed,
        "errors": state.errors,
        "client_framing_errors": state.framing,
        "server_framing_closes": (server.connections.framing_close
                                  - framing0),
        "engine_shed": server.serving.stats.snapshot().shed - shed0,
        "seconds": round(elapsed, 4),
        "qps": round(attempts / elapsed, 2) if elapsed else None,
        "latency_p50_ms": _percentile(ordered, 0.50),
        "latency_p95_ms": _percentile(ordered, 0.95),
        "latency_p99_ms": _percentile(ordered, 0.99),
        "singleflight_leaders": leaders,
        "singleflight_coalesced": coalesced,
        "coalesce_rate": (round(coalesced / (leaders + coalesced), 4)
                          if leaders + coalesced else 0.0),
        "shed_rate": (round(state.shed / attempts, 4) if attempts else 0.0),
    }


def run_bench(triples: int, connections: int, rounds: int, k: int,
              workers: int, seed: int = 0) -> dict:
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]
    payloads_mixed = [
        _post_bytes(json.dumps({"query": spec.sparql, "k": k}).encode())
        for spec in queries
    ]
    payloads_identical = payloads_mixed[:1]

    import tempfile
    arms = {}
    with tempfile.TemporaryDirectory(prefix="sama-aserve-") as directory:
        engine = SamaEngine.from_graph(graph, directory=directory)

        # identical: the stampede arm — cache off so *every* wave must
        # coalesce, not just the cold one.
        serving = ServingEngine(engine, ServingConfig(
            workers=workers, max_queue=max(64, 2 * workers),
            cache_bytes=0, default_k=k))
        server = serve_async(serving, port=0,
                             max_connections=connections + 8,
                             read_timeout_s=600.0,
                             write_timeout_s=600.0).serve_background()
        try:
            arms["identical"] = _run_arm(server, payloads_identical,
                                         connections, rounds)
        finally:
            server.shutdown(close_engine=False)

        # mixed: the steady-state arm — cache on, five-query sweep.
        serving = ServingEngine(engine, ServingConfig(
            workers=workers, max_queue=max(64, 2 * workers),
            cache_bytes=64 << 20, default_k=k))
        server = serve_async(serving, port=0,
                             max_connections=connections + 8,
                             read_timeout_s=600.0,
                             write_timeout_s=600.0).serve_background()
        try:
            arms["mixed"] = _run_arm(server, payloads_mixed,
                                     connections, rounds)
        finally:
            server.shutdown(close_engine=False)
        engine.close()

    return {
        "meta": {
            "triples": triples,
            "connections": connections,
            "rounds": rounds,
            "k": k,
            "workers": workers,
            "queries": QUERY_IDS,
            "frontend": "asyncio",
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "identical": arms["identical"],
        "mixed": arms["mixed"],
    }


def render_report(report: dict) -> str:
    meta = report["meta"]
    lines = []
    lines.append("Asyncio front end under full connection load "
                 "(closed-loop keep-alive clients)")
    lines.append(f"LUBM {meta['triples']} triples, "
                 f"{meta['connections']} connections x {meta['rounds']} "
                 f"requests, k={meta['k']}, {meta['workers']} workers, "
                 f"Python {meta['python']}")
    lines.append("")
    lines.append(f"{'arm':<10} {'requests':>9} {'ok':>7} {'shed':>6} "
                 f"{'err':>4} {'req/s':>8} {'p50 ms':>8} {'p95 ms':>9} "
                 f"{'p99 ms':>9} {'coalesce':>9}")
    for arm in ("identical", "mixed"):
        row = report[arm]
        lines.append(
            f"{arm:<10} {row['requests']:>9} {row['ok']:>7} "
            f"{row['shed']:>6} {row['errors']:>4} {row['qps']:>8.1f} "
            f"{row['latency_p50_ms']:>8.2f} {row['latency_p95_ms']:>9.2f} "
            f"{row['latency_p99_ms']:>9.2f} {row['coalesce_rate']:>8.1%}")
    identical = report["identical"]
    lines.append("")
    lines.append(
        f"identical-query load: {identical['singleflight_coalesced']} of "
        f"{identical['singleflight_coalesced'] + identical['singleflight_leaders']} "
        f"requests coalesced onto {identical['singleflight_leaders']} "
        f"engine computations "
        f"({identical['coalesce_rate']:.1%} coalesce rate)")
    framing = (identical["server_framing_closes"]
               + report["mixed"]["server_framing_closes"]
               + identical["client_framing_errors"]
               + report["mixed"]["client_framing_errors"])
    lines.append(f"framing violations (client + server, both arms): "
                 f"{framing}")
    return "\n".join(lines)


def smoke_check(report: dict) -> int:
    """Behavioural gate for CI: correctness, not wall-clock."""
    failures = []
    for arm in ("identical", "mixed"):
        row = report[arm]
        if row["client_framing_errors"]:
            failures.append(f"{arm}: {row['client_framing_errors']} "
                            "client-side framing errors")
        if row["server_framing_closes"]:
            failures.append(f"{arm}: server closed "
                            f"{row['server_framing_closes']} connections "
                            "to protect framing")
        if row["errors"]:
            failures.append(f"{arm}: {row['errors']} HTTP client errors")
        if row["latency_p99_ms"] is None:
            failures.append(f"{arm}: no p99 latency recorded")
    if report["identical"]["coalesce_rate"] <= 0.0:
        failures.append("identical: no single-flight coalescing under "
                        "duplicate load")
    for line in (failures or ["all checks passed"]):
        print(f"smoke: {line}")
    print(f"smoke: {'FAIL' if failures else 'PASS'}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--triples", type=int, default=1500)
    parser.add_argument("--connections", type=int, default=1024,
                        help="simultaneous keep-alive connections")
    parser.add_argument("--rounds", type=int, default=4,
                        help="closed-loop requests per connection")
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--workers", type=int, default=None,
                        help="serving worker threads (default: cpu_count)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced fleet + behavioural gate for CI")
    parser.add_argument("--no-write", action="store_true",
                        help="do not update the committed result files")
    args = parser.parse_args(argv)

    if args.smoke:
        args.triples = min(args.triples, 800)
        args.connections = min(args.connections, 64)
        args.rounds = min(args.rounds, 3)
    args.connections = _raise_fd_limit(args.connections)
    workers = args.workers or (os.cpu_count() or 4)

    report = run_bench(args.triples, args.connections, args.rounds,
                       args.k, workers=workers, seed=args.seed)
    text = render_report(report)
    print(text)

    if args.smoke:
        return smoke_check(report)

    if not args.no_write:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
        TXT_PATH.parent.mkdir(exist_ok=True)
        TXT_PATH.write_text(text + "\n")
        print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
