"""Sharding A/B benchmark: scatter-gather vs the single-shard engine.

Times the Fig. 6 LUBM workload end-to-end (cold cache every round)
over the *same* graph stored four ways: one plain ``PathIndex``
(``unsharded``) and a ``ShardedIndex`` at 1, 2 and 4 shards — plus,
on the 4-shard layout, a ``serial`` arm (workers=1) and a ``procs``
arm (``worker_mode="procs"``, one scoring process per shard; see
``bench_multiproc.py`` for the in-memory study of that mode).  All
arms must produce bit-identical rankings and scores — the run aborts
otherwise; the ranking guarantee is the point of the deterministic
``(λ, gid)`` merge in ``repro.engine.clustering``.

The condition models a disk/network-backed deployment, like the Fig. 6
harness: indexes are paged at 1 KiB and every physical page read pays
``READ_LATENCY`` (see ``INDEX_PAGE_LATENCY`` in
``repro.evaluation.runner`` for the same technique).  The sharded
engine's win is *overlap*: scatter-gather decodes each shard from its
own worker thread, so page-read stalls that serialise on the unsharded
engine run concurrently — pure-Python alignment time is GIL-bound and
does not speed up, which is why the gate is end-to-end wall clock, not
CPU.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py            # full run
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke    # CI gate

Results land in ``BENCH_sharding.json`` (committed, machine-readable)
and ``results/sharding.txt``.  ``--smoke`` runs a reduced workload and
fails (exit 1) when rankings diverge, when the measured 4-shard
speedup falls more than ``--tolerance`` below the committed one, or
when the committed full-run 4-shard speedup is below the 1.3x floor.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import EngineConfig, SamaEngine  # noqa: E402

#: Same workload subset as ``bench_fig6_response_time.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
SHARD_COUNTS = (1, 2, 4)
#: Arm -> (index layout, execution mode).  The first four arms (and
#: their JSON keys) predate the execution-mode split and keep their
#: historical names so committed speedups stay comparable; the two
#: extra arms re-run the 4-shard layout serial and with process
#: workers.
ARMS = {
    "unsharded": ("unsharded", "threads"),
    "shards1": ("shards1", "threads"),
    "shards2": ("shards2", "threads"),
    "shards4": ("shards4", "threads"),
    "shards4-serial": ("shards4", "serial"),
    "shards4-procs": ("shards4", "procs"),
}
MODES = tuple(ARMS)

#: Simulated physical read cost per 1 KiB page (a disk/remote page
#: store; cf. ``INDEX_PAGE_LATENCY`` in ``repro.evaluation.runner``).
READ_LATENCY = 0.001
PAGE_SIZE = 1024
WORKERS = 4

#: The committed full run must clear this end-to-end speedup at 4
#: shards (the ISSUE's acceptance floor).
SPEEDUP_FLOOR = 1.3

JSON_PATH = REPO_ROOT / "BENCH_sharding.json"
TXT_PATH = REPO_ROOT / "results" / "sharding.txt"


def _engine_config(execution: str):
    """EngineConfig for one arm's execution mode."""
    if execution == "serial":
        return EngineConfig(workers=1, worker_mode="threads")
    return EngineConfig(workers=WORKERS, worker_mode=execution)


def _build_indexes(graph, directory: str) -> dict[str, str]:
    """Build all four index layouts; returns layout -> directory."""
    from repro.index.builder import build_index
    from repro.index.sharded import build_sharded_index
    from repro.index.thesaurus import default_thesaurus

    thesaurus = default_thesaurus()
    layout = {}
    plain_dir = os.path.join(directory, "unsharded")
    index, _ = build_index(graph, plain_dir, thesaurus=thesaurus,
                           page_size=PAGE_SIZE)
    index.close()
    layout["unsharded"] = plain_dir
    for shards in SHARD_COUNTS:
        shard_path = os.path.join(directory, f"shards{shards}")
        index, _ = build_sharded_index(graph, shard_path, shards,
                                       thesaurus=thesaurus,
                                       page_size=PAGE_SIZE)
        index.close()
        layout[f"shards{shards}"] = shard_path
    return layout


def run_bench(triples: int, rounds: int, k: int, seed: int = 0) -> dict:
    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]

    per_query: dict[str, dict] = {}
    totals = dict.fromkeys(MODES, 0.0)
    with tempfile.TemporaryDirectory(prefix="sama-sharding-") as directory:
        layout = _build_indexes(graph, directory)
        engines = {}
        for mode, (layout_key, execution) in ARMS.items():
            engine = SamaEngine.open(layout[layout_key],
                                     config=_engine_config(execution),
                                     read_latency=READ_LATENCY)
            engine.warm_workers()
            engines[mode] = engine
        try:
            for spec in queries:
                per_query[spec.qid] = {}
                rankings = {}
                for mode, engine in engines.items():
                    samples = []
                    for _ in range(rounds):
                        engine.cold_cache()
                        started = time.perf_counter()
                        result = engine.query(spec.graph, k=k)
                        samples.append(time.perf_counter() - started)
                    rankings[mode] = [(round(answer.score, 9), str(answer))
                                      for answer in result]
                    best = min(samples)
                    per_query[spec.qid][mode] = round(best * 1000, 3)
                    totals[mode] += best
                for mode in MODES[1:]:
                    if rankings[mode] != rankings["unsharded"]:
                        raise SystemExit(
                            f"FATAL: {mode} ranking diverges from the "
                            f"unsharded engine on {spec.qid} — the "
                            f"scatter-gather merge is not "
                            f"order-preserving")
        finally:
            for engine in engines.values():
                engine.close()

    summary = {}
    base_ms = totals["unsharded"] * 1000
    for mode in MODES:
        mode_ms = totals[mode] * 1000
        summary[mode] = {
            "total_ms": round(mode_ms, 3),
            "speedup": round(base_ms / mode_ms, 3) if mode_ms else None,
        }
    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "workers": WORKERS,
            "page_size": PAGE_SIZE,
            "read_latency_s": READ_LATENCY,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "modes": summary,
        "per_query": per_query,
        "rankings_identical": True,
    }


def render_report(report: dict) -> str:
    lines = []
    meta = report["meta"]
    lines.append("Sharding A/B benchmark (scatter-gather vs single shard, "
                 "end-to-end cold-cache wall clock)")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, best of "
                 f"{meta['rounds']} rounds, {meta['workers']} workers, "
                 f"{meta['page_size']} B pages at "
                 f"{meta['read_latency_s'] * 1000:g} ms/read, "
                 f"Python {meta['python']}")
    lines.append("")
    lines.append(f"{'mode':<15} {'total ms':>10} {'speedup':>9}")
    for mode in MODES:
        row = report["modes"][mode]
        lines.append(f"{mode:<15} {row['total_ms']:>10.1f} "
                     f"{row['speedup']:>8.2f}x")
    lines.append("")
    lines.append(f"{'query':<8}" + "".join(f" {mode:>14}" for mode in MODES))
    for qid, modes in report["per_query"].items():
        lines.append(f"{qid:<8}" + "".join(
            f" {modes[mode]:>14.1f}" for mode in MODES))
    lines.append("")
    lines.append("Rankings and scores identical across all shard counts: "
                 f"{report['rankings_identical']}")
    return "\n".join(lines)


def smoke_check(current: dict, committed_path: Path,
                tolerance: float) -> int:
    """Gate the measured 4-shard speedup against the committed run.

    Ratios, not wall-clock, are compared, so the gate is
    machine-independent; the committed (full-size) run must itself
    clear the :data:`SPEEDUP_FLOOR`.
    """
    if not committed_path.exists():
        print(f"smoke: no committed baseline at {committed_path}; "
              "nothing to gate against")
        return 0
    committed = json.loads(committed_path.read_text())
    failures = []
    want = committed["modes"]["shards4"]["speedup"]
    if want < SPEEDUP_FLOOR:
        print(f"smoke: committed full-run 4-shard speedup {want:.2f}x is "
              f"below the {SPEEDUP_FLOOR:.1f}x floor")
        failures.append("committed-floor")
    for mode in MODES[1:]:
        want = committed["modes"][mode]["speedup"]
        got = current["modes"][mode]["speedup"]
        floor = want * (1.0 - tolerance)
        status = "ok" if got >= floor else "REGRESSED"
        print(f"smoke: {mode:<14} committed {want:.2f}x, measured "
              f"{got:.2f}x, floor {floor:.2f}x  [{status}]")
        if got < floor:
            failures.append(mode)
    if failures:
        print(f"smoke: FAIL — {', '.join(failures)}")
        return 1
    print("smoke: PASS — rankings identical at every shard count, "
          "speedups within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=None,
                        help="LUBM scale (default 3000; 2000 under --smoke "
                             "— below ~1500 triples clusters are too small "
                             "for scatter-gather to engage, so a smaller "
                             "smoke would not exercise the fast path)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cold rounds per query/mode, best-of "
                             "(default 3; 1 under --smoke)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run; gate the speedup ratios against "
                             "the committed BENCH_sharding.json instead of "
                             "rewriting it")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative speedup regression in smoke "
                             "mode (default 0.30)")
    args = parser.parse_args(argv)

    triples = args.triples or (2000 if args.smoke else 3000)
    rounds = args.rounds or (1 if args.smoke else 3)

    report = run_bench(triples, rounds, args.k)
    print(render_report(report))

    if args.smoke:
        return smoke_check(report, JSON_PATH, args.tolerance)

    measured = report["modes"]["shards4"]["speedup"]
    if measured < SPEEDUP_FLOOR:
        print(f"\nFAIL: 4-shard end-to-end speedup {measured:.2f}x is "
              f"below the {SPEEDUP_FLOOR:.1f}x floor")
        return 1
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    TXT_PATH.parent.mkdir(exist_ok=True)
    TXT_PATH.write_text(render_report(report) + "\n")
    print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
