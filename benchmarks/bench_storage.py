"""Ablation benchmarks on the storage substrate.

Quantifies the design choices DESIGN.md calls out: the buffer pool's
cold/warm gap (what makes Fig. 6a vs 6b differ) and the cost of the
path codec.  Run::

    pytest benchmarks/bench_storage.py --benchmark-only -s
"""

import pytest

from repro.paths.model import Path
from repro.rdf.terms import URI
from repro.storage.bufferpool import BufferPool
from repro.storage.pagestore import PageStore
from repro.storage.recordfile import RecordFile
from repro.storage.serializer import decode_path, encode_path


@pytest.fixture(scope="module")
def populated_log(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-storage")
    store = PageStore(directory / "log.db", page_size=4096)
    log = RecordFile(store)
    path = Path([URI(f"http://x/node{i}") for i in range(6)],
                [URI(f"http://x/edge{i}") for i in range(5)],
                node_ids=list(range(6)))
    blob = encode_path(path)
    offsets = [log.append(blob) for _ in range(2000)]
    log.seal()
    return log, offsets


def test_bench_cold_reads(benchmark, populated_log):
    log, offsets = populated_log

    def cold():
        log.pool.clear()
        for offset in offsets[:500]:
            log.read(offset)

    benchmark(cold)


def test_bench_warm_reads(benchmark, populated_log):
    log, offsets = populated_log
    for offset in offsets[:500]:
        log.read(offset)

    def warm():
        for offset in offsets[:500]:
            log.read(offset)

    benchmark(warm)
    assert log.pool.stats.hit_ratio > 0.5


def test_bench_encode_path(benchmark):
    path = Path([URI(f"http://x/node{i}") for i in range(8)],
                [URI(f"http://x/edge{i}") for i in range(7)],
                node_ids=list(range(8)))
    benchmark(encode_path, path)


def test_bench_decode_path(benchmark):
    path = Path([URI(f"http://x/node{i}") for i in range(8)],
                [URI(f"http://x/edge{i}") for i in range(7)],
                node_ids=list(range(8)))
    blob = encode_path(path)
    assert decode_path(blob) == path
    benchmark(decode_path, blob)
