"""Table 1: HyperGraphDB indexing — build time, |HV|, |HE|, space.

Regenerates the paper's indexing table over all eight datasets at
scaled sizes.  The pytest-benchmark timings are the 't' column; the
printed table carries the full row set.  Run::

    pytest benchmarks/bench_table1_indexing.py --benchmark-only -s
"""

import pytest

from repro.datasets import all_datasets
from repro.evaluation.reporting import format_bytes, format_seconds, format_table
from repro.index import build_index
from repro.paths.extraction import ExtractionLimits

# Bounded so the cyclic datasets (pblog) stay fast at bench scale.
_LIMITS = ExtractionLimits(max_length=24, max_paths=60_000,
                           on_limit="truncate")

_ROWS: list = []


@pytest.mark.parametrize("spec", all_datasets(), ids=lambda s: s.name)
def test_table1_index_build(benchmark, spec, tmp_path):
    """One Table 1 row: index build for one dataset."""
    graph = spec.build(seed=0)
    counter = [0]

    def build():
        counter[0] += 1
        directory = tmp_path / f"{spec.name}-{counter[0]}"
        index, stats = build_index(graph, str(directory), limits=_LIMITS)
        index.close()
        return stats

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    assert stats.path_count > 0
    assert stats.hv_count == graph.node_count()
    _ROWS.append([spec.name.upper(), f"(paper {spec.paper_triples})",
                  stats.triple_count, stats.hv_count, stats.he_count,
                  format_seconds(stats.build_seconds),
                  format_bytes(stats.size_bytes),
                  "yes" if stats.truncated else "no"])


def test_print_table1_report(benchmark):
    """Render the report (kept alive under --benchmark-only)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "index builds did not run"
    print()
    print(format_table(
        ["DG", "paper size", "#Triples", "|HV|", "|HE|", "t", "Space",
         "truncated"],
        _ROWS, title="Table 1: HyperGraphDB indexing (scaled datasets)"))
    # Shape assertions mirroring the paper: sizes grow down the table.
    triples = [row[2] for row in _ROWS]
    assert triples == sorted(triples)
