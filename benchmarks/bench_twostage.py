"""Two-stage retrieval benchmark: sketch recall + exact λ/ψ rerank.

Runs the Fig. 9 LUBM workload against sharded indexes with persisted
minhash sketches (``sama index sketch``) and measures the two claims
the subsystem makes:

* **safe mode is free of risk** — rankings and scores are bit-identical
  to exhaustive scoring at every shard count and under every worker
  mode (serial / threads / procs).  The run aborts on the first
  divergence.
* **approximate mode trades bounded recall for work** — with the
  default 0.95 recall target the top-k answer recall stays at or above
  the target while the number of candidates reaching the exact λ/ψ
  scorer drops by the acceptance floor (3x on the full run).  Recall
  and reduction are measured from the engine's own
  ``sama_sketch_candidates_total`` / ``sama_sketch_pruned_total``
  counters, so the gate sees exactly what serving telemetry reports.

Wall-clock per arm is recorded for context (on this repo's reference
container approximate mode is also the fastest arm end-to-end), but
only identity, recall and reduction are gated — timing floors live in
``bench_multiproc.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_twostage.py            # full run
    PYTHONPATH=src python benchmarks/bench_twostage.py --smoke    # CI gate

Results land in ``BENCH_twostage.json`` (committed, machine-readable)
and ``results/twostage.txt``.  The full run refuses to write artifacts
when mean recall is below :data:`RECALL_FLOOR` or candidate reduction
below :data:`REDUCTION_FLOOR`; ``--smoke`` runs a reduced workload and
fails when safe mode diverges, when recall drops below the committed
full-run floor, when reduction falls below the absolute
:data:`SMOKE_REDUCTION_FLOOR`, or when it falls more than
``--tolerance`` below the committed full-run reduction.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets import dataset, lubm_queries  # noqa: E402
from repro.engine import EngineConfig, SamaEngine  # noqa: E402
from repro.obs import get_registry  # noqa: E402

#: Same workload subset as ``bench_multiproc.py``.
QUERY_IDS = ["Q1", "Q2", "Q3", "Q5", "Q7"]
SHARD_COUNTS = (1, 2, 4)
WORKER_MODES = ("serial", "threads", "procs")

PAGE_SIZE = 1024
WORKERS = 4
RECALL_TARGET = 0.95

#: The committed full run must clear these (the ISSUE's acceptance
#: criteria: recall >= 0.95 with >= 3x fewer exact scorings) ...
RECALL_FLOOR = 0.95
REDUCTION_FLOOR = 3.0
#: ... and a smoke run on the reduced dataset must clear this one.
SMOKE_REDUCTION_FLOOR = 1.5

JSON_PATH = REPO_ROOT / "BENCH_twostage.json"
TXT_PATH = REPO_ROOT / "results" / "twostage.txt"

COUNTER_CANDIDATES = "sama_sketch_candidates_total"
COUNTER_PRUNED = "sama_sketch_pruned_total"


def _mode_config(worker_mode: str, two_stage: str) -> EngineConfig:
    if worker_mode == "serial":
        return EngineConfig(workers=1, worker_mode="threads",
                            two_stage=two_stage,
                            recall_target=RECALL_TARGET)
    return EngineConfig(workers=WORKERS, worker_mode=worker_mode,
                        two_stage=two_stage, recall_target=RECALL_TARGET)


def _ranking(engine, spec, k: int) -> list:
    return [(round(answer.score, 9), str(answer))
            for answer in engine.query(spec.graph, k=k)]


def _timed_rankings(engine, queries, k: int, rounds: int):
    """Best-of-``rounds`` cold-cache total plus the final rankings.

    One untimed pass first: the sketch filter, its memoised match
    sets and the columnar caches are steady-state serving structures,
    not per-query work.
    """
    for spec in queries:
        engine.query(spec.graph, k=k)
    samples = []
    rankings = {}
    for _ in range(rounds):
        engine.cold_cache()
        started = time.perf_counter()
        for spec in queries:
            rankings[spec.qid] = _ranking(engine, spec, k)
        samples.append(time.perf_counter() - started)
    return min(samples), rankings


def _counter(snapshot: dict, name: str) -> float:
    return float(snapshot.get(name, 0))


def run_bench(triples: int, rounds: int, k: int, seed: int = 0) -> dict:
    from repro.index.sharded import build_sharded_index
    from repro.index.thesaurus import default_thesaurus
    from repro.sketch import DEFAULT_SEED, SketchParams, build_sketches

    graph = dataset("lubm").build(triples, seed=seed)
    queries = [spec for spec in lubm_queries() if spec.qid in QUERY_IDS]
    thesaurus = default_thesaurus()
    params = SketchParams()

    reference: dict[str, list] = {}
    safe_arms: dict[str, float] = {}
    approx: dict = {}
    with tempfile.TemporaryDirectory(prefix="sama-twostage-") as directory:
        for shards in SHARD_COUNTS:
            shard_path = os.path.join(directory, f"shards{shards}")
            index, _ = build_sharded_index(graph, shard_path, shards,
                                           thesaurus=thesaurus,
                                           page_size=PAGE_SIZE)
            build_sketches(index, params)
            index.close()

            # Exhaustive reference for this shard count (and the
            # cross-shard identity assertion bench_multiproc pioneered).
            engine = SamaEngine.open(
                shard_path, config=_mode_config("serial", "off"))
            total, rankings = _timed_rankings(engine, queries, k, rounds)
            engine.close()
            safe_arms[f"shards{shards}-exhaustive"] = total
            for qid, ranking in rankings.items():
                if qid not in reference:
                    reference[qid] = ranking
                elif ranking != reference[qid]:
                    raise SystemExit(
                        f"FATAL: exhaustive shards{shards} ranking "
                        f"diverges on {qid} — sharding changed the answer")

            for worker_mode in WORKER_MODES:
                arm = f"shards{shards}-safe-{worker_mode}"
                engine = SamaEngine.open(
                    shard_path, config=_mode_config(worker_mode, "safe"))
                if worker_mode == "procs":
                    engine.warm_workers()
                try:
                    total, rankings = _timed_rankings(
                        engine, queries, k, rounds)
                finally:
                    engine.close()
                safe_arms[arm] = total
                for qid, ranking in rankings.items():
                    if ranking != reference[qid]:
                        raise SystemExit(
                            f"FATAL: {arm} ranking diverges on {qid} — "
                            f"safe mode changed the answer")

            if shards != SHARD_COUNTS[-1]:
                continue

            # Approximate mode, measured at the widest shard count:
            # top-k answer recall against the exhaustive reference and
            # exact-scoring reduction from the serving counters.
            engine = SamaEngine.open(
                shard_path, config=_mode_config("serial", "approx"))
            try:
                if engine.sketch_filter() is None:
                    raise SystemExit("FATAL: no usable sketches for the "
                                     "approx arm")
                total, _warm = _timed_rankings(engine, queries, k, rounds)
                engine.cold_cache()
                before = get_registry().snapshot()
                per_query = {}
                for spec in queries:
                    got = set(_ranking(engine, spec, k))
                    want = reference[spec.qid]
                    hit = sum(1 for answer in want if answer in got)
                    per_query[spec.qid] = {
                        "recall": round(hit / max(1, len(want)), 4)}
                after = get_registry().snapshot()
            finally:
                engine.close()
            candidates = (_counter(after, COUNTER_CANDIDATES)
                          - _counter(before, COUNTER_CANDIDATES))
            pruned = (_counter(after, COUNTER_PRUNED)
                      - _counter(before, COUNTER_PRUNED))
            recalls = [row["recall"] for row in per_query.values()]
            approx = {
                "recall_target": RECALL_TARGET,
                "per_query": per_query,
                "mean_recall": round(sum(recalls) / len(recalls), 4),
                "candidates": int(candidates),
                "scored": int(candidates - pruned),
                "pruned": int(pruned),
                "reduction": round(
                    candidates / max(1.0, candidates - pruned), 3),
                "total_s": round(total, 4),
            }

    for arm, total in safe_arms.items():
        safe_arms[arm] = round(total, 4)
    return {
        "meta": {
            "triples": triples,
            "rounds": rounds,
            "k": k,
            "queries": QUERY_IDS,
            "workers": WORKERS,
            "page_size": PAGE_SIZE,
            "num_perm": params.num_perm,
            "bands": params.bands,
            "sketch_seed": DEFAULT_SEED,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "safe": {
            "identical": True,
            "total_s": safe_arms,
        },
        "approx": approx,
    }


def render_report(report: dict) -> str:
    meta = report["meta"]
    lines = []
    lines.append("Two-stage retrieval benchmark (sketch recall + exact "
                 "λ/ψ rerank)")
    lines.append(f"LUBM {meta['triples']} triples, queries "
                 f"{', '.join(meta['queries'])}, k={meta['k']}, best of "
                 f"{meta['rounds']} rounds, {meta['num_perm']} perms x "
                 f"{meta['bands']} bands, Python {meta['python']}, "
                 f"{meta['cpu_count']} CPUs")
    lines.append("")
    lines.append(f"{'arm':<26} {'total s':>9}")
    for arm, total in report["safe"]["total_s"].items():
        lines.append(f"{arm:<26} {total:>9.3f}")
    lines.append("")
    lines.append("Safe mode bit-identical to exhaustive at every shard "
                 f"count and worker mode: {report['safe']['identical']}")
    approx = report["approx"]
    lines.append("")
    lines.append(f"Approximate mode (recall target "
                 f"{approx['recall_target']}, shards{SHARD_COUNTS[-1]}, "
                 f"serial):")
    for qid, row in approx["per_query"].items():
        lines.append(f"  {qid:<6} recall {row['recall']:.2f}")
    lines.append(f"  mean recall {approx['mean_recall']:.3f}, "
                 f"{approx['candidates']} candidates -> "
                 f"{approx['scored']} exact scorings "
                 f"({approx['reduction']:.2f}x reduction), "
                 f"{approx['total_s']:.3f}s")
    return "\n".join(lines)


def smoke_check(current: dict, committed_path: Path,
                tolerance: float) -> int:
    """Gate recall and reduction against the committed full run.

    Reduction ratios, not wall-clock, are compared, so the tolerance
    part of the gate is machine-independent; the committed run must
    itself clear the full-run floors and the smoke measurement the
    absolute :data:`SMOKE_REDUCTION_FLOOR`.  The keep budget is fixed
    per filter invocation, so reduction grows with candidate volume:
    the regression clause against the committed reduction only applies
    when the two runs were measured at the same ``triples`` scale.
    """
    failures = []
    approx = current["approx"]
    recall = approx["mean_recall"]
    status = "ok" if recall >= RECALL_FLOOR else "BELOW TARGET"
    print(f"smoke: mean recall {recall:.3f}, target {RECALL_FLOOR:.2f}  "
          f"[{status}]")
    if recall < RECALL_FLOOR:
        failures.append("recall")
    reduction = approx["reduction"]
    status = "ok" if reduction >= SMOKE_REDUCTION_FLOOR else "BELOW FLOOR"
    print(f"smoke: reduction {reduction:.2f}x, absolute floor "
          f"{SMOKE_REDUCTION_FLOOR:.1f}x  [{status}]")
    if reduction < SMOKE_REDUCTION_FLOOR:
        failures.append("smoke-floor")
    if committed_path.exists():
        committed = json.loads(committed_path.read_text())
        want_recall = committed["approx"]["mean_recall"]
        want_reduction = committed["approx"]["reduction"]
        if want_recall < RECALL_FLOOR or want_reduction < REDUCTION_FLOOR:
            print(f"smoke: committed full run ({want_recall:.3f} recall, "
                  f"{want_reduction:.2f}x) is below the full-run floors "
                  f"({RECALL_FLOOR:.2f}, {REDUCTION_FLOOR:.1f}x)")
            failures.append("committed-floor")
        if current["meta"]["triples"] == committed["meta"]["triples"]:
            floor = want_reduction * (1.0 - tolerance)
            status = "ok" if reduction >= floor else "REGRESSED"
            print(f"smoke: committed reduction {want_reduction:.2f}x, "
                  f"measured {reduction:.2f}x, floor {floor:.2f}x  "
                  f"[{status}]")
            if reduction < floor:
                failures.append("reduction")
        else:
            print(f"smoke: committed run used "
                  f"{committed['meta']['triples']} triples, this run "
                  f"{current['meta']['triples']}; skipping the reduction "
                  "regression clause (fixed keep budget makes reduction "
                  "scale with candidate volume)")
    else:
        print(f"smoke: no committed baseline at {committed_path}; "
              "gating on the absolute floors only")
    if failures:
        print(f"smoke: FAIL — {', '.join(failures)}")
        return 1
    print("smoke: PASS — safe mode identical everywhere, approx recall "
          "and reduction above floors")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triples", type=int, default=None,
                        help="LUBM scale (default 8000; 2000 under "
                             "--smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cold rounds per arm, best-of "
                             "(default 2; 1 under --smoke)")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced run; gate recall and reduction "
                             "against the committed BENCH_twostage.json "
                             "instead of rewriting it")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative reduction regression in "
                             "smoke mode (default 0.30)")
    args = parser.parse_args(argv)

    triples = args.triples or (2000 if args.smoke else 8000)
    rounds = args.rounds or (1 if args.smoke else 2)

    report = run_bench(triples, rounds, args.k)
    print(render_report(report))

    if args.smoke:
        return smoke_check(report, JSON_PATH, args.tolerance)

    approx = report["approx"]
    failed = False
    if approx["mean_recall"] < RECALL_FLOOR:
        print(f"\nFAIL: mean recall {approx['mean_recall']:.3f} is below "
              f"the {RECALL_FLOOR:.2f} floor")
        failed = True
    if approx["reduction"] < REDUCTION_FLOOR:
        print(f"\nFAIL: reduction {approx['reduction']:.2f}x is below "
              f"the {REDUCTION_FLOOR:.1f}x floor")
        failed = True
    if failed:
        return 1
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    TXT_PATH.parent.mkdir(exist_ok=True)
    TXT_PATH.write_text(render_report(report) + "\n")
    print(f"\nwrote {JSON_PATH} and {TXT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
