"""Shared fixtures for the benchmark suite.

Benchmarks regenerate the paper's tables and figures at reduced scale
(the session-scoped LUBM graph defaults to 3,000 triples so the whole
suite runs in minutes; crank ``BENCH_LUBM_TRIPLES`` for bigger runs).
Each module prints its table/figure rows on top of the pytest-benchmark
timing output.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import BoundedMatcher, DogmaMatcher, SapperMatcher
from repro.datasets import dataset, lubm_queries
from repro.engine import SamaEngine
from repro.evaluation.ground_truth import RelevanceOracle

BENCH_TRIPLES = int(os.environ.get("BENCH_LUBM_TRIPLES", "3000"))
BENCH_SEED = int(os.environ.get("BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def lubm_graph():
    return dataset("lubm").build(BENCH_TRIPLES, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def engine(lubm_graph, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-lubm-index")
    sama = SamaEngine.from_graph(lubm_graph, directory=str(directory))
    yield sama
    sama.close()


@pytest.fixture(scope="session")
def baselines(lubm_graph):
    """The three competitors over a simulated disk-resident graph.

    Matching the §6.1 premise (and the Fig. 6 runner): adjacency access
    pays a small latency; construction is offline and free.
    """
    from repro.rdf.latency import AccessAccountedGraph
    view = AccessAccountedGraph(lubm_graph, access_latency=1e-5)
    with view.offline():
        return {
            "sapper": SapperMatcher(view),
            "bounded": BoundedMatcher(view),
            "dogma": DogmaMatcher(view),
        }


@pytest.fixture(scope="session")
def oracle(lubm_graph):
    return RelevanceOracle(lubm_graph)


@pytest.fixture(scope="session")
def queries():
    return lubm_queries()
