"""Repo-wide pytest glue: per-test timeout enforcement.

The resilience contract says no query may hang, and the suite enforces
it with a per-test wall-clock cap (the ``timeout`` ini setting in
pyproject.toml).  When the real pytest-timeout plugin is installed it
owns that setting; on environments without it this shim provides the
same guarantee through SIGALRM, so a hang still fails the test instead
of wedging the run.  Living at the repo root, it covers ``tests/`` and
``benchmarks/`` alike.
"""

from __future__ import annotations

import pytest

try:
    import pytest_timeout  # noqa: F401  (plugin registers the ini itself)
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

if not _HAVE_PYTEST_TIMEOUT:
    import signal
    import threading

    def pytest_addoption(parser):
        parser.addini("timeout", default="0",
                      help="per-test timeout in seconds "
                           "(fallback shim for pytest-timeout)")

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        seconds = float(item.config.getini("timeout") or 0)
        usable = (seconds > 0 and hasattr(signal, "SIGALRM")
                  and threading.current_thread() is threading.main_thread())
        if not usable:
            return (yield)

        def _timed_out(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded the {seconds:g}s per-test cap")

        previous = signal.signal(signal.SIGALRM, _timed_out)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
