#!/usr/bin/env python3
"""Bring your own data: N-Triples in, approximate answers out.

Shows the full user journey on custom data: parse an N-Triples
document, build a persistent index in a directory of your choice,
query it with SPARQL, close everything, then *reopen* the index from
disk and query again — the offline-index / online-query split of §5.

Run:  python examples/build_your_own_dataset.py
"""

import tempfile

from repro import DataGraph, SamaEngine
from repro.index import build_index
from repro.rdf import ntriples

DOCUMENT = """\
# A tiny publication graph, in N-Triples.
<http://ex.org/alice>   <http://ex.org/wrote>    <http://ex.org/paper1> .
<http://ex.org/bob>     <http://ex.org/wrote>    <http://ex.org/paper1> .
<http://ex.org/bob>     <http://ex.org/wrote>    <http://ex.org/paper2> .
<http://ex.org/carol>   <http://ex.org/wrote>    <http://ex.org/paper3> .
<http://ex.org/paper1>  <http://ex.org/topic>    "Graph Matching" .
<http://ex.org/paper2>  <http://ex.org/topic>    "Query Processing" .
<http://ex.org/paper3>  <http://ex.org/topic>    "Graph Matching" .
<http://ex.org/paper1>  <http://ex.org/venue>    "EDBT" .
<http://ex.org/paper2>  <http://ex.org/venue>    "VLDB" .
<http://ex.org/paper3>  <http://ex.org/venue>    "EDBT" .
<http://ex.org/alice>   <http://ex.org/memberOf> <http://ex.org/roma3> .
<http://ex.org/bob>     <http://ex.org/memberOf> <http://ex.org/roma3> .
"""

QUERY = """
    PREFIX ex: <http://ex.org/>
    SELECT ?author ?paper WHERE {
        ?author ex:wrote ?paper .
        ?author ex:memberOf ex:roma3 .
        ?paper ex:topic "Graph Matching" .
        ?paper ex:venue "EDBT" .
    }"""


def main() -> None:
    graph = DataGraph.from_triples(ntriples.parse(DOCUMENT), name="papers")
    print(f"parsed {graph.edge_count()} triples, {graph.node_count()} nodes")

    index_dir = tempfile.mkdtemp(prefix="papers-index-")
    index, stats = build_index(graph, index_dir)
    print(f"indexed {stats.path_count} paths under {index_dir}\n")

    with SamaEngine(index) as engine:
        print("answers (carol is *not* at roma3, so her EDBT graph-matching "
              "paper\nshould surface approximately, after the exact one):")
        for rank, answer in enumerate(engine.query(QUERY, k=3), start=1):
            bindings = answer.substitution()
            author = bindings.get(next(v for v in bindings
                                       if v.value == "author"), "?")
            print(f"  #{rank} score={answer.score:.2f} "
                  f"exact={answer.is_exact}")
            for variable, value in sorted(bindings.items(),
                                          key=lambda kv: kv[0].value):
                print(f"      ?{variable.value} = {value}")

    # The index is persistent: reopen it without the data graph.
    print("\nreopening the index from disk...")
    with SamaEngine.open(index_dir) as engine:
        best = engine.query(QUERY, k=1)[0]
        print(f"same best answer, score={best.score:.2f}")


if __name__ == "__main__":
    main()
