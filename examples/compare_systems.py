#!/usr/bin/env python3
"""Sama versus the competitors, on one table (a miniature of §6).

Runs Sama, SAPPER, BOUNDED and DOGMA over the same LUBM graph and
queries, reporting per-system timing and match counts — a quick,
self-contained version of the Fig. 6 / Fig. 8 experiments (the full
harness lives in ``python -m repro.evaluation.runner``).

Run:  python examples/compare_systems.py [triples]
"""

import sys
import tempfile

from repro import SamaEngine
from repro.baselines import BoundedMatcher, DogmaMatcher, SapperMatcher
from repro.datasets import dataset, lubm_queries
from repro.evaluation import time_baseline, time_warm
from repro.index import build_index


def main(triples: int = 4000) -> None:
    graph = dataset("lubm").build(triples)
    index, _stats = build_index(graph, tempfile.mkdtemp(prefix="cmp-"))
    engine = SamaEngine(index)
    baselines = [SapperMatcher(graph), BoundedMatcher(graph),
                 DogmaMatcher(graph)]

    header = (f"{'query':6s} {'system':8s} {'mean ms':>9s} {'matches':>8s}")
    print(header)
    print("-" * len(header))
    for spec in lubm_queries()[:5]:
        answers = engine.query(spec.graph, k=10)
        sample = time_warm(engine, spec.graph, k=10, runs=3)
        print(f"{spec.qid:6s} {'sama':8s} {sample.mean_ms:9.1f} "
              f"{len(answers):8d}")
        for matcher in baselines:
            matches = matcher.search(spec.graph, limit=10)
            sample = time_baseline(matcher, spec.graph, limit=10, runs=3)
            print(f"{'':6s} {matcher.name:8s} {sample.mean_ms:9.1f} "
                  f"{len(matches):8d}")
        print()

    print("note: Sama always returns k approximate answers; the exact")
    print("systems return only embeddings that match perfectly, which is")
    print("why their match columns go to zero on the approximate queries.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4000)
