#!/usr/bin/env python3
"""Live index maintenance: query, insert, query again.

The paper leaves index updates as future work (§7); this library
implements them (`repro.index.incremental`).  The example keeps a
GovTrack index live while the legislature works: a new amendment is
filed, a sponsor is recorded, a bill is withdrawn — and the same query
reflects each change without rebuilding the index.

Run:  python examples/live_updates.py
"""

import tempfile

from repro.datasets.govtrack import govtrack_graph
from repro.engine import SamaEngine
from repro.index.incremental import IncrementalIndex

GOV = "http://example.org/govtrack/"

QUERY = """
    PREFIX gov: <http://example.org/govtrack/>
    SELECT ?who ?amendment WHERE {
        ?who gov:sponsor ?amendment .
        ?amendment gov:aTo ?bill .
        ?bill gov:subject "Health Care" .
    }"""


def show(engine, title):
    print(f"--- {title} ---")
    for row in engine.select(QUERY, k=5):
        who = row.get("who")
        amendment = row.get("amendment")
        print(f"  {who and who.local_name or '?':14s} "
              f"{amendment and amendment.local_name or '?':8s} "
              f"(score {row.score:.2f})")
    print()


def main() -> None:
    index = IncrementalIndex(govtrack_graph(),
                             tempfile.mkdtemp(prefix="live-"))
    engine = SamaEngine(index)
    show(engine, "initial state (five amendments)")

    print("A9001: Alice Nimber files an amendment to B0532...\n")
    index.add_triples([
        (GOV + "AliceNimber", GOV + "sponsor", GOV + "A9001"),
        (GOV + "A9001", GOV + "aTo", GOV + "B0532"),
    ])
    show(engine, "after the new amendment")

    print("B0045 is withdrawn (its subject triple is removed)...\n")
    index.remove_triple(GOV + "B0045", GOV + "subject", "Health Care")
    show(engine, "after the withdrawal")

    stats = index.stats
    print(f"maintenance: {stats.triples_added} update rounds, "
          f"{stats.paths_invalidated} paths invalidated, "
          f"{stats.paths_added} paths (re)written, "
          f"{stats.full_rebuilds} full rebuilds")


if __name__ == "__main__":
    main()
