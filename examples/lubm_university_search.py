#!/usr/bin/env python3
"""University search over a LUBM graph — the paper's main workload.

Generates a LUBM-shaped graph, indexes it, and runs a selection of the
12 benchmark queries (§6.2), reporting per-query timing, the number of
answers, and the best answer's score breakdown.  Also demonstrates the
cold-cache / warm-cache distinction of Fig. 6.

Run:  python examples/lubm_university_search.py [triples]
"""

import sys
import tempfile

from repro import SamaEngine
from repro.datasets import dataset, lubm_queries
from repro.evaluation import time_cold, time_warm
from repro.index import build_index


def main(triples: int = 6000) -> None:
    spec = dataset("lubm")
    graph = spec.build(triples)
    print(f"LUBM graph: {graph.edge_count()} triples, "
          f"{graph.node_count()} nodes")

    index, stats = build_index(graph, tempfile.mkdtemp(prefix="lubm-"))
    print(f"index: {stats.path_count} paths "
          f"({stats.size_bytes / 1024:.0f} KB on disk, "
          f"{stats.build_seconds:.2f}s)\n")
    engine = SamaEngine(index)

    for query in lubm_queries()[:6]:
        answers = engine.query(query.graph, k=5)
        print(f"{query.qid} ({query.description})")
        print(f"  |N|={query.node_count} vars={query.variable_count} "
              f"-> {len(answers)} answers")
        if answers:
            best = answers[0]
            print(f"  best: score={best.score:.2f} "
                  f"(quality={best.quality:.2f}, "
                  f"conformity={best.conformity:.2f}, "
                  f"exact={best.is_exact})")
            bindings = best.substitution()
            shown = sorted(bindings.items(), key=lambda kv: kv[0].value)[:4]
            for variable, value in shown:
                print(f"    ?{variable.value} = {value}")
        print()

    # Cold vs warm cache (Fig. 6's two conditions).
    probe = lubm_queries()[1].graph
    cold = time_cold(engine, probe, runs=3)
    warm = time_warm(engine, probe, runs=3)
    print(f"cold-cache: {cold}   warm-cache: {warm}")
    print(f"buffer pool: {engine.index.cache_stats.hit_ratio:.1%} hits")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6000)
