#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds the GovTrack graph of Fig. 1, indexes it, and runs the two
queries of the paper: Q1 (which has an exact answer) and Q2 (which has
none, and is answered approximately).  Along the way it prints the
artifacts of §5 — the query paths, the clusters of Fig. 3 with their λ
scores, and the ranked answers.

Run:  python examples/quickstart.py
"""

from repro import SamaEngine
from repro.datasets import govtrack_graph, query_q1, query_q2


def main() -> None:
    graph = govtrack_graph()
    print(f"data graph: {graph.node_count()} nodes, "
          f"{graph.edge_count()} triples, "
          f"{len(graph.sources())} sources, {len(graph.sinks())} sinks")

    engine = SamaEngine.from_graph(graph)
    stats = engine.index_stats
    print(f"index: {stats.path_count} paths, |HV|={stats.hv_count}, "
          f"|HE|={stats.he_count}, built in {stats.build_seconds:.3f}s\n")

    # --- Q1: amendments by Carla Bunes to a Health Care bill ---------
    q1 = query_q1()
    prepared = engine.prepare(q1)
    print("Q1 query paths (PQ):")
    for path in prepared.paths:
        print(f"  {path}")
    print("\nQ1 clusters (Fig. 3 — best λ first):")
    for cluster in engine.clusters(prepared):
        print(f"  cluster for {cluster.query_path}:")
        for entry in cluster.entries[:4]:
            print(f"    {entry}")
        if len(cluster.entries) > 4:
            print(f"    ... {len(cluster.entries) - 4} more")

    print("\nQ1 top-3 answers:")
    for rank, answer in enumerate(engine.query(q1, k=3), start=1):
        print(f"--- rank {rank} ---")
        print(answer.describe())

    # --- Q2: same question, relationship unknown (?e1) ---------------
    print("\nQ2 (no exact answer exists) top answer:")
    answers = engine.query(query_q2(), k=1)
    print(answers[0].describe())

    # --- SPARQL front-end ---------------------------------------------
    print("\nSame Q1 through the SPARQL front-end:")
    sparql = """
        PREFIX gov: <http://example.org/govtrack/>
        SELECT ?v1 ?v2 ?v3 WHERE {
            gov:CarlaBunes gov:sponsor ?v1 .
            ?v1 gov:aTo ?v2 .
            ?v2 gov:subject "Health Care" .
            ?v3 gov:sponsor ?v2 .
            ?v3 gov:gender "Male" .
        }"""
    best = engine.query(sparql, k=1)[0]
    bindings = best.substitution()
    for variable in sorted(bindings, key=lambda v: v.value):
        print(f"  ?{variable.value} = {bindings[variable]}")


if __name__ == "__main__":
    main()
