#!/usr/bin/env python3
"""Semantic matching: querying with the *wrong* words and still winning.

The paper's prototype widens label matching with WordNet (§6.1):
"semantically similar entries such as synonyms, hyponyms and hypernyms
are extracted".  This example queries a movie graph using vocabulary
that never occurs in the data — ``film`` for ``movie``, ``performer``
for ``actor`` — and shows the three matcher levels side by side:

- ``exact``    finds nothing (labels differ),
- ``lexical``  finds nothing (tokens differ),
- ``semantic`` finds the right answers through the thesaurus.

Run:  python examples/synonym_aware_search.py
"""

from repro import DataGraph, SamaEngine
from repro.engine import EngineConfig
from repro.index import default_thesaurus

DATA = [
    # A movie graph that says "movie", "actor", "director".
    ("http://ex.org/inception", "http://ex.org/type", "Movie"),
    ("http://ex.org/inception", "http://ex.org/title", "Inception"),
    ("http://ex.org/inception", "http://ex.org/actor", "http://ex.org/dicaprio"),
    ("http://ex.org/inception", "http://ex.org/director", "http://ex.org/nolan"),
    ("http://ex.org/memento", "http://ex.org/type", "Movie"),
    ("http://ex.org/memento", "http://ex.org/title", "Memento"),
    ("http://ex.org/memento", "http://ex.org/actor", "http://ex.org/pearce"),
    ("http://ex.org/memento", "http://ex.org/director", "http://ex.org/nolan"),
    ("http://ex.org/dicaprio", "http://ex.org/name", "Leonardo DiCaprio"),
    ("http://ex.org/pearce", "http://ex.org/name", "Guy Pearce"),
    ("http://ex.org/nolan", "http://ex.org/name", "Christopher Nolan"),
]

# The query says "Film" — a word that never occurs in the data.
QUERY = """
    PREFIX ex: <http://ex.org/>
    SELECT ?m ?who WHERE {
        ?m ex:type "Film" .
        ?m ex:director ?who .
    }"""


def main() -> None:
    graph = DataGraph.from_triples(DATA, name="movies")

    for level in ("exact", "lexical", "semantic"):
        config = EngineConfig(matcher_level=level,
                              semantic_lookup=(level == "semantic"))
        engine = SamaEngine.from_graph(graph, config=config)
        answers = [a for a in engine.query(QUERY, k=5) if a.matched_count]
        exact_hits = [a for a in answers if a.is_exact]
        print(f"matcher level {level!r}: {len(answers)} answers, "
              f"{len(exact_hits)} fully matching")
        for answer in answers[:2]:
            bindings = answer.substitution()
            rendered = ", ".join(
                f"?{v.value}={bindings[v]}"
                for v in sorted(bindings, key=lambda v: v.value))
            print(f"   score={answer.score:.2f}  {rendered}")
        print()

    # Peek at what the thesaurus actually knows about "film".
    thesaurus = default_thesaurus()
    print(f'thesaurus expansion of "film": '
          f'{sorted(thesaurus.expand("film"))}')


if __name__ == "__main__":
    main()
