"""Setuptools entry point.

Kept alongside pyproject.toml so that editable installs work on
machines without the ``wheel`` package (legacy ``setup.py develop``
path); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
