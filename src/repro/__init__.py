"""Sama: a similarity measure for approximate querying over RDF data.

A complete, from-scratch reproduction of De Virgilio, Maccioni &
Torlone, *"A Similarity Measure for Approximate Querying over RDF
data"* (EDBT 2013): the path-alignment similarity ``score = Λ + Ψ``,
the disk-resident path index, the top-k approximate query engine, the
three competitor systems it is evaluated against, and the full
experimental harness.

Quickstart::

    from repro import SamaEngine
    from repro.datasets import govtrack_graph

    engine = SamaEngine.from_graph(govtrack_graph())
    for answer in engine.query('''
            PREFIX gov: <http://example.org/govtrack/>
            SELECT * WHERE {
                gov:CarlaBunes gov:sponsor ?a .
                ?a gov:aTo ?bill .
                ?bill gov:subject "Health Care" .
            }''', k=5):
        print(answer.score, dict(answer.substitution()))

Package map: :mod:`repro.rdf` (terms/graphs/parsers), :mod:`repro.paths`
(extraction/alignment/χ), :mod:`repro.scoring` (λ, ψ, score),
:mod:`repro.storage` (pages/buffer pool), :mod:`repro.index`
(path index + thesaurus), :mod:`repro.engine` (Sama),
:mod:`repro.resilience` (budgets, degradation, typed errors, fault
injection), :mod:`repro.baselines` (SAPPER/BOUNDED/DOGMA/GED),
:mod:`repro.datasets` (generators), :mod:`repro.evaluation` (harness).
"""

from .engine import Answer, EngineConfig, SamaEngine, SearchConfig
from .paths import Path, align, path_of
from .rdf import (DataGraph, Literal, Namespace, QueryGraph, Triple, URI,
                  Variable, query_graph)
from .resilience import (Budget, DegradationCause, DegradationReason,
                         FaultPlan, InvalidQueryError, OverloadedError,
                         ParseError, PartialResult, QueryTimeout, ReproError)
from .scoring import PAPER_WEIGHTS, ScoringWeights, score_paths, score_value
from .serving import ResultCache, ServingConfig, ServingEngine

__version__ = "1.0.0"

__all__ = [
    "Answer", "Budget", "DataGraph", "DegradationCause", "DegradationReason",
    "EngineConfig", "FaultPlan", "InvalidQueryError", "Literal", "Namespace",
    "OverloadedError", "PAPER_WEIGHTS", "ParseError", "PartialResult", "Path",
    "QueryGraph", "QueryTimeout", "ReproError", "ResultCache", "SamaEngine",
    "ScoringWeights", "SearchConfig", "ServingConfig", "ServingEngine",
    "Triple", "URI", "Variable", "align", "path_of", "query_graph",
    "score_paths", "score_value", "__version__",
]
