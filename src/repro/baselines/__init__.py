"""Competitor systems (§6): SAPPER, BOUNDED, DOGMA — plus exact GED.

Reimplemented from their publications over this library's data-graph
substrate so the efficiency/effectiveness comparisons of Figures 6, 8
and 9 can be regenerated end-to-end.
"""

from .base import BaselineMatcher, GraphMatch, connected_query_order
from .bounded import BoundedMatcher
from .dogma import DogmaMatcher
from .ged import DEFAULT_GED_COSTS, GedCosts, graph_edit_distance
from .sapper import SapperMatcher

__all__ = [
    "BaselineMatcher", "BoundedMatcher", "DEFAULT_GED_COSTS", "DogmaMatcher",
    "GedCosts", "GraphMatch", "SapperMatcher", "connected_query_order",
    "graph_edit_distance",
]
