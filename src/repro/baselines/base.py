"""Common infrastructure for the competitor systems (§6).

The paper compares Sama against three graph-matching systems — SAPPER,
BOUNDED and DOGMA — reimplemented here over the same data-graph
substrate.  They share this module's vocabulary:

- :class:`GraphMatch`: an embedding of the query's nodes into the data
  graph, with an edit/violation cost (0 for exact systems);
- :class:`BaselineMatcher`: the common interface (`prepare` offline,
  `search` online) the evaluation harness drives;
- node-candidate computation by label, shared by all matchers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.terms import Term, Variable


@dataclass(frozen=True)
class GraphMatch:
    """One match: a query-node → data-node embedding plus its cost."""

    node_map: tuple[tuple[int, int], ...]
    cost: float = 0.0

    @classmethod
    def of(cls, mapping: dict[int, int], cost: float = 0.0) -> "GraphMatch":
        return cls(tuple(sorted(mapping.items())), cost)

    def mapping(self) -> dict[int, int]:
        return dict(self.node_map)

    def data_nodes(self) -> frozenset[int]:
        return frozenset(data for _query, data in self.node_map)

    def bindings(self, query: QueryGraph, graph: DataGraph) -> dict[Variable, Term]:
        """Variable bindings implied by the embedding."""
        out = {}
        for query_node, data_node in self.node_map:
            label = query.label_of(query_node)
            if isinstance(label, Variable):
                out[label] = graph.label_of(data_node)
        return out


class BaselineMatcher(abc.ABC):
    """A competitor system: built once per data graph, queried many times."""

    #: Short system name used in experiment tables.
    name = "baseline"

    def __init__(self, graph: DataGraph):
        self.graph = graph
        self._nodes_by_label: dict[Term, list[int]] = {}
        for node in graph.nodes():
            self._nodes_by_label.setdefault(graph.label_of(node), []).append(node)

    # -- candidate computation shared by all matchers -------------------------

    def candidates(self, query: QueryGraph, query_node: int) -> list[int]:
        """Data nodes whose label can match the query node's label.

        Constants match by exact label; variables match every node (the
        concrete matchers narrow this structurally).
        """
        label = query.label_of(query_node)
        if isinstance(label, Variable):
            return list(self.graph.nodes())
        return list(self._nodes_by_label.get(label, ()))

    def nodes_labelled(self, label: Term) -> list[int]:
        return list(self._nodes_by_label.get(label, ()))

    @staticmethod
    def edge_label_matches(query_label: Term, data_label: Term) -> bool:
        """Edge labels: variables match anything, constants match exactly."""
        return isinstance(query_label, Variable) or query_label == data_label

    # -- the interface the harness drives ---------------------------------------

    @abc.abstractmethod
    def search(self, query: QueryGraph,
               limit: "int | None" = None) -> list[GraphMatch]:
        """All (or the first ``limit``) matches of ``query``, best first."""

    def match_count(self, query: QueryGraph,
                    limit: "int | None" = None) -> int:
        """Number of matches found — the Fig. 8 metric."""
        return len(self.search(query, limit=limit))

    def __repr__(self):
        return f"<{type(self).__name__} over {self.graph!r}>"


def connected_query_order(query: QueryGraph) -> list[int]:
    """Query nodes ordered so each (after the first) touches a previous one.

    Backtracking matchers explore in this order so partial embeddings
    stay connected and prune early.  Constants come first (smallest
    candidate sets), then by degree.  Disconnected query components are
    appended in the same discipline.
    """
    nodes = list(query.nodes())
    if not nodes:
        return []

    def degree(node: int) -> int:
        return query.out_degree(node) + query.in_degree(node)

    def seed_priority(node: int) -> tuple:
        is_variable = isinstance(query.label_of(node), Variable)
        return (is_variable, -degree(node), node)

    remaining = set(nodes)
    order: list[int] = []
    while remaining:
        seed = min(remaining, key=seed_priority)
        order.append(seed)
        remaining.discard(seed)
        frontier = _neighbours(query, seed) & remaining
        while frontier:
            nxt = min(frontier, key=seed_priority)
            order.append(nxt)
            remaining.discard(nxt)
            frontier |= _neighbours(query, nxt) & remaining
            frontier.discard(nxt)
            frontier &= remaining
    return order


def _neighbours(query: QueryGraph, node: int) -> set[int]:
    out = {dst for _label, dst in query.out_edges(node)}
    out.update(src for _label, src in query.in_edges(node))
    return out
