"""BOUNDED: graph pattern matching via bounded simulation (Fan et al.,
PVLDB 2010 — "Graph Pattern Matching: From Intractable to Polynomial
Time").

Fan et al. replace subgraph isomorphism with *bounded simulation*: a
query edge ``(u, v)`` no longer requires a data edge but only a path of
at most ``k`` hops from the match of ``u`` to the match of ``v`` (the
paper's related-work section: "an edge denotes the connectivity of
nodes within a predefined number of hops.  This guarantees a cubic time
complexity").  The result is the unique *maximum match relation*
``S ⊆ VQ × VG`` computed by fixpoint refinement:

1. initialise ``S(u)`` with the label-compatible data nodes;
2. repeatedly remove ``(u, x)`` when some query edge ``(u, v)`` has no
   ``y ∈ S(v)`` within ``k`` hops of ``x`` (and dually for incoming
   edges);
3. stop at the fixpoint.

The relation is cubic to compute and is what the timing experiment
measures.  For match *counting* and precision/recall the harness needs
embeddings; :meth:`BoundedMatcher.search` enumerates embeddings
consistent with the fixpoint relation (capped), each query edge checked
as ≤k-hop reachability.
"""

from __future__ import annotations

from collections import deque

from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.terms import Variable
from .base import BaselineMatcher, GraphMatch, connected_query_order


class BoundedMatcher(BaselineMatcher):
    """Bounded-simulation matcher with hop bound ``k``."""

    name = "bounded"

    def __init__(self, graph: DataGraph, hop_bound: int = 2,
                 max_enumeration: int = 200_000):
        super().__init__(graph)
        if hop_bound < 1:
            raise ValueError("hop_bound must be >= 1")
        self.hop_bound = hop_bound
        self.max_enumeration = max_enumeration
        self._reach_cache: dict[int, set[int]] = {}

    def clear_cache(self) -> None:
        """Drop memoised reachability (the cold-cache condition)."""
        self._reach_cache.clear()

    # -- bounded reachability ------------------------------------------------

    def reachable_within(self, node: int) -> set[int]:
        """Nodes reachable from ``node`` in 1..k directed hops (cached)."""
        cached = self._reach_cache.get(node)
        if cached is not None:
            return cached
        reached: set[int] = set()
        frontier = deque([(node, 0)])
        seen = {node}
        while frontier:
            current, depth = frontier.popleft()
            if depth == self.hop_bound:
                continue
            for _label, dst in self.graph.out_edges(current):
                reached.add(dst)
                if dst not in seen:
                    seen.add(dst)
                    frontier.append((dst, depth + 1))
        self._reach_cache[node] = reached
        return reached

    # -- the maximum bounded simulation relation -----------------------------------

    def simulation(self, query: QueryGraph) -> dict[int, set[int]]:
        """The maximum match relation S(u) per query node (fixpoint)."""
        relation: dict[int, set[int]] = {
            u: set(self.candidates(query, u)) for u in query.nodes()}
        changed = True
        while changed:
            changed = False
            for u in query.nodes():
                survivors = set()
                for x in relation[u]:
                    if self._supported(query, relation, u, x):
                        survivors.add(x)
                if len(survivors) != len(relation[u]):
                    relation[u] = survivors
                    changed = True
            if any(not bucket for bucket in relation.values()):
                # An empty bucket empties everything downstream; the
                # relation collapses — no match.
                return {u: set() for u in query.nodes()}
        return relation

    def _supported(self, query: QueryGraph, relation: dict[int, set[int]],
                   u: int, x: int) -> bool:
        for _label, v in query.out_edges(u):
            targets = relation[v]
            if not (self.reachable_within(x) & targets):
                return False
        for _label, w in query.in_edges(u):
            sources = relation[w]
            if not any(x in self.reachable_within(y) for y in sources):
                return False
        return True

    # -- embedding enumeration over the relation -------------------------------------

    def search(self, query: QueryGraph,
               limit: "int | None" = None) -> list[GraphMatch]:
        relation = self.simulation(query)
        if any(not bucket for bucket in relation.values()):
            return []
        order = connected_query_order(query)
        cap = limit if limit is not None else self.max_enumeration
        matches: list[GraphMatch] = []
        mapping: dict[int, int] = {}

        def consistent(query_node: int, candidate: int) -> bool:
            for _label, dst in query.out_edges(query_node):
                mapped = mapping.get(dst)
                if mapped is not None and mapped not in \
                        self.reachable_within(candidate):
                    return False
            for _label, src in query.in_edges(query_node):
                mapped = mapping.get(src)
                if mapped is not None and candidate not in \
                        self.reachable_within(mapped):
                    return False
            return True

        def backtrack(position: int) -> bool:
            if position == len(order):
                matches.append(GraphMatch.of(mapping))
                return len(matches) >= cap
            query_node = order[position]
            for candidate in sorted(relation[query_node]):
                if consistent(query_node, candidate):
                    mapping[query_node] = candidate
                    stop = backtrack(position + 1)
                    del mapping[query_node]
                    if stop:
                        return True
            return False

        backtrack(0)
        return matches

    def match_relation_size(self, query: QueryGraph) -> int:
        """Σ|S(u)| — the size of the simulation result graph."""
        return sum(len(bucket) for bucket in self.simulation(query).values())
