"""DOGMA: disk-oriented exact graph matching (Bröcheler et al., ISWC'09).

DOGMA answers RDF queries by exact subgraph homomorphism, pruned by a
*distance index*: the data graph is partitioned into clusters of nearby
nodes, and a lower bound on the graph distance between two nodes is
derived from the distance between their clusters.  During backtracking,
a candidate for one query node is discarded when its distance lower
bound to an already-mapped node exceeds the (exact) distance between
the corresponding query nodes — an inexpensive necessary condition.

Our reimplementation keeps the algorithmic skeleton: (i) offline,
partition the graph with BFS region growing and precompute
inter-cluster distances; (ii) online, order the query nodes
connectively and backtrack over label candidates with edge checks and
the distance-based pruning.  Matching is exact (no label or structure
relaxation), which is why DOGMA returns the fewest matches in Fig. 8.
"""

from __future__ import annotations

from collections import deque

from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.terms import Variable
from .base import BaselineMatcher, GraphMatch, connected_query_order

_INFINITY = float("inf")


class DogmaMatcher(BaselineMatcher):
    """Exact subgraph matcher with DOGMA-style distance pruning."""

    name = "dogma"

    def __init__(self, graph: DataGraph, cluster_size: int = 32,
                 visit_budget: int = 2_000_000):
        super().__init__(graph)
        if cluster_size < 1:
            raise ValueError("cluster_size must be >= 1")
        self.cluster_size = cluster_size
        #: Candidate-consideration budget per search (real systems run
        #: under timeouts; unsatisfiable patterns would otherwise
        #: exhaust the full exponential space).  Exceeding it returns
        #: the matches found so far.
        self.visit_budget = visit_budget
        self._cluster_of: dict[int, int] = {}
        self._cluster_distance: list[list[int]] = []
        self._build_distance_index()

    # -- offline: partition + inter-cluster distances --------------------------

    def _build_distance_index(self) -> None:
        # BFS region growing over the undirected view of the graph.
        unassigned = set(self.graph.nodes())
        clusters: list[list[int]] = []
        while unassigned:
            seed = min(unassigned)
            members = []
            queue = deque([seed])
            unassigned.discard(seed)
            while queue and len(members) < self.cluster_size:
                node = queue.popleft()
                members.append(node)
                for neighbour in self._undirected_neighbours(node):
                    if neighbour in unassigned:
                        unassigned.discard(neighbour)
                        queue.append(neighbour)
            # Nodes pulled off the frontier but not expanded return to
            # the pool for the next cluster.
            for node in queue:
                unassigned.add(node)
            cluster_id = len(clusters)
            clusters.append(members)
            for node in members:
                self._cluster_of[node] = cluster_id
        # Cluster adjacency, then all-pairs BFS over the cluster graph.
        count = len(clusters)
        adjacency: list[set[int]] = [set() for _ in range(count)]
        for edge in self.graph.edges():
            a = self._cluster_of[edge.src]
            b = self._cluster_of[edge.dst]
            if a != b:
                adjacency[a].add(b)
                adjacency[b].add(a)
        self._cluster_distance = [self._bfs_layers(start, adjacency)
                                  for start in range(count)]

    @staticmethod
    def _bfs_layers(start: int, adjacency: list[set[int]]) -> list[int]:
        distance = [-1] * len(adjacency)
        distance[start] = 0
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if distance[neighbour] == -1:
                    distance[neighbour] = distance[node] + 1
                    queue.append(neighbour)
        return distance

    def _undirected_neighbours(self, node: int):
        for _label, dst in self.graph.out_edges(node):
            yield dst
        for _label, src in self.graph.in_edges(node):
            yield src

    def distance_lower_bound(self, node_a: int, node_b: int) -> float:
        """A lower bound on the undirected graph distance (the DOGMA prune).

        Nodes in the same cluster bound to 0; otherwise the cluster
        graph distance (each inter-cluster hop costs at least one edge).
        Unreachable cluster pairs bound to infinity.
        """
        cluster_a = self._cluster_of[node_a]
        cluster_b = self._cluster_of[node_b]
        if cluster_a == cluster_b:
            return 0
        distance = self._cluster_distance[cluster_a][cluster_b]
        return _INFINITY if distance == -1 else distance

    # -- online: backtracking search ----------------------------------------------

    def search(self, query: QueryGraph,
               limit: "int | None" = None) -> list[GraphMatch]:
        order = connected_query_order(query)
        if not order:
            return []
        query_distance = _undirected_distances(query)
        matches: list[GraphMatch] = []
        mapping: dict[int, int] = {}
        used: set[int] = set()
        visits = [0]

        def backtrack(position: int) -> bool:
            if position == len(order):
                matches.append(GraphMatch.of(mapping))
                return limit is not None and len(matches) >= limit
            query_node = order[position]
            for candidate in self.candidates(query, query_node):
                visits[0] += 1
                if visits[0] > self.visit_budget:
                    return True  # budget exhausted: stop the search
                if candidate in used:
                    continue  # injective embeddings
                if not self._edges_consistent(query, query_node, candidate,
                                              mapping):
                    continue
                if self._distance_pruned(query_node, candidate, mapping,
                                         query_distance):
                    continue
                mapping[query_node] = candidate
                used.add(candidate)
                stop = backtrack(position + 1)
                del mapping[query_node]
                used.discard(candidate)
                if stop:
                    return True
            return False

        backtrack(0)
        return matches

    def _edges_consistent(self, query: QueryGraph, query_node: int,
                          candidate: int, mapping: dict[int, int]) -> bool:
        """Every query edge between mapped nodes must exist in the data."""
        for label, dst in query.out_edges(query_node):
            if dst == query_node:
                continue
            mapped = mapping.get(dst)
            if mapped is None:
                continue
            if not self._has_edge(candidate, label, mapped):
                return False
        for label, src in query.in_edges(query_node):
            if src == query_node:
                continue
            mapped = mapping.get(src)
            if mapped is None:
                continue
            if not self._has_edge(mapped, label, candidate):
                return False
        return True

    def _has_edge(self, src: int, label, dst: int) -> bool:
        return any(dst == other and self.edge_label_matches(label, data_label)
                   for data_label, other in self.graph.out_edges(src))

    def _distance_pruned(self, query_node: int, candidate: int,
                         mapping: dict[int, int],
                         query_distance: dict[int, dict[int, int]]) -> bool:
        """DOGMA's necessary condition: d_G(c, m) ≤ d_Q(u, v) must hold."""
        distances = query_distance[query_node]
        for mapped_query, mapped_data in mapping.items():
            allowed = distances.get(mapped_query)
            if allowed is None:
                continue
            if self.distance_lower_bound(candidate, mapped_data) > allowed:
                return True
        return False


def _undirected_distances(query: QueryGraph) -> dict[int, dict[int, int]]:
    """All-pairs undirected distances within the (small) query graph."""
    out: dict[int, dict[int, int]] = {}
    for start in query.nodes():
        distance = {start: 0}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            neighbours = [dst for _l, dst in query.out_edges(node)]
            neighbours.extend(src for _l, src in query.in_edges(node))
            for neighbour in neighbours:
                if neighbour not in distance:
                    distance[neighbour] = distance[node] + 1
                    queue.append(neighbour)
        out[start] = distance
    return out
