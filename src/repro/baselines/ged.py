"""Exact graph edit distance (A*), the reference the measure approximates.

The paper motivates ``score`` as a linear-time approximation of graph
edit distance (GED), which is NP-hard.  This module implements exact
GED with the classic A* formulation (Justice & Hero's cost model, label
substitutions plus insertions/deletions on nodes and edges) for *small*
graphs.  It is used by the test suite to validate the measure's
coherence claims and by the evaluation oracle to define ground-truth
relevance on scaled-down instances — never on full datasets (it is
exponential by nature).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from ..rdf.graph import DataGraph


@dataclass(frozen=True)
class GedCosts:
    """Edit cost model for exact GED."""

    node_substitution: float = 1.0   # relabel a node (0 when labels equal)
    node_insertion: float = 1.0
    node_deletion: float = 1.0
    edge_substitution: float = 1.0   # relabel an edge
    edge_insertion: float = 1.0
    edge_deletion: float = 1.0


DEFAULT_GED_COSTS = GedCosts()

#: Sentinel for "this node maps to nothing" (deletion / insertion).
EPSILON = -1


def graph_edit_distance(graph_a: DataGraph, graph_b: DataGraph,
                        costs: GedCosts = DEFAULT_GED_COSTS,
                        max_nodes: int = 12) -> float:
    """The exact edit distance from ``graph_a`` to ``graph_b``.

    A* over partial node assignments; admissible heuristic = best-case
    label matching of the unassigned remainder.  Guarded by
    ``max_nodes`` because the search is exponential.
    """
    nodes_a = sorted(graph_a.nodes())
    nodes_b = sorted(graph_b.nodes())
    if len(nodes_a) > max_nodes or len(nodes_b) > max_nodes:
        raise ValueError(f"exact GED guarded at {max_nodes} nodes "
                         f"({len(nodes_a)} vs {len(nodes_b)} given); "
                         f"use the score measure for larger graphs")
    if not nodes_a and not nodes_b:
        return 0.0

    labels_a = {n: graph_a.label_of(n) for n in nodes_a}
    labels_b = {n: graph_b.label_of(n) for n in nodes_b}

    def node_cost(a: int, b: int) -> float:
        if a == EPSILON:
            return costs.node_insertion
        if b == EPSILON:
            return costs.node_deletion
        return 0.0 if labels_a[a] == labels_b[b] else costs.node_substitution

    def edge_delta(assignment: dict[int, int], a: int, b: int) -> float:
        """Edge costs incurred by newly assigning a -> b."""
        total = 0.0
        for label, dst in graph_a.out_edges(a):
            if dst not in assignment and dst != a:
                continue
            mapped_dst = b if dst == a else assignment[dst]
            total += _edge_pair_cost(graph_b, b, label, mapped_dst, costs)
        for label, src in graph_a.in_edges(a):
            if src == a or src not in assignment:
                continue
            mapped_src = assignment[src]
            total += _edge_pair_cost(graph_b, mapped_src, label, b, costs)
        # Edges of graph_b between b and already-assigned images with no
        # preimage edge are insertions.
        assigned_images = set(assignment.values()) | {b}
        preimage = {image: node for node, image in assignment.items()}
        preimage[b] = a
        for label, dst in (graph_b.out_edges(b) if b != EPSILON else ()):
            if dst in assigned_images and dst != EPSILON:
                src_pre, dst_pre = preimage[b], preimage[dst]
                if src_pre == EPSILON or dst_pre == EPSILON or not _has_edge(
                        graph_a, src_pre, None, dst_pre):
                    total += costs.edge_insertion
        for label, src in (graph_b.in_edges(b) if b != EPSILON else ()):
            if src in assigned_images and src != b and src != EPSILON:
                src_pre, dst_pre = preimage[src], preimage[b]
                if src_pre == EPSILON or dst_pre == EPSILON or not _has_edge(
                        graph_a, src_pre, None, dst_pre):
                    total += costs.edge_insertion
        return total

    label_pool_b = sorted((labels_b[n] for n in nodes_b), key=str)

    def heuristic(depth: int, used_b: frozenset[int]) -> float:
        """Admissible: unmatched nodes cost at least label mismatches."""
        remaining_a = nodes_a[depth:]
        remaining_b = [n for n in nodes_b if n not in used_b]
        if not remaining_a and not remaining_b:
            return 0.0
        # Best case: every remaining_a node finds an equal label in
        # remaining_b for free; surplus on either side pays ins/del.
        pool = {}
        for n in remaining_b:
            pool[labels_b[n]] = pool.get(labels_b[n], 0) + 1
        free = 0
        for n in remaining_a:
            label = labels_a[n]
            if pool.get(label, 0) > 0:
                pool[label] -= 1
                free += 1
        substitutions = max(0, min(len(remaining_a), len(remaining_b)) - free)
        surplus_a = max(0, len(remaining_a) - len(remaining_b))
        surplus_b = max(0, len(remaining_b) - len(remaining_a))
        cheapest_sub = min(costs.node_substitution,
                           costs.node_deletion + costs.node_insertion)
        return (substitutions * cheapest_sub
                + surplus_a * costs.node_deletion
                + surplus_b * costs.node_insertion)

    tie = itertools.count()
    start = (heuristic(0, frozenset()), next(tie), 0.0, 0, frozenset(), {})
    frontier = [start]
    best = float("inf")
    while frontier:
        estimate, _t, cost, depth, used_b, assignment = heapq.heappop(frontier)
        if estimate >= best:
            break
        if depth == len(nodes_a):
            # Remaining graph_b nodes (and their edges) are insertions.
            total = cost
            remaining = [n for n in nodes_b if n not in used_b]
            total += len(remaining) * costs.node_insertion
            total += _unmatched_edge_insertions(graph_b, used_b, costs)
            best = min(best, total)
            continue
        node = nodes_a[depth]
        options = [n for n in nodes_b if n not in used_b]
        options.append(EPSILON)
        for image in options:
            step = node_cost(node, image)
            if image != EPSILON:
                step += edge_delta(assignment, node, image)
            else:
                # Deleting the node deletes its edges to assigned nodes.
                step += _deleted_edge_cost(graph_a, assignment, node, costs)
            new_cost = cost + step
            new_used = used_b | {image} if image != EPSILON else used_b
            new_assignment = dict(assignment)
            new_assignment[node] = image
            est = new_cost + heuristic(depth + 1, new_used)
            if est < best:
                heapq.heappush(frontier, (est, next(tie), new_cost,
                                          depth + 1, new_used, new_assignment))
    return best


def _edge_pair_cost(graph_b: DataGraph, src: int, label, dst: int,
                    costs: GedCosts) -> float:
    """Cost of realising one graph_a edge between mapped images."""
    if src == EPSILON or dst == EPSILON:
        return costs.edge_deletion
    present_labels = [l for l, d in graph_b.out_edges(src) if d == dst]
    if not present_labels:
        return costs.edge_deletion
    if label in present_labels:
        return 0.0
    return costs.edge_substitution


def _has_edge(graph: DataGraph, src: int, label, dst: int) -> bool:
    return any(d == dst for _l, d in graph.out_edges(src))


def _deleted_edge_cost(graph_a: DataGraph, assignment: dict[int, int],
                       node: int, costs: GedCosts) -> float:
    total = 0.0
    for _label, dst in graph_a.out_edges(node):
        if dst in assignment or dst == node:
            total += costs.edge_deletion
    for _label, src in graph_a.in_edges(node):
        if src in assignment:
            total += costs.edge_deletion
    return total


def _unmatched_edge_insertions(graph_b: DataGraph, used_b: frozenset[int],
                               costs: GedCosts) -> float:
    """Edges of graph_b touching at least one unmatched node."""
    total = 0.0
    for edge in graph_b.edges():
        if edge.src not in used_b or edge.dst not in used_b:
            total += costs.edge_insertion
    return total
