"""SAPPER: approximate subgraph matching with missing edges (Zhang et al.,
PVLDB 2010).

SAPPER finds embeddings of a query graph that are allowed to *miss* up
to Δ of the query's edges (edge mismatches): it enumerates, for every
connected spanning substructure of the query, the data subgraphs
isomorphic to it, ranking results by the number of missing edges.  The
original uses hashed neighbourhood signatures over a large graph index;
our reimplementation keeps the observable behaviour — approximate
matching with an edge-miss budget, more results than the exact systems,
and a higher enumeration cost — via budgeted backtracking:

- query nodes are matched in connective order over label candidates;
- a query edge whose endpoints are mapped but absent (or differently
  labelled) in the data consumes one unit of the Δ budget;
- results are returned in increasing number of violations.

Label matching is exact (SAPPER approximates structure, not labels):
the noise it introduces at high recall in Fig. 9 comes from structure
violations, which our implementation reproduces.
"""

from __future__ import annotations

from ..rdf.graph import QueryGraph
from .base import BaselineMatcher, GraphMatch, connected_query_order


class SapperMatcher(BaselineMatcher):
    """Approximate subgraph matcher with an edge-miss budget Δ."""

    name = "sapper"

    def __init__(self, graph, edge_budget: int = 1,
                 visit_budget: int = 2_000_000):
        super().__init__(graph)
        if edge_budget < 0:
            raise ValueError("edge_budget must be >= 0")
        self.edge_budget = edge_budget
        #: Candidate-consideration budget per search (see DogmaMatcher).
        self.visit_budget = visit_budget

    def search(self, query: QueryGraph,
               limit: "int | None" = None) -> list[GraphMatch]:
        order = connected_query_order(query)
        if not order:
            return []
        matches: list[GraphMatch] = []
        mapping: dict[int, int] = {}
        used: set[int] = set()
        visits = [0]

        def backtrack(position: int, violations: int) -> bool:
            if position == len(order):
                matches.append(GraphMatch.of(mapping, cost=float(violations)))
                return limit is not None and len(matches) >= limit
            query_node = order[position]
            for candidate in self._sapper_candidates(query, query_node, mapping):
                visits[0] += 1
                if visits[0] > self.visit_budget:
                    return True  # budget exhausted: stop the search
                if candidate in used:
                    continue
                missing = self._missing_edges(query, query_node, candidate,
                                              mapping)
                if violations + missing > self.edge_budget:
                    continue
                mapping[query_node] = candidate
                used.add(candidate)
                stop = backtrack(position + 1, violations + missing)
                del mapping[query_node]
                used.discard(candidate)
                if stop:
                    return True
            return False

        backtrack(0, 0)
        matches.sort(key=lambda match: (match.cost, match.node_map))
        if limit is not None:
            matches = matches[:limit]
        return matches

    def _sapper_candidates(self, query: QueryGraph, query_node: int,
                           mapping: dict[int, int]) -> list[int]:
        """Candidate data nodes for ``query_node`` given the partial map.

        Constants use the label index.  Variables are *structurally
        anchored*: their candidates are the data nodes adjacent (in the
        right direction, any edge label — label violations are what the
        budget pays for) to the images of already-mapped query
        neighbours.  SAPPER's matches are connected subgraphs, so an
        unanchored variable candidate could never join one.  A variable
        with no mapped neighbour yet (a component seed in an
        all-variable query) falls back to every node.
        """
        from ..rdf.terms import Variable

        label = query.label_of(query_node)
        if not isinstance(label, Variable):
            return self.candidates(query, query_node)
        anchored: "set[int] | None" = None
        for edge_label, dst in query.out_edges(query_node):
            mapped = mapping.get(dst)
            if mapped is None:
                continue
            anchored = anchored or set()
            anchored.update(src for _l, src in self.graph.in_edges(mapped))
        for edge_label, src in query.in_edges(query_node):
            mapped = mapping.get(src)
            if mapped is None:
                continue
            anchored = anchored or set()
            anchored.update(dst for _l, dst in self.graph.out_edges(mapped))
        # Look-ahead anchoring: a variable adjacent to a *constant* query
        # node (mapped or not) can also be anchored through that
        # constant's data occurrences — this is what lets the budget be
        # spent on an edge towards an already-mapped node while the
        # candidate is justified by a different, still-unmapped anchor
        # (e.g. Q2 of the paper: ?v2 anchored through "Health Care"
        # even though its ?e1 edge to Carla Bunes goes unmatched).
        for _edge_label, dst in query.out_edges(query_node):
            dst_label = query.label_of(dst)
            if isinstance(dst_label, Variable):
                continue
            anchored = anchored if anchored is not None else set()
            for data_dst in self.nodes_labelled(dst_label):
                anchored.update(src for _l, src in self.graph.in_edges(data_dst))
        for _edge_label, src in query.in_edges(query_node):
            src_label = query.label_of(src)
            if isinstance(src_label, Variable):
                continue
            anchored = anchored if anchored is not None else set()
            for data_src in self.nodes_labelled(src_label):
                anchored.update(dst for _l, dst in self.graph.out_edges(data_src))
        if anchored is None:
            return self.candidates(query, query_node)
        return sorted(anchored)

    def _missing_edges(self, query: QueryGraph, query_node: int,
                       candidate: int, mapping: dict[int, int]) -> int:
        """Query edges to already-mapped nodes absent from the data."""
        missing = 0
        for label, dst in query.out_edges(query_node):
            if dst == query_node:
                continue
            mapped = mapping.get(dst)
            if mapped is None:
                continue
            if not self._has_edge(candidate, label, mapped):
                missing += 1
        for label, src in query.in_edges(query_node):
            if src == query_node:
                continue
            mapped = mapping.get(src)
            if mapped is None:
                continue
            if not self._has_edge(mapped, label, candidate):
                missing += 1
        return missing

    def _has_edge(self, src: int, label, dst: int) -> bool:
        return any(dst == other and self.edge_label_matches(label, data_label)
                   for data_label, other in self.graph.out_edges(src))
