"""The ``sama`` command-line interface.

The subcommands cover the offline/online split of §5 plus the serving
layer and utilities::

    sama generate lubm data.nt --triples 10000 --seed 1
    sama index build data.nt ./my-index
    sama index build data.nt ./my-index --shards 4
    sama index compact ./my-incremental-index
    sama index reshard ./my-index --shards 8
    sama index sketch ./my-index
    sama index quotient ./my-index
    sama query ./my-index -e 'SELECT ?s WHERE { ?s <http://...> ?o . }'
    sama query ./my-index --two-stage safe -e 'SELECT ...'
    sama profile ./my-index -e 'SELECT ...' --repeat 3
    sama serve ./my-index --port 8080
    sama bench-serve ./my-index --clients 8
    sama inspect ./my-index

``sama query`` accepts SPARQL from a file or inline (``-e``), prints
the ranked answers with scores and bindings, and with ``--explain``
also renders the forest of paths (Fig. 4).  ``sama index`` groups the
offline maintenance verbs — ``build`` (``--shards N`` partitions the
paths across N self-contained shards), ``compact`` (vacuum an
incremental index), ``reshard`` (repartition an existing index),
``sketch`` (build the per-shard minhash sketches that power
``--two-stage`` retrieval) and ``quotient`` (group stored paths into
label-equality-pattern classes so queries align once per class); the
historical spelling
``sama index DATA DIR`` still works as an alias for ``build``.  ``sama serve`` keeps one
hot engine resident behind the JSON/HTTP API of
:mod:`repro.serving.http`; ``sama bench-serve`` drives it with
concurrent in-process clients and reports throughput and cache
effectiveness.  ``sama profile`` answers one query under a trace and
prints the per-stage time/count breakdown (DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import sys

from .datasets.registry import DATASETS, dataset
from .engine.sama import EngineConfig, SamaEngine
from .evaluation.reporting import format_bytes, format_seconds
from .index.builder import build_index
from .index.pathindex import PathIndex
from .paths.extraction import ExtractionLimits
from .rdf import ntriples, turtle
from .rdf.graph import DataGraph
from .resilience.errors import (OverloadedError, ParseError, QueryTimeout,
                                ReproError)


def _cmd_generate(args) -> int:
    spec = dataset(args.dataset)
    triples = args.triples or spec.default_triples
    graph = spec.build(triples, seed=args.seed)
    count = ntriples.write_file(graph.triples(), args.output)
    print(f"wrote {count} triples of {spec.name} to {args.output}")
    return 0


def _load_graph(path: str, fmt: "str | None") -> DataGraph:
    if fmt is None:
        fmt = "ttl" if path.endswith((".ttl", ".turtle")) else "nt"
    if fmt == "ttl":
        triples = turtle.parse_file(path)
    else:
        triples = ntriples.parse_file(path)
    return DataGraph.from_triples(triples, name=path)


def _cmd_index_build(args) -> int:
    graph = _load_graph(args.data, args.format)
    print(f"loaded {graph.edge_count()} triples, "
          f"{graph.node_count()} nodes from {args.data}")
    limits = ExtractionLimits(max_length=args.max_length,
                              max_paths=args.max_paths,
                              on_limit="truncate")
    index, stats = build_index(graph, args.index_dir, limits=limits,
                               shards=args.shards)
    if args.shards > 1:
        counts = ", ".join(str(shard.path_count) for shard in index.shards)
        print(f"partitioned into {index.shard_count} shards "
              f"({counts} paths)")
    if not args.no_quotient:
        from .quotient import QuotientIndex, build_quotients

        build_quotients(index)
        quotients = QuotientIndex.for_index(index)
        if quotients is not None:
            print(f"quotient: {quotients.path_count} paths in "
                  f"{quotients.class_count} equivalence class(es) "
                  f"({quotients.compression_ratio:.1f}x compression)")
    index.close()
    print(f"indexed {stats.path_count} paths in "
          f"{format_seconds(stats.build_seconds)} "
          f"({format_bytes(stats.size_bytes)} on disk)")
    print(f"|HV| = {stats.hv_count}, |HE| = {stats.he_count}, "
          f"sources = {stats.source_count}, sinks = {stats.sink_count}")
    if stats.truncated:
        print("note: path extraction hit its budget and truncated "
              "(raise --max-paths / --max-length to extract more)")
    return 0


def _cmd_index_reshard(args) -> int:
    from .index.sharded import reshard

    index = reshard(args.index_dir, args.shards, output=args.output)
    try:
        destination = args.output or args.index_dir
        print(f"resharded {args.index_dir} -> {destination}: "
              f"{index.shard_count} shard(s), {index.path_count} paths")
        for shard_no, shard in enumerate(index.shards):
            print(f"  shard {shard_no:02d}: {shard.path_count} paths")
    finally:
        index.close()
    return 0


def _cmd_index_compact(args) -> int:
    from .index.incremental import compact_directory

    report = compact_directory(args.index_dir)
    print(f"compacted {args.index_dir}: {report.live_paths} live paths kept")
    print(f"tombstoned records reclaimed: {format_bytes(report.dead_bytes)}")
    print(f"log: {format_bytes(report.old_log_bytes)} -> "
          f"{format_bytes(report.new_log_bytes)} "
          f"({format_bytes(report.reclaimed_bytes)} reclaimed on disk)")
    if report.sketches_invalidated:
        print(f"invalidated {report.sketches_invalidated} stale sketch "
              f"file(s); rerun 'sama index sketch' to rebuild")
    if report.quotients_invalidated:
        print(f"invalidated {report.quotients_invalidated} stale quotient "
              f"file(s); rerun 'sama index quotient' to rebuild")
    return 0


def _cmd_index_sketch(args) -> int:
    from .index.sharded import ShardedIndex, is_sharded_dir
    from .sketch import SketchParams, build_sketches

    params = SketchParams(seed=args.seed, num_perm=args.num_perm,
                          bands=args.bands)
    if is_sharded_dir(args.index_dir):
        index = ShardedIndex.open(args.index_dir)
    else:
        index = PathIndex.open(args.index_dir)
    try:
        written = build_sketches(index, params=params)
        for path in written:
            print(f"wrote {path}")
        print(f"sketched {index.path_count} paths across "
              f"{len(written)} file(s) "
              f"({params.num_perm} permutations, {params.bands} bands, "
              f"seed {params.seed})")
        return 0
    finally:
        index.close()


def _cmd_index_quotient(args) -> int:
    from .index.sharded import ShardedIndex, is_sharded_dir
    from .quotient import QuotientIndex, build_quotients

    if is_sharded_dir(args.index_dir):
        index = ShardedIndex.open(args.index_dir)
    else:
        index = PathIndex.open(args.index_dir)
    try:
        written = build_quotients(index)
        for path in written:
            print(f"wrote {path}")
        quotients = QuotientIndex.for_index(index)
        if quotients is None:
            print("no quotient files could be loaded back", file=sys.stderr)
            return 3
        print(f"quotiented {quotients.path_count} paths into "
              f"{quotients.class_count} equivalence class(es) across "
              f"{len(written)} file(s) "
              f"({quotients.compression_ratio:.1f}x compression)")
        return 0
    finally:
        index.close()


def _parse_workers(raw: str) -> "tuple[int, str | None]":
    """Decode ``serve --workers``: a count, ``"threads"``, or ``"procs"``.

    Returns ``(serving_workers, worker_mode)``.  A bare integer keeps
    the historical meaning (concurrent query workers, thread-mode shard
    execution); a mode name keeps the default serving concurrency and
    selects the shard execution mode (``sama serve --workers=procs``).
    """
    value = raw.strip().lower()
    if value in ("threads", "procs"):
        return 4, value
    try:
        return int(value), None
    except ValueError:
        raise SystemExit(
            f"error: --workers must be an integer, 'threads', or 'procs'; "
            f"got {raw!r}")


def _cmd_serve(args) -> int:
    import signal
    import threading

    from .serving import ServingConfig, ServingEngine
    from .serving.aserve import serve_async
    from .serving.http import serve

    serving_workers, worker_mode = _parse_workers(args.workers)
    config = EngineConfig(matcher_level=args.matcher,
                          hedge_ms=args.hedge_ms,
                          worker_mode=worker_mode,
                          two_stage=args.two_stage,
                          recall_target=args.recall_target,
                          quotient=args.quotient)
    # recover=True: a sharded index with damaged shards opens anyway,
    # the damage quarantined on the health board — the server answers
    # degraded from the surviving shards instead of refusing to start.
    engine = SamaEngine.open(args.index_dir, config=config, recover=True)
    # Procs mode: pay worker spawn + columnar build at startup, not on
    # the first query a client sends.
    engine.warm_workers()
    health = getattr(engine.index, "health", None)
    if health is not None and health.degraded:
        quarantined = health.failed_shards()
        print(f"warning: serving degraded — shard(s) "
              f"{','.join(str(s) for s in quarantined)} quarantined by the "
              f"recovery scan (see /healthz and /stats)", file=sys.stderr)
    serving = ServingEngine(engine, ServingConfig(
        workers=serving_workers,
        max_queue=args.max_queue,
        cache_bytes=args.cache_mb * (1 << 20),
        default_k=args.k,
        default_deadline_ms=args.deadline_ms,
        queue_deadline_ms=args.queue_deadline_ms,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=args.slow_query_log))
    if args.frontend == "asyncio":
        api_keys = (set(filter(None, args.api_keys.split(",")))
                    if args.api_keys else None)
        server = serve_async(
            serving, host=args.host, port=args.port,
            max_connections=args.max_connections,
            tenant_rate=args.tenant_rate, tenant_burst=args.tenant_burst,
            api_keys=api_keys, verbose=args.verbose)
        # Bind now so the printed URL shows the real port (port=0 picks
        # a free one); serve_forever below just blocks.
        server.serve_background()
    else:
        server = serve(serving, host=args.host, port=args.port,
                       verbose=args.verbose)
    mode_note = f", shard workers: {worker_mode}" if worker_mode else ""
    quota_note = (f", quota {args.tenant_rate:g}/s×{args.tenant_burst:g}"
                  if args.frontend == "asyncio"
                  and args.tenant_rate is not None else "")
    print(f"serving {args.index_dir} on {server.url} "
          f"({args.frontend} front end, {serving_workers} workers"
          f"{mode_note}, queue {args.max_queue}, "
          f"cache {args.cache_mb} MiB{quota_note})")
    print("endpoints: POST /query, GET /healthz, GET /stats, "
          "GET /metrics  (Ctrl-C to stop, SIGTERM to drain)")

    drain_s = (args.drain_deadline_ms / 1000.0
               if args.drain_deadline_ms is not None else None)
    state: dict = {"drainer": None}

    def _drain_and_stop(signum, frame):
        # The handler must return promptly (it runs on the main thread,
        # which serve_forever needs back to exit its accept loop), so
        # the drain runs on a helper thread: admission flips to 503
        # immediately, in-flight requests get drain_s to finish, then
        # the listener stops and serve_forever returns below.
        if state["drainer"] is not None:
            return
        print(f"\nSIGTERM: draining (deadline "
              f"{drain_s:g}s)" if drain_s is not None
              else "\nSIGTERM: draining", file=sys.stderr)
        state["drainer"] = threading.Thread(
            target=lambda: server.graceful_shutdown(drain_s),
            name="sama-drain", daemon=True)
        state["drainer"].start()

    previous = signal.signal(signal.SIGTERM, _drain_and_stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        if state["drainer"] is not None:
            state["drainer"].join(timeout=30)
        else:
            server.shutdown()
    return 0


def _cmd_bench_serve(args) -> int:
    import threading
    import time as _time

    from .serving import ServingConfig, ServingEngine

    texts = list(args.expression or [])
    if args.query_file:
        with open(args.query_file, encoding="utf-8") as handle:
            texts.append(handle.read())
    if not texts:
        print("error: provide at least one query "
              "(-e 'SELECT ...' or a query file)", file=sys.stderr)
        return 2

    config = EngineConfig(matcher_level=args.matcher)
    engine = SamaEngine.open(args.index_dir, config=config)
    serving = ServingEngine(engine, ServingConfig(
        workers=args.workers or args.clients,
        max_queue=max(args.clients * 2, 8),
        cache_bytes=0 if args.no_cache else args.cache_mb * (1 << 20),
        default_k=args.k))
    errors: list[str] = []

    def client(worker_id: int) -> None:
        for round_no in range(args.rounds):
            text = texts[(worker_id + round_no) % len(texts)]
            try:
                serving.query(text, k=args.k)
            except OverloadedError:
                pass  # counted by the service as shed
            except Exception as exc:  # pragma: no cover - report & fail
                errors.append(f"client {worker_id}: "
                              f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(args.clients)]
    started = _time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = _time.perf_counter() - started
    stats = serving.stats_payload()
    serving.close()
    if errors:
        for line in errors[:5]:
            print(f"error: {line}", file=sys.stderr)
        return 3
    answered = stats["served"]
    print(f"{answered} requests from {args.clients} clients in "
          f"{format_seconds(elapsed)} "
          f"({answered / elapsed if elapsed else 0:.1f} req/s)")
    print(f"cache hit rate: {stats['cache']['hit_rate']:.1%} "
          f"({stats['cache']['hits']} hits / "
          f"{stats['cache']['misses']} misses), shed: {stats['shed']}")
    p50 = stats["latency_p50_ms"]
    p95 = stats["latency_p95_ms"]
    print(f"latency p50 {p50:.2f} ms, p95 {p95:.2f} ms"
          if p50 is not None else "latency: no samples")
    return 0


def _cmd_query(args) -> int:
    if args.expression:
        text = args.expression
    elif args.query_file:
        with open(args.query_file, encoding="utf-8") as handle:
            text = handle.read()
    else:
        print("error: provide a query file or -e 'SELECT ...'",
              file=sys.stderr)
        return 2
    config = EngineConfig(matcher_level=args.matcher,
                          two_stage=args.two_stage,
                          recall_target=args.recall_target,
                          quotient=args.quotient)
    engine = SamaEngine.open(args.index_dir, config=config)
    try:
        if args.two_stage != "off" and engine.sketch_filter() is None:
            print("note: no usable sketches found (run 'sama index "
                  "sketch' first); falling back to exhaustive recall",
                  file=sys.stderr)
        if args.explain:
            print(engine.explain(text).render())
            print()
        # Without --partial-ok a tripped deadline is an error (exit 4,
        # handled in main); with it, whatever was found gets printed
        # along with the machine-readable degradation reasons.
        on_budget = "partial" if args.partial_ok else "raise"
        answers = engine.query(text, k=args.k,
                               deadline_ms=args.deadline_ms,
                               on_budget=on_budget)
        if answers.degraded:
            for reason in answers.reasons:
                print(f"partial: {reason}", file=sys.stderr)
        if not answers:
            print("no answers")
            return 1
        for rank, answer in enumerate(answers, start=1):
            print(f"#{rank} score={answer.score:.3f} "
                  f"(Λ={answer.quality:.3f}, Ψ={answer.conformity:.3f})"
                  f"{' exact' if answer.is_exact else ''}")
            bindings = answer.substitution()
            for variable in sorted(bindings, key=lambda v: v.value):
                print(f"    ?{variable.value} = {bindings[variable]}")
            if args.verbose:
                for query_path, entry in zip(answer.query_paths,
                                             answer.entries):
                    target = entry.path if entry else "(uncovered)"
                    print(f"    {query_path}  ->  {target}")
        return 0
    finally:
        engine.close()


def _cmd_profile(args) -> int:
    import time as _time

    from .obs import start_trace

    if args.expression:
        text = args.expression
    elif args.query_file:
        with open(args.query_file, encoding="utf-8") as handle:
            text = handle.read()
    else:
        print("error: provide a query file or -e 'SELECT ...'",
              file=sys.stderr)
        return 2
    config = EngineConfig(matcher_level=args.matcher)
    engine = SamaEngine.open(args.index_dir, config=config)
    try:
        io = engine.index.io_stats
        pool = engine.index.cache_stats
        reads0, read_s0 = io.page_reads, io.read_seconds
        hits0, misses0 = pool.hits, pool.misses
        decodes0 = engine.index.decode_count

        answers = None
        started = _time.perf_counter()
        with start_trace() as trace:
            for _ in range(args.repeat):
                if args.cold:
                    engine.cold_cache()
                answers = engine.query(text, k=args.k,
                                       deadline_ms=args.deadline_ms)
        wall = _time.perf_counter() - started

        condition = "cold cache each run" if args.cold else "shared cache"
        print(f"profiled {args.repeat} run(s) on {args.index_dir} "
              f"(k={args.k}, {condition})")
        print()
        print(f"{'stage':<12} {'calls':>6} {'total ms':>10} "
              f"{'ms/call':>9} {'% wall':>7}")
        depths = {}
        for record in trace.records:
            depths.setdefault(record.name, record.depth)
        for name, calls, seconds in trace.breakdown():
            label = "  " * depths.get(name, 0) + name
            share = 100.0 * seconds / wall if wall else 0.0
            print(f"{label:<12} {calls:>6} {seconds * 1000:>10.2f} "
                  f"{seconds * 1000 / calls:>9.2f} {share:>6.1f}%")
        accounted = trace.total_seconds
        print(f"{'(untraced)':<12} {'':>6} "
              f"{(wall - accounted) * 1000:>10.2f} {'':>9} "
              f"{100.0 * (wall - accounted) / wall if wall else 0.0:>6.1f}%")
        print(f"{'wall':<12} {'':>6} {wall * 1000:>10.2f}")
        print()
        print(f"storage: {io.page_reads - reads0} page reads "
              f"({io.read_seconds - read_s0:.4f} s), "
              f"pool {pool.hits - hits0} hits / "
              f"{pool.misses - misses0} misses, "
              f"{engine.index.decode_count - decodes0} records decoded")
        if answers is not None:
            best = f", best score {answers[0].score:.3f}" if answers else ""
            print(f"answers: {len(answers)}{best}")
            if answers.degraded:
                for reason in answers.reasons:
                    print(f"partial: {reason}", file=sys.stderr)
        return 0
    finally:
        engine.close()


def _cmd_inspect(args) -> int:
    import os

    from .index.sharded import ShardedIndex, is_sharded_dir, shard_dir

    if is_sharded_dir(args.index_dir):
        index = ShardedIndex.open(args.index_dir)
    else:
        index = PathIndex.open(args.index_dir)
    try:
        print(f"index: {args.index_dir}")
        for key, value in sorted(index.metadata.items()):
            print(f"  {key}: {value}")
        print(f"  paths: {index.path_count}")
        if getattr(index, "is_sharded", False):
            print(f"  shards: {index.shard_count} "
                  f"(epochs {list(index.epoch_vector)})")
            for shard_no, shard in enumerate(index.shards):
                log = os.path.join(shard_dir(args.index_dir, shard_no),
                                   "paths.log")
                size = (format_bytes(os.path.getsize(log))
                        if os.path.exists(log) else "?")
                print(f"  shard {shard_no:02d}: {shard.path_count} paths, "
                      f"{size} on disk")
        log_path = os.path.join(args.index_dir, "paths.log")
        if os.path.exists(log_path):
            print(f"  on disk: {format_bytes(os.path.getsize(log_path))}")
        if args.sample:
            print("sample paths:")
            for offset in index.all_offsets()[:args.sample]:
                print(f"  {index.path_at(offset)}")
        return 0
    finally:
        index.close()


def _non_negative_ms(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value:g}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sama",
        description="Approximate querying over RDF via path alignment "
                    "(EDBT 2013 reproduction).")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate a benchmark dataset")
    generate.add_argument("dataset", choices=sorted(DATASETS))
    generate.add_argument("output", help="output .nt file")
    generate.add_argument("--triples", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    index = sub.add_parser(
        "index", help="build and maintain path indexes "
                      "(build / compact / reshard)")
    index_sub = index.add_subparsers(dest="index_command", required=True)

    index_build = index_sub.add_parser(
        "build", help="build a path index from RDF data")
    index_build.add_argument("data", help="input .nt or .ttl file")
    index_build.add_argument("index_dir", help="directory for the index")
    index_build.add_argument("--format", choices=["nt", "ttl"], default=None)
    index_build.add_argument("--max-paths", type=int, default=200_000)
    index_build.add_argument("--max-length", type=int, default=32)
    index_build.add_argument("--shards", type=int, default=1,
                             help="partition the paths across N "
                                  "self-contained shards (default 1 = "
                                  "plain unsharded index)")
    index_build.add_argument("--no-quotient", action="store_true",
                             help="skip the quotient pass that groups "
                                  "stored paths into equivalence classes "
                                  "(run 'sama index quotient' later to "
                                  "add it)")
    index_build.set_defaults(func=_cmd_index_build)

    index_compact = index_sub.add_parser(
        "compact", help="vacuum an incremental index directory")
    index_compact.add_argument("index_dir")
    index_compact.set_defaults(func=_cmd_index_compact)

    index_reshard = index_sub.add_parser(
        "reshard", help="repartition an existing index to a new "
                        "shard count")
    index_reshard.add_argument("index_dir",
                               help="existing index (sharded or plain)")
    index_reshard.add_argument("--shards", type=int, required=True,
                               help="target shard count")
    index_reshard.add_argument("--output", default=None,
                               help="write the repartitioned index here "
                                    "instead of replacing in place")
    index_reshard.set_defaults(func=_cmd_index_reshard)

    index_sketch = index_sub.add_parser(
        "sketch", help="build (or rebuild) the per-shard minhash "
                       "sketches for two-stage retrieval")
    index_sketch.add_argument("index_dir",
                              help="existing index (sharded or plain)")
    index_sketch.add_argument("--num-perm", type=int, default=32,
                              help="minhash permutations per signature "
                                   "(default 32)")
    index_sketch.add_argument("--bands", type=int, default=8,
                              help="LSH bands; must divide --num-perm "
                                   "(default 8)")
    index_sketch.add_argument("--seed", type=int, default=2013,
                              help="hash seed; queries recompute "
                                   "signatures with the same seed "
                                   "(default 2013)")
    index_sketch.set_defaults(func=_cmd_index_sketch)

    index_quotient = index_sub.add_parser(
        "quotient", help="build (or rebuild) the per-shard equivalence "
                         "classes for quotient-compressed scoring")
    index_quotient.add_argument("index_dir",
                                help="existing index (sharded or plain)")
    index_quotient.set_defaults(func=_cmd_index_quotient)

    query = sub.add_parser("query", help="run a SPARQL query on an index")
    query.add_argument("index_dir")
    query.add_argument("query_file", nargs="?", default=None,
                       help="file with a SPARQL SELECT query")
    query.add_argument("-e", "--expression", default=None,
                       help="inline SPARQL text")
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--matcher", choices=["exact", "lexical", "semantic"],
                       default="semantic")
    query.add_argument("--explain", action="store_true",
                       help="print the forest of paths first")
    query.add_argument("-v", "--verbose", action="store_true",
                       help="show per-path alignments")
    query.add_argument("--deadline-ms", type=_non_negative_ms, default=None,
                       help="wall-clock budget for the query in ms")
    query.add_argument("--partial-ok", action="store_true",
                       help="when the deadline trips, print the answers "
                            "found so far instead of failing")
    query.add_argument("--two-stage", choices=["off", "safe", "approx"],
                       default="off",
                       help="sketch-based candidate recall before exact "
                            "scoring: 'safe' never changes rankings, "
                            "'approx' trades recall for speed (needs "
                            "'sama index sketch' first)")
    query.add_argument("--recall-target", type=float, default=0.95,
                       help="target recall for --two-stage approx "
                            "(default 0.95)")
    query.add_argument("--quotient", choices=["auto", "off"],
                       default="auto",
                       help="score once per stored-path equivalence class "
                            "when quotient.bin files match the index "
                            "epoch ('auto', the default; rankings are "
                            "bit-identical) or never load them ('off')")
    query.set_defaults(func=_cmd_query)

    profile = sub.add_parser(
        "profile", help="answer a query and print the per-stage "
                        "time/count breakdown")
    profile.add_argument("index_dir")
    profile.add_argument("query_file", nargs="?", default=None,
                         help="file with a SPARQL SELECT query")
    profile.add_argument("-e", "--expression", default=None,
                         help="inline SPARQL text")
    profile.add_argument("-k", type=int, default=10)
    profile.add_argument("--matcher",
                         choices=["exact", "lexical", "semantic"],
                         default="semantic")
    profile.add_argument("--repeat", type=int, default=1,
                         help="run the query N times and aggregate "
                              "(default 1)")
    profile.add_argument("--cold", action="store_true",
                         help="clear the buffer pool and decoded-path "
                              "cache before each run (cold-cache "
                              "attribution)")
    profile.add_argument("--deadline-ms", type=_non_negative_ms,
                         default=None,
                         help="wall-clock budget for each run in ms")
    profile.set_defaults(func=_cmd_profile)

    serve = sub.add_parser("serve",
                           help="serve an index over JSON/HTTP")
    serve.add_argument("index_dir")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", default="4", metavar="N|threads|procs",
                       help="concurrent query workers (default 4), or a "
                            "shard execution mode: 'procs' scores shards "
                            "in worker processes, 'threads' (default mode) "
                            "on the shared thread pool; SAMA_WORKER_MODE "
                            "sets the mode when a count is given")
    serve.add_argument("--max-queue", type=int, default=8,
                       help="admitted requests allowed to wait beyond the "
                            "busy workers; anything more is shed (503)")
    serve.add_argument("--cache-mb", type=int, default=64,
                       help="result cache budget in MiB (0 disables)")
    serve.add_argument("-k", type=int, default=10,
                       help="default top-k per request")
    serve.add_argument("--deadline-ms", type=_non_negative_ms, default=None,
                       help="default per-request deadline")
    serve.add_argument("--queue-deadline-ms", type=_non_negative_ms,
                       default=None,
                       help="deadline forced onto requests that have to "
                            "wait for a worker (degrade under pressure)")
    serve.add_argument("--slow-query-ms", type=_non_negative_ms,
                       default=None,
                       help="log requests slower than this as JSON lines "
                            "(with a per-stage breakdown)")
    serve.add_argument("--slow-query-log", default=None,
                       help="slow-query log file (default: stderr)")
    serve.add_argument("--matcher", choices=["exact", "lexical", "semantic"],
                       default="semantic")
    serve.add_argument("--hedge-ms", type=_non_negative_ms, default=None,
                       help="duplicate a straggling shard task after this "
                            "many ms; first result wins (sharded indexes "
                            "only)")
    serve.add_argument("--two-stage", choices=["off", "safe", "approx"],
                       default="off",
                       help="sketch-based candidate recall before exact "
                            "scoring (cache keys include the mode, so "
                            "staged and exhaustive results never alias)")
    serve.add_argument("--recall-target", type=float, default=0.95,
                       help="target recall for --two-stage approx "
                            "(default 0.95)")
    serve.add_argument("--quotient", choices=["auto", "off"],
                       default="auto",
                       help="quotient-compressed scoring when persisted "
                            "quotient.bin files match the index epoch "
                            "(default auto; compression shows on /stats)")
    serve.add_argument("--frontend", choices=["threads", "asyncio"],
                       default="threads",
                       help="HTTP front end: 'threads' (one OS thread per "
                            "connection) or 'asyncio' (event loop with "
                            "keep-alive, single-flight coalescing of "
                            "identical in-flight queries, and per-tenant "
                            "quotas)")
    serve.add_argument("--max-connections", type=int, default=1024,
                       help="asyncio front end: concurrent connections "
                            "before new ones are refused with 503 "
                            "(default 1024)")
    serve.add_argument("--tenant-rate", type=float, default=None,
                       help="asyncio front end: per-tenant admission rate "
                            "in requests/second (token bucket keyed by "
                            "X-API-Key; over-quota requests get 429 + "
                            "Retry-After; default: no quota)")
    serve.add_argument("--tenant-burst", type=float, default=10.0,
                       help="token-bucket burst capacity per tenant "
                            "(default 10)")
    serve.add_argument("--api-keys", default=None,
                       help="comma-separated allow-list of API keys; "
                            "requests with any other key are refused "
                            "(default: every key is its own tenant)")
    serve.add_argument("--drain-deadline-ms", type=_non_negative_ms,
                       default=10_000.0,
                       help="on SIGTERM, seconds*1000 granted to in-flight "
                            "requests before the listener stops "
                            "(default 10000)")
    serve.add_argument("-v", "--verbose", action="store_true",
                       help="log each HTTP request")
    serve.set_defaults(func=_cmd_serve)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="drive a served index with concurrent clients")
    bench_serve.add_argument("index_dir")
    bench_serve.add_argument("query_file", nargs="?", default=None,
                             help="file with a SPARQL SELECT query")
    bench_serve.add_argument("-e", "--expression", action="append",
                             help="inline SPARQL (repeatable)")
    bench_serve.add_argument("--clients", type=int, default=8)
    bench_serve.add_argument("--rounds", type=int, default=4,
                             help="requests per client (default 4)")
    bench_serve.add_argument("--workers", type=int, default=None,
                             help="service workers (default: --clients)")
    bench_serve.add_argument("--cache-mb", type=int, default=64)
    bench_serve.add_argument("--no-cache", action="store_true",
                             help="disable the result cache")
    bench_serve.add_argument("-k", type=int, default=10)
    bench_serve.add_argument("--matcher",
                             choices=["exact", "lexical", "semantic"],
                             default="semantic")
    bench_serve.set_defaults(func=_cmd_bench_serve)

    inspect = sub.add_parser("inspect", help="show index metadata")
    inspect.add_argument("index_dir")
    inspect.add_argument("--sample", type=int, default=0,
                         help="print the first N stored paths")
    inspect.set_defaults(func=_cmd_inspect)
    return parser


#: ``sama index`` verbs; anything else in that position is data (the
#: historical ``sama index DATA DIR`` spelling, kept as a build alias).
_INDEX_VERBS = frozenset({"build", "compact", "reshard", "sketch",
                          "quotient"})


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if (len(argv) >= 2 and argv[0] == "index"
            and argv[1] not in _INDEX_VERBS
            and not argv[1].startswith("-")):
        argv.insert(1, "build")
    args = build_parser().parse_args(argv)
    # Structured errors become one-line diagnostics, never tracebacks:
    # exit 2 for bad input, 4 for a tripped budget, 3 for the rest.
    try:
        return args.func(args)
    except ParseError as exc:
        print(f"error: {exc.one_line()}", file=sys.stderr)
        return 2
    except QueryTimeout as exc:
        print(f"error: {exc} (rerun with --partial-ok to accept "
              f"partial answers)", file=sys.stderr)
        return 4
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
