"""Benchmark datasets: the paper's eight, as seeded synthetic generators.

Real dumps (GovTrack, KEGG, IMDB, DBLP, PBlog) are unavailable offline,
so each module mimics its dataset's schema and degree profile at a
configurable triple scale (DESIGN.md documents the substitution).  The
exact Fig. 1 running example lives in :mod:`repro.datasets.govtrack`,
and the 12 benchmark queries in :mod:`repro.datasets.lubm_queries`.
"""

from .base import DatasetSpec, EntityMinter, TripleBudget
from .govtrack import (govtrack_figure_graph, govtrack_graph, query_q1,
                       query_q2)
from .lubm_queries import QuerySpec, lubm_queries, query_by_id
from .registry import DATASETS, all_datasets, dataset
from .workloads import workload, workload_datasets

__all__ = [
    "DATASETS", "DatasetSpec", "EntityMinter", "QuerySpec", "TripleBudget",
    "all_datasets", "dataset", "govtrack_figure_graph", "govtrack_graph",
    "lubm_queries", "query_by_id", "query_q1", "query_q2",
    "workload", "workload_datasets",
]
