"""Dataset infrastructure: seeded synthetic RDF generators.

The paper evaluates on real datasets (PBlog, GovTrack, KEGG, IMDB,
DBLP) and synthetic ones (Berlin/BSBM, LUBM, UOBM).  None of the real
dumps is redistributable or reachable offline, so every dataset here is
a *seeded generator* that mimics the original's schema and shape —
entity types, predicate vocabulary, degree profile, label reuse — at a
configurable triple scale.  Generators are deterministic in
``(triple_target, seed)``: Table 1 regenerates identically.

Each generator module exposes ``generate(triple_target, seed) ->
DataGraph``; :mod:`repro.datasets.registry` maps the paper's dataset
names onto them with scaled default sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace
from ..rdf.terms import Literal, URI


class GeneratorFn(Protocol):
    def __call__(self, triple_target: int, seed: int = 0) -> DataGraph: ...


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset of Table 1: its generator and scaled default size.

    ``paper_triples`` records the original's size (for documentation
    and the Table 1 report); ``default_triples`` is the laptop-scale
    default preserving the paper's size ordering.
    """

    name: str
    generate: GeneratorFn
    default_triples: int
    paper_triples: str
    description: str = ""

    def build(self, triple_target: "int | None" = None,
              seed: int = 0) -> DataGraph:
        target = triple_target if triple_target is not None \
            else self.default_triples
        graph = self.generate(target, seed=seed)
        if not graph.name:
            graph.name = self.name
        return graph


class TripleBudget:
    """Tracks how many triples a generator may still add.

    Generators call :meth:`spend` per triple and stop when exhausted,
    which is how every generator honours an exact-ish ``triple_target``
    regardless of its internal entity structure.
    """

    def __init__(self, target: int):
        if target < 1:
            raise ValueError(f"triple_target must be >= 1, got {target}")
        self.target = target
        self.spent = 0

    @property
    def remaining(self) -> int:
        return max(0, self.target - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.target

    def charge(self, count: int = 1) -> None:
        """Account for triples added outside :meth:`add` (e.g. via
        explicit node ids when duplicate literals must stay distinct)."""
        self.spent += count

    def add(self, graph: DataGraph, subject, predicate, object) -> bool:
        """Add a triple if budget remains; returns False when exhausted."""
        if self.exhausted:
            return False
        before = graph.edge_count()
        graph.add_triple(subject, predicate, object)
        if graph.edge_count() > before:  # duplicates don't consume budget
            self.spent += 1
        return True


@dataclass
class EntityMinter:
    """Mints numbered URIs under a namespace (``Professor0``, ...)."""

    namespace: Namespace
    counters: dict[str, int] = field(default_factory=dict)

    def mint(self, kind: str) -> URI:
        index = self.counters.get(kind, 0)
        self.counters[kind] = index + 1
        return self.namespace[f"{kind}{index}"]


def pick(rng: random.Random, population: list):
    """A seeded choice (isolated here so generators share one idiom)."""
    return population[rng.randrange(len(population))]


def person_name(rng: random.Random, index: int) -> Literal:
    """A plausible person-name literal, deterministic per (rng, index)."""
    first = pick(rng, _FIRST_NAMES)
    last = pick(rng, _LAST_NAMES)
    return Literal(f"{first} {last}")


_FIRST_NAMES = [
    "Alice", "Antonio", "Bruno", "Carla", "Chen", "Dana", "Elena", "Fatima",
    "Giorgio", "Hana", "Igor", "Jamal", "Keith", "Laura", "Marco", "Nadia",
    "Omar", "Paula", "Quentin", "Rita", "Sven", "Tala", "Uma", "Viktor",
    "Wei", "Ximena", "Yuki", "Zeno",
]

_LAST_NAMES = [
    "Bunes", "Dickes", "Farmer", "Garcia", "Hansen", "Ivanov", "Johnson",
    "Kim", "Lombardi", "McRie", "Nimber", "Okafor", "Petrov", "Quaranta",
    "Rossi", "Singh", "Traves", "Ueda", "Virgilio", "Weber", "Xu", "Yamada",
    "Zhang", "Ryser", "Torlone", "Maccioni",
]
