"""A Berlin SPARQL Benchmark (BSBM) shaped generator.

BSBM models an e-commerce scenario: producers make products, vendors
publish offers for them, and reviewers write reviews.  The generator
reproduces that schema — product types and features, offers with
vendor/price, reviews with ratings — under a triple budget.
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace, RDF
from ..rdf.terms import Literal
from .base import EntityMinter, TripleBudget, person_name, pick

BSBM = Namespace("http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/")

PRODUCT = BSBM.Product
PRODUCER = BSBM.Producer
VENDOR = BSBM.Vendor
OFFER = BSBM.Offer
REVIEW = BSBM.Review
PERSON = BSBM.Person

PRODUCED_BY = BSBM.producer
PRODUCT_FEATURE = BSBM.productFeature
PRODUCT_TYPE = BSBM.productType
OFFERS_PRODUCT = BSBM.product
OFFERED_BY = BSBM.vendor
PRICE = BSBM.price
REVIEW_FOR = BSBM.reviewFor
REVIEWER = BSBM.reviewer
RATING = BSBM.rating
LABEL = BSBM.label
COUNTRY = BSBM.country

_FEATURES = ["Wireless", "Portable", "Rechargeable", "Waterproof",
             "Ergonomic", "Compact", "Digital", "Analog"]
_TYPES = ["Phone", "Laptop", "Camera", "Printer", "Monitor", "Speaker"]
_COUNTRIES = ["DE", "IT", "US", "JP", "FR", "CN"]


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate a BSBM-shaped graph of roughly ``triple_target`` triples."""
    rng = random.Random(f"berlin:{seed}:{triple_target}")
    graph = DataGraph(name="berlin")
    budget = TripleBudget(triple_target)
    minter = EntityMinter(BSBM)

    producers = [minter.mint("Producer") for _ in range(4)]
    for producer in producers:
        budget.add(graph, producer, RDF.type, PRODUCER)
        budget.add(graph, producer, COUNTRY, Literal(pick(rng, _COUNTRIES)))
    vendors = [minter.mint("Vendor") for _ in range(4)]
    for vendor in vendors:
        budget.add(graph, vendor, RDF.type, VENDOR)
        budget.add(graph, vendor, COUNTRY, Literal(pick(rng, _COUNTRIES)))
    reviewers = [minter.mint("Reviewer") for _ in range(8)]
    for index, reviewer in enumerate(reviewers):
        budget.add(graph, reviewer, RDF.type, PERSON)
        budget.add(graph, reviewer, LABEL, person_name(rng, index))

    while not budget.exhausted:
        product = minter.mint("Product")
        budget.add(graph, product, RDF.type, PRODUCT)
        budget.add(graph, product, LABEL,
                   Literal(f"Product {minter.counters['Product'] - 1}"))
        budget.add(graph, product, PRODUCED_BY, pick(rng, producers))
        budget.add(graph, product, PRODUCT_TYPE, Literal(pick(rng, _TYPES)))
        for feature in rng.sample(_FEATURES, k=2):
            budget.add(graph, product, PRODUCT_FEATURE, Literal(feature))
        for _ in range(rng.randint(1, 3)):
            if budget.exhausted:
                break
            offer = minter.mint("Offer")
            budget.add(graph, offer, RDF.type, OFFER)
            budget.add(graph, offer, OFFERS_PRODUCT, product)
            budget.add(graph, offer, OFFERED_BY, pick(rng, vendors))
            budget.add(graph, offer, PRICE,
                       Literal(str(rng.randint(10, 2000))))
        for _ in range(rng.randint(0, 2)):
            if budget.exhausted:
                break
            review = minter.mint("Review")
            budget.add(graph, review, RDF.type, REVIEW)
            budget.add(graph, review, REVIEW_FOR, product)
            budget.add(graph, review, REVIEWER, pick(rng, reviewers))
            budget.add(graph, review, RATING, Literal(str(rng.randint(1, 5))))
    return graph
