"""A DBLP-shaped generator (publications, authors, venues, citations).

The largest dataset of Table 1 (26M triples in the paper).  Papers have
authors (drawn with a rich-get-richer bias, like real bibliographies),
venues, years, and cite earlier papers — the citation edges give the
graph long source-to-sink chains, which is what made DBLP the slowest
index build in Table 1.
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace, RDF
from ..rdf.terms import Literal
from .base import EntityMinter, TripleBudget, person_name, pick

DBLP = Namespace("http://dblp.l3s.de/d2r/resource/")

ARTICLE = DBLP.Article
IN_PROCEEDINGS = DBLP.Inproceedings
AUTHOR = DBLP.Author

CREATOR = DBLP.creator
CITES = DBLP.cites
VENUE = DBLP.venue
YEAR = DBLP.year
TITLE = DBLP.title
NAME = DBLP.name

_VENUES = ["VLDB", "SIGMOD", "ICDE", "EDBT", "ISWC", "WWW", "KDD", "PODS"]
_TOPICS = ["Query", "Graph", "Index", "Stream", "Semantic", "Parallel",
           "Approximate", "Distributed", "Adaptive", "Similarity"]
_OBJECTS = ["Processing", "Matching", "Structures", "Evaluation",
            "Answering", "Optimization", "Search", "Joins"]


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate a DBLP-shaped graph of roughly ``triple_target`` triples."""
    rng = random.Random(f"dblp:{seed}:{triple_target}")
    graph = DataGraph(name="dblp")
    budget = TripleBudget(triple_target)
    minter = EntityMinter(DBLP)

    author_pool_size = max(8, triple_target // 15)
    authors = []
    for index in range(author_pool_size):
        if budget.remaining < 2:
            break
        author = minter.mint("Author")
        authors.append(author)
        budget.add(graph, author, RDF.type, AUTHOR)
        budget.add(graph, author, NAME, person_name(rng, index))

    papers: list = []
    # Rich-get-richer author pool: prolific authors repeat.
    author_pool = list(authors[: max(2, len(authors) // 4)])
    while not budget.exhausted and authors:
        paper = minter.mint("Paper")
        number = minter.counters["Paper"] - 1
        kind = ARTICLE if number % 3 == 0 else IN_PROCEEDINGS
        budget.add(graph, paper, RDF.type, kind)
        budget.add(graph, paper, TITLE, Literal(
            f"{pick(rng, _TOPICS)} {pick(rng, _OBJECTS)} {number}"))
        budget.add(graph, paper, VENUE, Literal(pick(rng, _VENUES)))
        budget.add(graph, paper, YEAR, Literal(str(rng.randint(1990, 2012))))
        author_count = rng.randint(1, 3)
        chosen = {pick(rng, author_pool) for _ in range(author_count)}
        chosen.add(pick(rng, authors))
        for author in sorted(chosen):
            budget.add(graph, paper, CREATOR, author)
            author_pool.append(author)
        # Cite up to 3 strictly earlier papers (keeps citations acyclic).
        if papers:
            for cited in rng.sample(papers, k=min(rng.randint(0, 3),
                                                  len(papers))):
                budget.add(graph, paper, CITES, cited)
        papers.append(paper)
    return graph
