"""The GovTrack running example of the paper (Fig. 1).

:func:`govtrack_graph` reconstructs the data graph ``Gd`` exactly as
the paper's clustering example requires: its path decomposition yields
the paths ``p1``–``p10`` and ``p17``–``p20`` of Fig. 3, it has seven
sources (the seven persons) and two sinks (``Health Care`` and
``Male``), matching §3.2's description of the figure.

:func:`govtrack_figure_graph` additionally includes the decorative
nodes visible in Fig. 1 (``Female``, the ``Term 10/21/94`` role nodes,
``Senate NY``) that the worked example never touches; adding them
introduces further sinks, which is why the canonical graph leaves them
out (the paper counts exactly two sinks).

:func:`query_q1` and :func:`query_q2` are the queries of Fig. 1(b-c):
Q1 asks for amendments (?v1) sponsored by Carla Bunes to a bill (?v2)
on Health Care originally sponsored by a male person (?v3); Q2 relaxes
the ``sponsor``/``aTo`` chain into a single variable edge ``?e1``.
"""

from __future__ import annotations

from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.namespaces import GOV
from ..rdf.terms import Literal

# Entity URIs (local names follow the paper's labels).
CARLA_BUNES = GOV["CarlaBunes"]
PIERCE_DICKES = GOV["PierceDickes"]
ALICE_NIMBER = GOV["AliceNimber"]
KEITH_FARMER = GOV["KeithFarmer"]
JEFF_RYSER = GOV["JeffRyser"]
JOHN_MCRIE = GOV["JohnMcRie"]
PETER_TRAVES = GOV["PeterTraves"]

A0056 = GOV["A0056"]
A0467 = GOV["A0467"]
A0772 = GOV["A0772"]
A1232 = GOV["A1232"]
A1589 = GOV["A1589"]

B0045 = GOV["B0045"]
B0532 = GOV["B0532"]
B1432 = GOV["B1432"]

HEALTH_CARE = Literal("Health Care")
MALE = Literal("Male")
FEMALE = Literal("Female")

SPONSOR = GOV["sponsor"]
A_TO = GOV["aTo"]
SUBJECT = GOV["subject"]
GENDER = GOV["gender"]
HAS_ROLE = GOV["hasRole"]
FOR_OFFICE = GOV["forOffice"]


def govtrack_graph() -> DataGraph:
    """The canonical Fig. 1 data graph (7 sources, 2 sinks, 14 paths)."""
    graph = DataGraph(name="govtrack")
    triples = [
        # Amendments sponsored to bills (the p1-p6 chains).
        (CARLA_BUNES, SPONSOR, A0056), (A0056, A_TO, B1432),
        (JEFF_RYSER, SPONSOR, A1589), (A1589, A_TO, B0532),
        (KEITH_FARMER, SPONSOR, A1232), (A1232, A_TO, B0045),
        (JOHN_MCRIE, SPONSOR, A0772), (A0772, A_TO, B0045),
        (JOHN_MCRIE, SPONSOR, A1232),
        (PIERCE_DICKES, SPONSOR, A0467), (A0467, A_TO, B0532),
        # Bills on Health Care.
        (B1432, SUBJECT, HEALTH_CARE),
        (B0532, SUBJECT, HEALTH_CARE),
        (B0045, SUBJECT, HEALTH_CARE),
        # Direct bill sponsorships (the p7-p10 chains).
        (JEFF_RYSER, SPONSOR, B0045),
        (PETER_TRAVES, SPONSOR, B0532),
        (ALICE_NIMBER, SPONSOR, B1432),
        (PIERCE_DICKES, SPONSOR, B1432),
        # Genders (the p17-p20 chains).
        (JEFF_RYSER, GENDER, MALE),
        (KEITH_FARMER, GENDER, MALE),
        (JOHN_MCRIE, GENDER, MALE),
        (PIERCE_DICKES, GENDER, MALE),
    ]
    graph.add_triples(triples)
    return graph


def govtrack_figure_graph() -> DataGraph:
    """Fig. 1 with the decorative role/office/Female nodes included."""
    graph = govtrack_graph()
    graph.name = "govtrack-figure"
    term_mcrie = graph.add_node(Literal("Term 10/21/94"))
    term_traves = graph.add_node(Literal("Term 10/21/94"))
    senate_ny = graph.node_for(Literal("Senate NY"))
    graph.add_edge(graph.node_for(JOHN_MCRIE), HAS_ROLE, term_mcrie)
    graph.add_edge(graph.node_for(PETER_TRAVES), HAS_ROLE, term_traves)
    graph.add_edge(term_mcrie, FOR_OFFICE, senate_ny)
    graph.add_edge(term_traves, FOR_OFFICE, senate_ny)
    graph.add_triple(CARLA_BUNES, GENDER, FEMALE)
    graph.add_triple(ALICE_NIMBER, GENDER, FEMALE)
    graph.add_triple(PETER_TRAVES, GENDER, MALE)
    return graph


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """A scaled synthetic GovTrack (the Table 1 "GOV" row).

    Persons sponsor bills and amendments, amendments amend bills, bills
    carry subjects, persons have genders and hold terms for offices —
    the schema of Fig. 1 grown to ``triple_target`` triples.
    """
    import random

    from .base import EntityMinter, TripleBudget, person_name, pick

    rng = random.Random(f"govtrack:{seed}:{triple_target}")
    graph = DataGraph(name="govtrack-synthetic")
    budget = TripleBudget(triple_target)
    minter = EntityMinter(GOV)

    subjects = [Literal(s) for s in (
        "Health Care", "Education", "Defense", "Agriculture", "Energy",
        "Taxation", "Transportation", "Immigration")]
    offices = [Literal(f"Senate {state}") for state in (
        "NY", "CA", "TX", "IL", "WA", "FL")]
    genders = [MALE, FEMALE]

    person_pool_size = max(4, triple_target // 12)
    persons = []
    for index in range(person_pool_size):
        if budget.remaining < 3:
            break
        person = minter.mint("Person")
        persons.append(person)
        budget.add(graph, person, GENDER, genders[index % 2])
        term = graph.add_node(Literal(f"Term {rng.randint(1, 12)}/"
                                      f"{rng.randint(1, 28)}/"
                                      f"{rng.randint(80, 99)}"))
        graph.add_edge(graph.node_for(person), HAS_ROLE, term)
        budget.charge()
        graph.add_edge(term, FOR_OFFICE,
                       graph.node_for(pick(rng, offices)))
        budget.charge()

    bills = []
    while not budget.exhausted and persons:
        bill = minter.mint("B")
        bills.append(bill)
        budget.add(graph, bill, SUBJECT, pick(rng, subjects))
        budget.add(graph, pick(rng, persons), SPONSOR, bill)
        for _ in range(rng.randint(0, 2)):
            if budget.exhausted:
                break
            amendment = minter.mint("A")
            budget.add(graph, pick(rng, persons), SPONSOR, amendment)
            budget.add(graph, amendment, A_TO, bill)
    return graph


def query_q1() -> QueryGraph:
    """Fig. 1(b): amendments by Carla Bunes to a Health Care bill
    originally sponsored by a male person."""
    query = QueryGraph(name="govtrack-q1")
    query.add_triples([
        (CARLA_BUNES, SPONSOR, "?v1"),
        ("?v1", A_TO, "?v2"),
        ("?v2", SUBJECT, HEALTH_CARE),
        ("?v3", SPONSOR, "?v2"),
        ("?v3", GENDER, MALE),
    ])
    return query


def query_q2() -> QueryGraph:
    """Fig. 1(c): Q1 with the sponsor/aTo chain relaxed to an unknown
    relationship ?e1 between Carla Bunes and the bill."""
    query = QueryGraph(name="govtrack-q2")
    query.add_triples([
        (CARLA_BUNES, "?e1", "?v2"),
        ("?v2", SUBJECT, HEALTH_CARE),
        ("?v3", SPONSOR, "?v2"),
        ("?v3", GENDER, MALE),
    ])
    return query
