"""An IMDB / LinkedMDB shaped generator (movies, people, genres).

Mirrors the triplified Linked Movie Database: films with directors,
actors, genres, runtime and release years; people act in several films
(shared-actor paths are what film queries navigate).
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace, RDF
from ..rdf.terms import Literal
from .base import EntityMinter, TripleBudget, person_name, pick

MOVIE = Namespace("http://data.linkedmdb.org/resource/movie/")

FILM = MOVIE.Film
ACTOR = MOVIE.Actor
DIRECTOR = MOVIE.Director

DIRECTED_BY = MOVIE.director
STARRING = MOVIE.actor
GENRE = MOVIE.genre
TITLE = MOVIE.title
RELEASE_YEAR = MOVIE.initial_release_date
RUNTIME = MOVIE.runtime
NAME = MOVIE.name

_GENRES = ["Drama", "Comedy", "Thriller", "Documentary", "Animation",
           "Science Fiction", "Romance", "Horror"]


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate an IMDB-shaped graph of roughly ``triple_target`` triples."""
    rng = random.Random(f"imdb:{seed}:{triple_target}")
    graph = DataGraph(name="imdb")
    budget = TripleBudget(triple_target)
    minter = EntityMinter(MOVIE)

    people_pool_size = max(6, triple_target // 20)
    actors = []
    directors = []
    for index in range(people_pool_size):
        if budget.remaining < 3:
            break
        if index % 4 == 0:
            person = minter.mint("Director")
            directors.append(person)
            budget.add(graph, person, RDF.type, DIRECTOR)
        else:
            person = minter.mint("Actor")
            actors.append(person)
            budget.add(graph, person, RDF.type, ACTOR)
        budget.add(graph, person, NAME, person_name(rng, index))

    while not budget.exhausted and actors and directors:
        film = minter.mint("Film")
        number = minter.counters["Film"] - 1
        budget.add(graph, film, RDF.type, FILM)
        budget.add(graph, film, TITLE, Literal(f"Film {number}"))
        budget.add(graph, film, DIRECTED_BY, pick(rng, directors))
        for actor in rng.sample(actors, k=min(3, len(actors))):
            budget.add(graph, film, STARRING, actor)
        budget.add(graph, film, GENRE, Literal(pick(rng, _GENRES)))
        budget.add(graph, film, RELEASE_YEAR,
                   Literal(str(rng.randint(1950, 2012))))
        budget.add(graph, film, RUNTIME, Literal(str(rng.randint(70, 200))))
    return graph
