"""A KEGG-shaped generator (genes, enzymes, reactions, compounds, pathways).

KEGG's RDF export links biology entities in long transformation chains:
genes encode enzymes, enzymes catalyse reactions, reactions consume and
produce compounds, and reactions belong to pathways.  The chains give
the data graph the deep, narrow paths typical of biochemical networks
(the domain most of the competing graph matchers were designed for).
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace, RDF
from ..rdf.terms import Literal
from .base import EntityMinter, TripleBudget, pick

KEGG = Namespace("http://bio2rdf.org/kegg/")

GENE = KEGG.Gene
ENZYME = KEGG.Enzyme
REACTION = KEGG.Reaction
COMPOUND = KEGG.Compound
PATHWAY = KEGG.Pathway

ENCODES = KEGG.encodes
CATALYZES = KEGG.catalyzes
SUBSTRATE = KEGG.substrate
PRODUCT = KEGG.product
PART_OF = KEGG.partOfPathway
NAME = KEGG.name

_PATHWAY_NAMES = ["Glycolysis", "Citrate cycle", "Fatty acid synthesis",
                  "Purine metabolism", "Amino sugar metabolism",
                  "Oxidative phosphorylation"]


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate a KEGG-shaped graph of roughly ``triple_target`` triples."""
    rng = random.Random(f"kegg:{seed}:{triple_target}")
    graph = DataGraph(name="kegg")
    budget = TripleBudget(triple_target)
    minter = EntityMinter(KEGG)

    pathways = []
    for name in _PATHWAY_NAMES:
        if budget.remaining < 2:
            break
        pathway = minter.mint("Pathway")
        pathways.append(pathway)
        budget.add(graph, pathway, RDF.type, PATHWAY)
        budget.add(graph, pathway, NAME, Literal(name))

    compound_pool_size = max(4, triple_target // 12)
    compounds = []
    for index in range(compound_pool_size):
        if budget.remaining < 2:
            break
        compound = minter.mint("Compound")
        compounds.append(compound)
        budget.add(graph, compound, RDF.type, COMPOUND)
        budget.add(graph, compound, NAME, Literal(f"C{index:05d}"))

    while not budget.exhausted and compounds and pathways:
        gene = minter.mint("Gene")
        budget.add(graph, gene, RDF.type, GENE)
        budget.add(graph, gene, NAME,
                   Literal(f"gene{minter.counters['Gene'] - 1}"))
        enzyme = minter.mint("Enzyme")
        budget.add(graph, enzyme, RDF.type, ENZYME)
        budget.add(graph, gene, ENCODES, enzyme)
        for _ in range(rng.randint(1, 2)):
            if budget.exhausted:
                break
            reaction = minter.mint("Reaction")
            budget.add(graph, reaction, RDF.type, REACTION)
            budget.add(graph, enzyme, CATALYZES, reaction)
            budget.add(graph, reaction, SUBSTRATE, pick(rng, compounds))
            budget.add(graph, reaction, PRODUCT, pick(rng, compounds))
            budget.add(graph, reaction, PART_OF, pick(rng, pathways))
    return graph
