"""A LUBM-shaped generator (Guo, Pan & Heflin's university benchmark).

LUBM describes universities: departments, faculty (full / associate /
assistant professors, lecturers), students, courses, publications and
research groups, linked by the ``univ-bench`` ontology's predicates.
The original generator scales by number of universities; ours scales by
a triple budget so Table 1 rows regenerate at any size, but it keeps
the benchmark's structure: every department hangs off a university,
faculty teach courses and head departments, students take courses and
have advisors, publications have faculty authors.

The graph this produces is the workload of Figures 6–9: the 12
benchmark queries in :mod:`repro.datasets.lubm_queries` run against it.
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import RDF, UB
from ..rdf.terms import Literal
from .base import EntityMinter, TripleBudget, person_name, pick

# Entity classes.
UNIVERSITY = UB.University
DEPARTMENT = UB.Department
FULL_PROFESSOR = UB.FullProfessor
ASSOCIATE_PROFESSOR = UB.AssociateProfessor
ASSISTANT_PROFESSOR = UB.AssistantProfessor
LECTURER = UB.Lecturer
GRADUATE_STUDENT = UB.GraduateStudent
UNDERGRADUATE_STUDENT = UB.UndergraduateStudent
COURSE = UB.Course
GRADUATE_COURSE = UB.GraduateCourse
PUBLICATION = UB.Publication
RESEARCH_GROUP = UB.ResearchGroup

# Predicates.
SUB_ORGANIZATION_OF = UB.subOrganizationOf
WORKS_FOR = UB.worksFor
HEAD_OF = UB.headOf
MEMBER_OF = UB.memberOf
ADVISOR = UB.advisor
TAKES_COURSE = UB.takesCourse
TEACHER_OF = UB.teacherOf
PUBLICATION_AUTHOR = UB.publicationAuthor
UNDERGRAD_DEGREE_FROM = UB.undergraduateDegreeFrom
MASTERS_DEGREE_FROM = UB.mastersDegreeFrom
DOCTORAL_DEGREE_FROM = UB.doctoralDegreeFrom
NAME = UB.name
EMAIL = UB.emailAddress
RESEARCH_INTEREST = UB.researchInterest

_FACULTY_TYPES = [FULL_PROFESSOR, ASSOCIATE_PROFESSOR,
                  ASSISTANT_PROFESSOR, LECTURER]

_RESEARCH_AREAS = [
    "Databases", "Semantic Web", "Graph Theory", "Machine Learning",
    "Operating Systems", "Networks", "Information Retrieval",
    "Query Processing", "Data Integration", "Knowledge Representation",
]

# Per-department entity proportions (faculty : grads : undergrads :
# courses : publications per faculty), loosely LUBM's own ratios.
_FACULTY_PER_DEPT = 6
_GRADS_PER_DEPT = 8
_UNDERGRADS_PER_DEPT = 12
_COURSES_PER_DEPT = 8
_PUBS_PER_FACULTY = 2


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate a LUBM-shaped graph of roughly ``triple_target`` triples."""
    # Seed with a string: random.Random(tuple) would go through hash(),
    # which PYTHONHASHSEED randomises across processes.
    rng = random.Random(f"lubm:{seed}:{triple_target}")
    graph = DataGraph(name="lubm")
    budget = TripleBudget(triple_target)
    minter = EntityMinter(UB)

    universities: list = []
    while not budget.exhausted:
        university = minter.mint("University")
        universities.append(university)
        budget.add(graph, university, RDF.type, UNIVERSITY)
        budget.add(graph, university, NAME,
                   Literal(f"University{len(universities) - 1}"))
        departments_here = rng.randint(2, 4)
        for _ in range(departments_here):
            if budget.exhausted:
                break
            _generate_department(graph, budget, rng, minter,
                                 university, universities)
    return graph


def _generate_department(graph: DataGraph, budget: TripleBudget,
                         rng: random.Random, minter: EntityMinter,
                         university, universities) -> None:
    department = minter.mint("Department")
    budget.add(graph, department, RDF.type, DEPARTMENT)
    budget.add(graph, department, SUB_ORGANIZATION_OF, university)

    group = minter.mint("ResearchGroup")
    budget.add(graph, group, RDF.type, RESEARCH_GROUP)
    budget.add(graph, group, SUB_ORGANIZATION_OF, department)

    faculty = []
    for position in range(_FACULTY_PER_DEPT):
        if budget.exhausted:
            return
        member = minter.mint("Faculty")
        faculty.append(member)
        faculty_type = _FACULTY_TYPES[position % len(_FACULTY_TYPES)]
        budget.add(graph, member, RDF.type, faculty_type)
        budget.add(graph, member, WORKS_FOR, department)
        budget.add(graph, member, NAME, person_name(rng, position))
        budget.add(graph, member, EMAIL,
                   Literal(f"{member.local_name.lower()}@example.edu"))
        budget.add(graph, member, RESEARCH_INTEREST,
                   Literal(pick(rng, _RESEARCH_AREAS)))
        budget.add(graph, member, DOCTORAL_DEGREE_FROM,
                   pick(rng, universities))
        if position == 0:
            budget.add(graph, member, HEAD_OF, department)

    courses = []
    for number in range(_COURSES_PER_DEPT):
        if budget.exhausted:
            return
        kind = GRADUATE_COURSE if number % 2 else COURSE
        course = minter.mint("Course")
        courses.append(course)
        budget.add(graph, course, RDF.type, kind)
        budget.add(graph, course, NAME,
                   Literal(f"Course{minter.counters['Course'] - 1}"))
        if faculty:
            budget.add(graph, pick(rng, faculty), TEACHER_OF, course)

    for _ in range(_GRADS_PER_DEPT):
        if budget.exhausted:
            return
        student = minter.mint("GraduateStudent")
        budget.add(graph, student, RDF.type, GRADUATE_STUDENT)
        budget.add(graph, student, MEMBER_OF, department)
        budget.add(graph, student, NAME,
                   person_name(rng, minter.counters["GraduateStudent"]))
        budget.add(graph, student, UNDERGRAD_DEGREE_FROM,
                   pick(rng, universities))
        if faculty:
            budget.add(graph, student, ADVISOR, pick(rng, faculty))
        for course in rng.sample(courses, k=min(2, len(courses))):
            budget.add(graph, student, TAKES_COURSE, course)

    for _ in range(_UNDERGRADS_PER_DEPT):
        if budget.exhausted:
            return
        student = minter.mint("UndergraduateStudent")
        budget.add(graph, student, RDF.type, UNDERGRADUATE_STUDENT)
        budget.add(graph, student, MEMBER_OF, department)
        for course in rng.sample(courses, k=min(3, len(courses))):
            budget.add(graph, student, TAKES_COURSE, course)

    for member in faculty:
        for _ in range(_PUBS_PER_FACULTY):
            if budget.exhausted:
                return
            publication = minter.mint("Publication")
            budget.add(graph, publication, RDF.type, PUBLICATION)
            budget.add(graph, publication, PUBLICATION_AUTHOR, member)
            budget.add(graph, publication, NAME,
                       Literal(f"Publication{minter.counters['Publication'] - 1}"))
