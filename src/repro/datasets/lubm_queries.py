"""The 12 benchmark queries of §6.2, over the LUBM vocabulary.

The paper formulates "12 queries in SPARQL of different complexities
(i.e. number of nodes, edges and variables)" per dataset and publishes
the LUBM results; the complexity ranges are visible in Fig. 7 (queries
of 3–23 nodes and 1–7 variables).  These queries span exactly those
ranges, from a 3-node 1-variable lookup (Q1) to a 23-node 7-variable
pattern (Q12).  Several (Q7, Q10, Q12) intentionally reference labels
or structures with no exact occurrence in the generated data, so the
approximate systems have relaxation work to do — the situation Fig. 8
and Fig. 9 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..rdf.graph import QueryGraph
from ..rdf.sparql import parse_select

_PREFIXES = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
"""


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query: id, SPARQL text, and what it asks."""

    qid: str
    sparql: str
    description: str

    @cached_property
    def graph(self) -> QueryGraph:
        return parse_select(self.sparql).graph(name=self.qid)

    @property
    def node_count(self) -> int:
        return self.graph.node_count()

    @property
    def edge_count(self) -> int:
        return self.graph.edge_count()

    @property
    def variable_count(self) -> int:
        return len(self.graph.variables())

    def __str__(self):
        return (f"{self.qid}: |N|={self.node_count} |E|={self.edge_count} "
                f"vars={self.variable_count} — {self.description}")


def lubm_queries() -> list[QuerySpec]:
    """Q1–Q12 in increasing structural complexity."""
    specs = [
        QuerySpec("Q1", _PREFIXES + """
            SELECT ?x WHERE {
                ?x rdf:type ub:FullProfessor .
                ?x ub:researchInterest "Databases" .
            }""", "full professors interested in databases"),

        QuerySpec("Q2", _PREFIXES + """
            SELECT ?s WHERE {
                ?s rdf:type ub:GraduateStudent .
                ?s ub:undergraduateDegreeFrom ub:University0 .
                ?s ub:memberOf ub:Department0 .
            }""", "graduate students of Department0 with a University0 degree"),

        QuerySpec("Q3", _PREFIXES + """
            SELECT ?s ?p WHERE {
                ?s rdf:type ub:GraduateStudent .
                ?s ub:advisor ?p .
                ?p rdf:type ub:FullProfessor .
                ?p ub:worksFor ub:Department1 .
            }""", "students advised by full professors of Department1"),

        QuerySpec("Q4", _PREFIXES + """
            SELECT ?x ?c WHERE {
                ?x rdf:type ub:AssociateProfessor .
                ?x ub:teacherOf ?c .
                ?c rdf:type ub:GraduateCourse .
                ?x ub:worksFor ub:Department0 .
                ?x ub:researchInterest "Semantic Web" .
            }""", "associate professors of Department0 teaching a graduate "
                  "course, interested in the semantic web"),

        QuerySpec("Q5", _PREFIXES + """
            SELECT ?s ?p ?c WHERE {
                ?s rdf:type ub:GraduateStudent .
                ?s ub:advisor ?p .
                ?s ub:takesCourse ?c .
                ?p ub:teacherOf ?c .
                ?p rdf:type ub:FullProfessor .
                ?c rdf:type ub:GraduateCourse .
                ?s ub:memberOf ub:Department0 .
            }""", "the classic LUBM triangle: student taking the course "
                  "their own advisor teaches"),

        QuerySpec("Q6", _PREFIXES + """
            SELECT ?pub ?a ?d WHERE {
                ?pub rdf:type ub:Publication .
                ?pub ub:publicationAuthor ?a .
                ?a rdf:type ub:FullProfessor .
                ?a ub:researchInterest "Databases" .
                ?a ub:worksFor ?d .
                ?d rdf:type ub:Department .
                ?d ub:subOrganizationOf ub:University0 .
            }""", "publications of database professors at University0"),

        QuerySpec("Q7", _PREFIXES + """
            SELECT ?s ?p ?c ?d WHERE {
                ?s rdf:type ub:GraduateStudent .
                ?s ub:advisor ?p .
                ?s ub:takesCourse ?c .
                ?p ub:teacherOf ?c .
                ?p rdf:type ub:Lecturer .
                ?p ub:researchInterest "Graph Theory" .
                ?s ub:memberOf ?d .
                ?d rdf:type ub:Department .
                ?d ub:subOrganizationOf ub:University1 .
            }""", "the Q5 triangle anchored on a lecturer (approximate: "
                  "lecturers rarely both advise and teach the same student)"),

        QuerySpec("Q8", _PREFIXES + """
            SELECT ?a ?b ?pub ?d WHERE {
                ?pub rdf:type ub:Publication .
                ?pub ub:publicationAuthor ?a .
                ?pub ub:publicationAuthor ?b .
                ?a rdf:type ub:FullProfessor .
                ?b rdf:type ub:AssistantProfessor .
                ?a ub:worksFor ?d .
                ?b ub:worksFor ?d .
                ?d rdf:type ub:Department .
                ?d ub:subOrganizationOf ub:University0 .
                ?a ub:researchInterest "Machine Learning" .
            }""", "co-authored publications across ranks in one department "
                  "(approximate: generated publications are single-author)"),

        QuerySpec("Q9", _PREFIXES + """
            SELECT ?s ?c1 ?c2 ?p1 ?p2 WHERE {
                ?s rdf:type ub:UndergraduateStudent .
                ?s ub:takesCourse ?c1 .
                ?s ub:takesCourse ?c2 .
                ?p1 ub:teacherOf ?c1 .
                ?p2 ub:teacherOf ?c2 .
                ?p1 rdf:type ub:FullProfessor .
                ?p2 rdf:type ub:AssociateProfessor .
                ?p1 ub:worksFor ub:Department0 .
                ?p2 ub:worksFor ub:Department0 .
                ?s ub:memberOf ub:Department0 .
            }""", "an undergraduate taking courses from two ranks of "
                  "professor in the same department"),

        QuerySpec("Q10", _PREFIXES + """
            SELECT ?s ?p ?c ?d ?u WHERE {
                ?s rdf:type ub:GraduateStudent .
                ?s ub:advisor ?p .
                ?s ub:takesCourse ?c .
                ?p ub:teacherOf ?c .
                ?p rdf:type ub:FullProfessor .
                ?p ub:researchInterest "Query Processing" .
                ?p ub:doctoralDegreeFrom ?u .
                ?s ub:undergraduateDegreeFrom ?u .
                ?u rdf:type ub:University .
                ?s ub:memberOf ?d .
                ?p ub:worksFor ?d .
                ?d rdf:type ub:Department .
            }""", "advisor and student sharing an alma mater (approximate: "
                  "degree sources are independent in the data)"),

        QuerySpec("Q11", _PREFIXES + """
            SELECT ?pub1 ?pub2 ?a ?s ?c ?d WHERE {
                ?pub1 rdf:type ub:Publication .
                ?pub2 rdf:type ub:Publication .
                ?pub1 ub:publicationAuthor ?a .
                ?pub2 ub:publicationAuthor ?a .
                ?a rdf:type ub:FullProfessor .
                ?a ub:teacherOf ?c .
                ?c rdf:type ub:GraduateCourse .
                ?s ub:takesCourse ?c .
                ?s rdf:type ub:GraduateStudent .
                ?s ub:advisor ?a .
                ?a ub:worksFor ?d .
                ?s ub:memberOf ?d .
                ?d rdf:type ub:Department .
                ?d ub:subOrganizationOf ub:University0 .
                ?a ub:researchInterest "Databases" .
            }""", "a prolific database professor with their advisee and "
                  "course, all within University0"),

        QuerySpec("Q12", _PREFIXES + """
            SELECT ?s1 ?s2 ?p ?c1 ?c2 ?d ?u WHERE {
                ?s1 rdf:type ub:GraduateStudent .
                ?s2 rdf:type ub:GraduateStudent .
                ?s1 ub:advisor ?p .
                ?s2 ub:advisor ?p .
                ?p rdf:type ub:FullProfessor .
                ?p ub:teacherOf ?c1 .
                ?p ub:teacherOf ?c2 .
                ?s1 ub:takesCourse ?c1 .
                ?s2 ub:takesCourse ?c2 .
                ?c1 rdf:type ub:GraduateCourse .
                ?c2 rdf:type ub:GraduateCourse .
                ?s1 ub:memberOf ?d .
                ?s2 ub:memberOf ?d .
                ?p ub:worksFor ?d .
                ?d rdf:type ub:Department .
                ?d ub:subOrganizationOf ?u .
                ?u rdf:type ub:University .
                ?p ub:researchInterest "Information Retrieval" .
                ?p ub:emailAddress "faculty0@example.edu" .
            }""", "two advisees of one IR professor, each taking one of the "
                  "professor's graduate courses (largest pattern)"),
    ]
    return specs


def query_by_id(qid: str) -> QuerySpec:
    """Look up one of Q1–Q12 by its id."""
    for spec in lubm_queries():
        if spec.qid == qid:
            return spec
    raise KeyError(f"unknown query id {qid!r}")
