"""A political-blogs (PBlog) shaped generator.

The PBlog network (Adamic & Glance's political blogosphere) is a
directed graph of blogs linking to each other, each leaning liberal or
conservative.  Structurally it is the odd one out in Table 1: heavily
*cyclic* with reciprocal links and a hub-dominated degree distribution
— which is exactly the case that exercises the §3.2 hub-promotion rule
(a strongly connected blogosphere has no sources).  The generator uses
preferential attachment for the link structure and adds the leaning
and label attributes the dataset carries.
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace, RDF
from ..rdf.terms import Literal
from .base import TripleBudget

PB = Namespace("http://example.org/pblog/")

BLOG = PB.Blog
LINKS_TO = PB.linksTo
LEANING = PB.leaning
LABEL = PB.label

_LEANINGS = [Literal("liberal"), Literal("conservative")]


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate a PBlog-shaped graph of roughly ``triple_target`` triples."""
    rng = random.Random(f"pblog:{seed}:{triple_target}")
    graph = DataGraph(name="pblog")
    budget = TripleBudget(triple_target)

    # Roughly 1/4 of the budget mints blogs (type + leaning + label
    # cost 3 triples each), the rest links them.
    blog_count = max(4, triple_target // 8)
    blogs = []
    for index in range(blog_count):
        if budget.remaining < 4:
            break
        blog = PB[f"Blog{index}"]
        blogs.append(blog)
        budget.add(graph, blog, RDF.type, BLOG)
        budget.add(graph, blog, LEANING, _LEANINGS[index % 2])
        budget.add(graph, blog, LABEL, Literal(f"blog{index}.example.org"))

    if len(blogs) < 2:
        return graph

    # Preferential attachment: each new link's target is drawn from a
    # pool where past targets repeat, yielding the hub-heavy in-degree
    # distribution of the real blogosphere.  Reciprocal links (common
    # within a leaning) close cycles.
    attachment_pool = list(blogs[:2])
    while not budget.exhausted:
        source = blogs[rng.randrange(len(blogs))]
        target = attachment_pool[rng.randrange(len(attachment_pool))]
        if source == target:
            continue
        budget.add(graph, source, LINKS_TO, target)
        attachment_pool.append(target)
        if rng.random() < 0.3 and not budget.exhausted:
            budget.add(graph, target, LINKS_TO, source)
            attachment_pool.append(source)
    return graph
