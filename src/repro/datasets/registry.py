"""The dataset registry: Table 1's eight datasets with scaled defaults.

Default sizes preserve the paper's ordering (PBlog smallest … DBLP
largest) at laptop scale; pass an explicit ``triple_target`` to
:meth:`DatasetSpec.build` for other sizes.
"""

from __future__ import annotations

from . import berlin, dblp, govtrack, imdb, kegg, lubm, pblog, uobm
from .base import DatasetSpec

#: Table 1 rows in the paper's order.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        DatasetSpec("pblog", pblog.generate, 1_000, "50K",
                    "political blogosphere (cyclic, hub-heavy)"),
        DatasetSpec("gov", govtrack.generate, 3_000, "1M",
                    "US Congress bills, amendments, sponsors"),
        DatasetSpec("kegg", kegg.generate, 4_000, "1M",
                    "biochemical pathways (deep chains)"),
        DatasetSpec("berlin", berlin.generate, 5_000, "1M",
                    "BSBM e-commerce (products, offers, reviews)"),
        DatasetSpec("imdb", imdb.generate, 8_000, "6M",
                    "linked movie database"),
        DatasetSpec("lubm", lubm.generate, 12_000, "12M",
                    "university benchmark (the Fig. 6-9 workload)"),
        DatasetSpec("uobm", uobm.generate, 12_000, "12M",
                    "LUBM with inter-university cross links"),
        DatasetSpec("dblp", dblp.generate, 20_000, "26M",
                    "bibliography with citations"),
    ]
}


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by its Table 1 name (case-insensitive)."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"known: {', '.join(DATASETS)}")
    return DATASETS[key]


def all_datasets() -> list[DatasetSpec]:
    """The eight Table 1 datasets, in the paper's row order."""
    return list(DATASETS.values())
