"""A UOBM-shaped generator (the University Ontology Benchmark).

UOBM extends LUBM with *inter-university* links — students with degrees
from several universities, faculty who are alumni elsewhere, and
cross-department friendships — precisely to break LUBM's neat
tree-per-university structure.  The generator reuses the LUBM
vocabulary and adds those denser cross links, so its graphs have the
same scale as LUBM (Table 1 lists both at 12M) but more intertwined
paths.
"""

from __future__ import annotations

import random

from ..rdf.graph import DataGraph
from ..rdf.namespaces import Namespace, UB
from ..rdf.terms import URI
from . import lubm
from .base import TripleBudget, pick

UOBM = Namespace("http://semantics.crl.ibm.com/univ-bench-dl.owl#")

IS_FRIEND_OF = UOBM.isFriendOf
HAS_ALUMNUS = UOBM.hasAlumnus
LIKES_COURSE = UOBM.like

# Share of the budget reserved for the UOBM-specific cross links.
_CROSS_LINK_SHARE = 0.25


def generate(triple_target: int, seed: int = 0) -> DataGraph:
    """Generate a UOBM-shaped graph of roughly ``triple_target`` triples."""
    rng = random.Random(f"uobm:{seed}:{triple_target}")
    cross_budget_size = max(1, int(triple_target * _CROSS_LINK_SHARE))
    graph = lubm.generate(triple_target - cross_budget_size, seed=seed)
    graph.name = "uobm"
    budget = TripleBudget(cross_budget_size)

    people = _nodes_of_kind(graph, ("Faculty", "GraduateStudent",
                                    "UndergraduateStudent"))
    universities = _nodes_of_kind(graph, ("University",))
    courses = _nodes_of_kind(graph, ("Course",))

    if len(people) >= 2:
        while not budget.exhausted:
            person = pick(rng, people)
            roll = rng.random()
            if roll < 0.5:
                friend = pick(rng, people)
                if friend != person:
                    budget.add(graph, person, IS_FRIEND_OF, friend)
            elif roll < 0.8 and universities:
                budget.add(graph, pick(rng, universities),
                           HAS_ALUMNUS, person)
            elif courses:
                budget.add(graph, person, LIKES_COURSE, pick(rng, courses))
            else:
                break
    return graph


def _nodes_of_kind(graph: DataGraph, prefixes: tuple[str, ...]) -> list[URI]:
    """LUBM entity URIs whose local name starts with one of ``prefixes``."""
    found = []
    for label in graph.node_labels():
        if isinstance(label, URI) and label.value.startswith(UB.prefix):
            local = label.local_name
            if local.startswith(prefixes) and local[-1].isdigit():
                found.append(label)
    return sorted(found)
