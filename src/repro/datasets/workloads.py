"""Query workloads for the non-LUBM datasets.

§6.2: "for each indexed dataset we formulated 12 queries in SPARQL of
different complexities."  The paper publishes only the LUBM results
(:mod:`repro.datasets.lubm_queries` carries that full set of 12);
this module provides graded workloads for the other generators so the
cross-dataset claims — notably §6.3's "in any dataset, for all 12
queries we obtained RR=1" — can be exercised too.  Each workload walks
its dataset's own schema from simple lookups to multi-path patterns,
and includes at least one query with no exact answer.
"""

from __future__ import annotations

from .lubm_queries import QuerySpec, lubm_queries

_GOV = """
PREFIX gov: <http://example.org/govtrack/>
"""

_GOV_QUERIES = [
    QuerySpec("GOV-1", _GOV + """
        SELECT ?b WHERE {
            ?b gov:subject "Health Care" .
        }""", "bills about health care"),
    QuerySpec("GOV-2", _GOV + """
        SELECT ?p ?b WHERE {
            ?p gov:sponsor ?b .
            ?b gov:subject "Education" .
        }""", "sponsors of education bills"),
    QuerySpec("GOV-3", _GOV + """
        SELECT ?p ?a ?b WHERE {
            ?p gov:sponsor ?a .
            ?a gov:aTo ?b .
            ?b gov:subject "Defense" .
            ?p gov:gender "Female" .
        }""", "women amending defense bills"),
    QuerySpec("GOV-4", _GOV + """
        SELECT ?p1 ?p2 ?b WHERE {
            ?p1 gov:sponsor ?b .
            ?p2 gov:sponsor ?a .
            ?a gov:aTo ?b .
            ?b gov:subject "Energy" .
            ?p1 gov:gender "Male" .
            ?p2 gov:gender "Female" .
        }""", "cross-gender bill/amendment pairs on energy"),
    QuerySpec("GOV-5", _GOV + """
        SELECT ?p ?b WHERE {
            ?p gov:sponsor ?b .
            ?b gov:subject "Space Exploration" .
        }""", "no exact answer: the subject never occurs"),
]

_IMDB = """
PREFIX m: <http://data.linkedmdb.org/resource/movie/>
"""

_IMDB_QUERIES = [
    QuerySpec("IMDB-1", _IMDB + """
        SELECT ?f WHERE {
            ?f m:genre "Drama" .
        }""", "drama films"),
    QuerySpec("IMDB-2", _IMDB + """
        SELECT ?f ?d WHERE {
            ?f m:director ?d .
            ?f m:genre "Comedy" .
        }""", "comedy directors"),
    QuerySpec("IMDB-3", _IMDB + """
        SELECT ?f ?a ?d WHERE {
            ?f m:actor ?a .
            ?f m:director ?d .
            ?f m:genre "Thriller" .
        }""", "thriller casts and directors"),
    QuerySpec("IMDB-4", _IMDB + """
        SELECT ?f1 ?f2 ?a WHERE {
            ?f1 m:actor ?a .
            ?f2 m:actor ?a .
            ?f1 m:genre "Drama" .
            ?f2 m:genre "Horror" .
        }""", "actors bridging drama and horror"),
    QuerySpec("IMDB-5", _IMDB + """
        SELECT ?f WHERE {
            ?f m:genre "Western" .
        }""", "no exact answer: the generator mints no westerns"),
]

_DBLP = """
PREFIX d: <http://dblp.l3s.de/d2r/resource/>
"""

_DBLP_QUERIES = [
    QuerySpec("DBLP-1", _DBLP + """
        SELECT ?p WHERE {
            ?p d:venue "EDBT" .
        }""", "EDBT papers"),
    QuerySpec("DBLP-2", _DBLP + """
        SELECT ?p ?a WHERE {
            ?p d:creator ?a .
            ?p d:venue "VLDB" .
        }""", "VLDB authors"),
    QuerySpec("DBLP-3", _DBLP + """
        SELECT ?p1 ?p2 WHERE {
            ?p1 d:cites ?p2 .
            ?p1 d:venue "SIGMOD" .
            ?p2 d:venue "VLDB" .
        }""", "SIGMOD papers citing VLDB papers"),
    QuerySpec("DBLP-4", _DBLP + """
        SELECT ?a ?p1 ?p2 WHERE {
            ?p1 d:creator ?a .
            ?p2 d:creator ?a .
            ?p1 d:venue "EDBT" .
            ?p2 d:venue "ICDE" .
        }""", "authors publishing at both EDBT and ICDE"),
    QuerySpec("DBLP-5", _DBLP + """
        SELECT ?p ?a WHERE {
            ?p d:creator ?a .
            ?p d:venue "Nature" .
        }""", "no exact answer: venue outside the generator's list"),
]

_BSBM = """
PREFIX b: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
"""

_BERLIN_QUERIES = [
    QuerySpec("BSBM-1", _BSBM + """
        SELECT ?p WHERE {
            ?p b:productType "Laptop" .
        }""", "laptops"),
    QuerySpec("BSBM-2", _BSBM + """
        SELECT ?o ?p WHERE {
            ?o b:product ?p .
            ?p b:productType "Camera" .
        }""", "camera offers"),
    QuerySpec("BSBM-3", _BSBM + """
        SELECT ?r ?p ?who WHERE {
            ?r b:reviewFor ?p .
            ?r b:reviewer ?who .
            ?p b:productType "Phone" .
        }""", "phone reviews and their reviewers"),
    QuerySpec("BSBM-4", _BSBM + """
        SELECT ?p ?o ?r WHERE {
            ?o b:product ?p .
            ?r b:reviewFor ?p .
            ?p b:productFeature "Waterproof" .
            ?r b:rating "5" .
        }""", "five-star waterproof products that are on offer"),
    QuerySpec("BSBM-5", _BSBM + """
        SELECT ?p WHERE {
            ?p b:productType "Submarine" .
        }""", "no exact answer: type outside the catalogue"),
]

_KEGG = """
PREFIX k: <http://bio2rdf.org/kegg/>
"""

_KEGG_QUERIES = [
    QuerySpec("KEGG-1", _KEGG + """
        SELECT ?r WHERE {
            ?r k:partOfPathway ?w .
            ?w k:name "Glycolysis" .
        }""", "glycolysis reactions"),
    QuerySpec("KEGG-2", _KEGG + """
        SELECT ?g ?e WHERE {
            ?g k:encodes ?e .
            ?e k:catalyzes ?r .
            ?r k:partOfPathway ?w .
            ?w k:name "Purine metabolism" .
        }""", "genes behind purine metabolism"),
    QuerySpec("KEGG-3", _KEGG + """
        SELECT ?r ?c WHERE {
            ?r k:substrate ?c .
            ?r k:product ?c .
        }""", "reactions where substrate equals product"),
    QuerySpec("KEGG-4", _KEGG + """
        SELECT ?e ?r1 ?r2 WHERE {
            ?e k:catalyzes ?r1 .
            ?e k:catalyzes ?r2 .
            ?r1 k:partOfPathway ?w1 .
            ?r2 k:partOfPathway ?w2 .
            ?w1 k:name "Glycolysis" .
            ?w2 k:name "Citrate cycle" .
        }""", "enzymes bridging glycolysis and the citrate cycle"),
    QuerySpec("KEGG-5", _KEGG + """
        SELECT ?r ?w WHERE {
            ?r k:partOfPathway ?w .
            ?w k:name "Photosynthesis" .
        }""", "no exact answer: pathway outside the generator's list"),
]

_WORKLOADS: dict[str, list[QuerySpec]] = {
    "gov": _GOV_QUERIES,
    "imdb": _IMDB_QUERIES,
    "dblp": _DBLP_QUERIES,
    "berlin": _BERLIN_QUERIES,
    "kegg": _KEGG_QUERIES,
}


def workload(dataset_name: str) -> list[QuerySpec]:
    """The query workload for a dataset (LUBM gets the full 12)."""
    name = dataset_name.lower()
    if name == "lubm":
        return lubm_queries()
    if name in _WORKLOADS:
        return list(_WORKLOADS[name])
    raise KeyError(f"no workload defined for {dataset_name!r}; "
                   f"known: lubm, {', '.join(sorted(_WORKLOADS))}")


def workload_datasets() -> list[str]:
    """Datasets that ship a query workload."""
    return ["lubm"] + sorted(_WORKLOADS)
