"""The Sama query engine (§5): preprocess → cluster → top-k search.

:class:`SamaEngine` is the facade; the pipeline stages are public so
experiments can instrument them individually.
"""

from ..resilience.budget import (Budget, DegradationCause, DegradationReason,
                                 PartialResult)
from .answers import Answer
from .clustering import Cluster, ClusterEntry, build_clusters, missing_path_penalty
from .forest import ForestEdge, PathForest
from .naive import naive_top_k
from .results import ResultRow, ResultSet, result_set
from .preprocess import (EmptyQueryError, PreparedQuery,
                         first_constant_from_sink, prepare_query,
                         validate_query_graph)
from .sama import EngineConfig, SamaEngine
from .search import SearchConfig, SearchResult, top_k

__all__ = [
    "Answer", "Budget", "Cluster", "ClusterEntry", "DegradationCause",
    "DegradationReason", "EmptyQueryError", "EngineConfig",
    "ForestEdge", "PartialResult", "PathForest", "PreparedQuery", "ResultRow",
    "ResultSet", "SamaEngine",
    "SearchConfig", "SearchResult", "build_clusters",
    "first_constant_from_sink", "missing_path_penalty", "naive_top_k",
    "prepare_query", "result_set", "top_k", "validate_query_graph",
]
