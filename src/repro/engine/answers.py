"""Answers: scored combinations of data paths (Definition 3 made concrete).

An :class:`Answer` holds one cluster entry per query path (or ``None``
where no candidate covered a query path), the Λ / Ψ breakdown of its
score, and enough structure to materialise the answer subgraph ``G'``
and the variable bindings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..paths.model import Path
from ..paths.substitution import BindingConflict, Substitution
from ..rdf.graph import DataGraph
from .clustering import ClusterEntry


@dataclass(frozen=True)
class Answer:
    """One ranked answer of the top-k search."""

    entries: tuple["ClusterEntry | None", ...]
    query_paths: tuple[Path, ...]
    quality: float         # Λ(a, Q)
    conformity: float      # Ψ(a, Q)
    #: IG pairs whose data paths share no node (ties broken on this;
    #: see repro.engine.search._ConformityOracle.evaluate).
    broken_pairs: int = 0

    @property
    def score(self) -> float:
        """score(a, Q) = Λ + Ψ; lower is more relevant."""
        return self.quality + self.conformity

    @property
    def matched_count(self) -> int:
        """How many query paths found a data path."""
        return sum(1 for entry in self.entries if entry is not None)

    @property
    def is_complete(self) -> bool:
        """True when every query path is covered."""
        return self.matched_count == len(self.entries)

    @property
    def is_exact(self) -> bool:
        """True for exact answers: every alignment a pure substitution
        and perfectly conforming combination (Ψ at its floor)."""
        return (self.is_complete
                and all(entry.alignment.is_exact for entry in self.entries))

    def paths(self) -> list[Path]:
        """The data paths of the answer (covered query paths only)."""
        return [entry.path for entry in self.entries if entry is not None]

    def offsets(self) -> tuple["int | None", ...]:
        """Index offsets of the chosen paths (``None`` = uncovered)."""
        return tuple(entry.offset if entry is not None else None
                     for entry in self.entries)

    def signature(self) -> frozenset:
        """A dedup key: the set of label triples the answer covers."""
        triples = set()
        for path in self.paths():
            triples.update(path.triples())
        return frozenset(triples)

    def subgraph(self) -> DataGraph:
        """Materialise the answer as a data graph ``G' ⊆ G``.

        Nodes are merged by their original graph identifiers when the
        paths carry them (paths extracted from a data graph always do),
        so shared nodes like the paper's ``B1432`` appear once.
        """
        graph = DataGraph(name="answer")
        id_map: dict[int, int] = {}
        anonymous = 0
        for path in self.paths():
            previous = None
            for position, label in enumerate(path.nodes):
                if path.node_ids is not None:
                    original = path.node_ids[position]
                    node = id_map.get(original)
                    if node is None:
                        node = graph.add_node(label)
                        id_map[original] = node
                else:
                    node = graph.add_node(label)
                    anonymous += 1
                if previous is not None:
                    graph.add_edge(previous, path.edges[position - 1], node)
                previous = node
        return graph

    def substitution(self, strict: bool = False) -> "Substitution | None":
        """The merged variable bindings across all aligned paths.

        Different paths may bind a shared variable to different
        constants (the combination is then *incoherent*; the paper
        penalises it through conformity rather than rejecting it).
        With ``strict=False`` the first binding wins and the answer
        still reports a substitution; with ``strict=True`` an
        incoherent combination yields ``None``.
        """
        merged = Substitution()
        for entry in self.entries:
            if entry is None:
                continue
            try:
                merged = merged.merge(entry.alignment.substitution)
            except BindingConflict:
                if strict:
                    return None
                for variable, value in entry.alignment.substitution.items():
                    if variable not in merged:
                        merged = merged.bind(variable, value)
        return merged

    @property
    def is_coherent(self) -> bool:
        """True when all paths agree on every shared variable."""
        return self.substitution(strict=True) is not None

    def describe(self) -> str:
        """Multi-line summary for examples and debugging."""
        lines = [f"answer score={self.score:.3f} "
                 f"(Λ={self.quality:.3f}, Ψ={self.conformity:.3f})"]
        for query_path, entry in zip(self.query_paths, self.entries):
            if entry is None:
                lines.append(f"  {query_path}  ->  (uncovered)")
            else:
                lines.append(f"  {query_path}  ->  {entry.path} "
                             f"[λ={entry.score:g}]")
        bindings = self.substitution()
        if bindings:
            lines.append(f"  bindings: {bindings}")
        return "\n".join(lines)

    def __str__(self):
        return self.describe()
