"""Clustering (§5, step 2): one ranked cluster of data paths per query path.

For every query path ``q`` the engine retrieves candidate data paths
from the index — by sink when ``q`` ends in a constant, otherwise by
the first constant found scanning backwards from the sink — evaluates
the alignment of each candidate, and keeps the cluster ordered by λ
score, best (lowest) first.  A data path may appear in several clusters
with different scores (``p1`` scores 0 in ``cl1`` and 1.5 in ``cl2`` in
the paper's Fig. 3), which is exactly what happens here.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass
from functools import partial

from ..index.pathindex import PathIndex
from ..parallel import chunked
from ..paths.alignment import Alignment, LabelMatcher, align, exact_match
from ..paths.model import Path
from ..quotient.resolve import DROPPED
from ..resilience.budget import Budget, DegradationCause
from ..resilience.errors import IndexCorruptError, StorageError
from ..scoring.quality import lambda_cost
from ..scoring.weights import PAPER_WEIGHTS, ScoringWeights
from .preprocess import PreparedQuery

#: Exception types treated as "this shard failed" rather than "this
#: query failed" when they escape a per-shard task or a per-candidate
#: decode over a sharded index.  Everything the storage stack raises
#: deliberately (ShardUnavailableError, TransientStorageError after
#: retries, checksum failures) plus raw OS-level trouble.
_SHARD_FAULTS = (StorageError, IndexCorruptError, OSError)

#: Extra seconds granted beyond the budget's remaining deadline before
#: a dispatched shard task is declared overrun and its partial dropped.
#: Not a tuning knob for straggler latency (that is ``hedge_ms``) —
#: just the slack that separates "cooperatively degraded inside the
#: task" from "the task itself is wedged".
_SHARD_DEADLINE_GRACE_S = 0.25

#: Candidates charged to the budget per call (granularity of the
#: ``max_candidates`` cap inside one cluster).
_CHARGE_BLOCK = 64

#: Below this many candidates a cluster is aligned serially even when
#: an executor is available: dispatch overhead beats the win (measured
#: in ``benchmarks/bench_hotpath.py``).
PARALLEL_THRESHOLD = 512

#: Minimum candidates before a cluster over a sharded index
#: scatter-gathers.  Much lower than :data:`PARALLEL_THRESHOLD`:
#: scatter dispatch is one task per shard (not one per
#: :data:`_CHUNK`-slice), and the win it buys — overlapping each
#: shard's physical page reads — already pays at small clusters when
#: the buffer pool is cold (measured in
#: ``benchmarks/bench_sharding.py``).
SCATTER_THRESHOLD = 64

#: Candidates per parallel alignment chunk.
_CHUNK = 128


@dataclass(frozen=True)
class ClusterEntry:
    """One candidate data path in a cluster, with its alignment and λ.

    ``path`` may be a *prefix* of the stored path when the query path's
    sink matched mid-path (see :func:`build_clusters`); ``offset`` still
    identifies the stored path.  ``uid`` is a small integer unique
    within one clustering run — the search keys its pairwise-ψ cache on
    it (cheaper than hashing (offset, prefix-length) tuples millions of
    times).
    """

    offset: int
    path: Path
    alignment: Alignment
    score: float
    uid: int = -1

    @property
    def cache_key(self) -> tuple[int, int]:
        return (self.offset, self.path.length)

    # The search reads paths through these entry-level accessors (never
    # ``entry.path.X`` directly), so a LazyClusterEntry can answer from
    # its shipped id column without decoding the path.

    @property
    def path_length(self) -> int:
        return self.path.length

    def node_label_id_set(self) -> "frozenset[int] | None":
        return self.path.node_label_id_set()

    def node_label_set(self) -> frozenset:
        return self.path.node_label_set()

    def bucket_labels(self, interned: bool) -> list:
        """Deduplicated ``(bucket key, lexical name)`` pairs, in node
        order — what the search's inverted candidate index files this
        entry under."""
        path = self.path
        label_ids = path.label_ids if interned else None
        if label_ids is not None:
            return _id_bucket_labels(label_ids, path.nodes)
        return [(label, str(label)) for label in path.node_label_set()]

    def __str__(self):
        return f"{self.path} [{self.score:g}]"


def _id_bucket_labels(label_ids, names_source) -> list:
    """Dedup (label id, name) pairs keeping first-seen node order.

    ``names_source`` yields one printable label per id — the path's
    nodes, or interner lookups when only ids crossed the process
    boundary.  Both spell the same Term, so bucket tie-breaks agree
    across execution modes.
    """
    out = []
    seen = set()
    for label_id, node in zip(label_ids, names_source):
        if label_id not in seen:
            seen.add(label_id)
            out.append((label_id, str(node)))
    return out


class _EntryContext:
    """What a :class:`LazyClusterEntry` needs to materialize on demand.

    One per scatter-gathered cluster, shared by all of its entries:
    the index (to decode), the query path + matcher (to re-align), and
    the per-query memo (so a threads-mode entry whose alignment was
    already computed inside its shard task finds it instead of paying
    a second greedy scan).
    """

    __slots__ = ("index", "query_path", "matcher", "memo", "transcript",
                 "interner")

    def __init__(self, index, query_path, matcher, memo, transcript):
        self.index = index
        self.query_path = query_path
        self.matcher = matcher
        self.memo = memo
        self.transcript = transcript
        self.interner = getattr(index, "interner", None)


class LazyClusterEntry:
    """A cluster entry materialized from a compact scatter result.

    Scatter tasks — thread or process — ship back ``(λ, gid, prefix
    length, node label ids)`` rows, not ``Path``/``Alignment`` objects:
    the row is what ranking needs, it crosses a process boundary as a
    few machine words, and most entries of a large cluster are never
    looked at again.  The id column answers everything the top-k
    search asks in bulk — χ operands, candidate buckets, path length —
    so whole clusters are joined without touching the page store; the
    path is decoded (and the alignment recomputed) lazily only for the
    entries that become answers, explain output, or pool selections.

    Duck-types :class:`ClusterEntry`: same attributes, same
    ``cache_key``, same entry-level accessors, lazily the same
    ``path``/``alignment``.
    """

    __slots__ = ("offset", "score", "uid", "_plen", "_context", "_path",
                 "_alignment", "_node_ids", "_id_set")

    def __init__(self, context: _EntryContext, gid: int, plen: int,
                 score: float, uid: int = -1, node_ids=None):
        self.offset = gid
        self.score = score
        self.uid = uid
        self._plen = plen
        self._context = context
        self._path = None
        self._alignment = None
        self._node_ids = node_ids
        self._id_set = None

    @property
    def path(self) -> Path:
        path = self._path
        if path is None:
            path = self._context.index.path_at(self.offset)
            if path.length != self._plen:
                path = path.prefix(self._plen)
            self._path = path
        return path

    @property
    def alignment(self) -> Alignment:
        alignment = self._alignment
        if alignment is None:
            context = self._context
            key = (self.offset, self._plen, context.query_path)
            found = context.memo.get(key)
            if found is not None:
                alignment = found[0]
            else:
                alignment = align(self.path, context.query_path,
                                  context.matcher,
                                  transcript=context.transcript)
                context.memo.put(key, alignment, self.score)
            self._alignment = alignment
        return alignment

    @property
    def cache_key(self) -> tuple[int, int]:
        return (self.offset, self._plen)

    @property
    def path_length(self) -> int:
        return self._plen

    def node_label_id_set(self) -> "frozenset[int] | None":
        id_set = self._id_set
        if id_set is None:
            if self._node_ids is not None:
                id_set = frozenset(self._node_ids)
            else:
                id_set = self.path.node_label_id_set()
            self._id_set = id_set
        return id_set

    def node_label_set(self) -> frozenset:
        interner = self._context.interner
        if self._node_ids is not None and interner is not None:
            return frozenset(interner.lookup(label_id)
                             for label_id in self._node_ids)
        return self.path.node_label_set()

    def bucket_labels(self, interned: bool) -> list:
        interner = self._context.interner
        if interned and self._node_ids is not None and interner is not None:
            return _id_bucket_labels(
                self._node_ids,
                (interner.lookup(label_id) for label_id in self._node_ids))
        path = self.path
        label_ids = path.label_ids if interned else None
        if label_ids is not None:
            return _id_bucket_labels(label_ids, path.nodes)
        return [(label, str(label)) for label in path.node_label_set()]

    def __str__(self):
        return f"{self.path} [{self.score:g}]"


@dataclass
class Cluster:
    """All candidates for one query path, sorted best-first by λ.

    ``missing_penalty`` is the λ charged when a combination leaves this
    query path uncovered (the cluster may be empty, or search may run
    past its end): every node and edge of the query path is priced as a
    mismatch.  The paper does not spell this case out; see DESIGN.md.
    """

    query_path: Path
    entries: list[ClusterEntry]
    missing_penalty: float

    def __len__(self):
        return len(self.entries)

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def best(self) -> "ClusterEntry | None":
        return self.entries[0] if self.entries else None

    def score_at(self, index: int) -> float:
        """λ of the ``index``-th entry, or the missing penalty past the end."""
        if index < len(self.entries):
            return self.entries[index].score
        return self.missing_penalty


def _prefix_at_anchor(path: Path, anchor, matcher: LabelMatcher) -> "Path | None":
    """The longest prefix of ``path`` ending at a node matching ``anchor``.

    Returns ``None`` when no node matches (the candidate matched the
    containment lookup through an edge label or a token; it cannot be
    sink-anchored, so it is dropped).
    """
    for position in range(path.length - 1, -1, -1):
        node = path.nodes[position]
        if node == anchor or matcher(node, anchor):
            return path.prefix(position + 1)
    return None


class AlignmentMemo:
    """Per-query alignment cache: ``(offset, prefix length, query path)``
    → ``(alignment, λ score)``.

    Thesaurus-widened retrieval routinely hands the same stored path to
    clustering more than once — identical query paths extracted from
    different parts of the query graph, anchor fallbacks re-fetching a
    containment set, the explain forest re-clustering after the engine
    already did — and each occurrence used to pay a full greedy scan.
    The memo keys on the stored-path identity (offset + prefix length,
    the same identity the uid pool uses) and the query path (by value:
    equal query paths share entries), so every distinct alignment
    problem is solved exactly once per query.

    A memo is per-query state, like a :class:`Budget`: create one per
    query (or let :func:`build_clusters` create its own) — reusing one
    across queries would be correct but unbounded.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self):
        self._table: dict[tuple, tuple[Alignment, float]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: tuple) -> "tuple[Alignment, float] | None":
        found = self._table.get(key)
        if found is not None:
            self.hits += 1
        return found

    def put(self, key: tuple, alignment: Alignment, score: float) -> None:
        self.misses += 1
        self._table[key] = (alignment, score)

    @classmethod
    def disabled(cls) -> "AlignmentMemo":
        """A memo that never caches — the pre-PR (re-align every
        occurrence) behaviour, kept for A/B benchmarking."""
        return _NullMemo()


class _NullMemo(AlignmentMemo):
    __slots__ = ()

    def get(self, key: tuple) -> None:
        return None

    def put(self, key: tuple, alignment: Alignment, score: float) -> None:
        self.misses += 1


def missing_path_penalty(query_path: Path,
                         weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """λ-equivalent cost of leaving a query path completely unmatched.

    Prices every node as a node mismatch (a) and every edge as an edge
    mismatch (c) — the cost an answer would pay if a data path existed
    but agreed on nothing.  This keeps "no path at all" comparable to,
    and never cheaper than, "a bad path".
    """
    return (weights.node_mismatch * query_path.length
            + weights.edge_mismatch * len(query_path.edges))


def build_clusters(prepared: PreparedQuery, index: PathIndex,
                   weights: ScoringWeights = PAPER_WEIGHTS,
                   matcher: LabelMatcher = exact_match,
                   semantic_lookup: bool = True,
                   max_cluster_size: "int | None" = None,
                   budget: "Budget | None" = None,
                   memo: "AlignmentMemo | None" = None,
                   executor=None,
                   parallel_threshold: int = PARALLEL_THRESHOLD,
                   scatter_threshold: int = SCATTER_THRESHOLD,
                   hedge_ms: "float | None" = None,
                   proc_pool=None,
                   transcript: bool = False,
                   sketch_filter=None,
                   quotient=None) -> list[Cluster]:
    """Build one cluster per query path of ``prepared``.

    ``semantic_lookup`` controls whether index retrieval may widen
    labels through the thesaurus; ``matcher`` is the label comparison
    used inside alignments (they are deliberately independent: lookup
    recall and alignment cost are different dials).  ``max_cluster_size``
    truncates each cluster after sorting, bounding search work at a
    possible loss of answers beyond the cut.

    ``budget`` makes candidate evaluation cooperative: every aligned
    candidate is charged (tripping ``max_candidates`` or the deadline
    stops scoring mid-cluster), and the trip is recorded on the budget
    as a degradation reason.  Clusters already built keep their
    entries; clusters not yet reached come back empty — the search
    prices them with the missing-path penalty, so a degraded query
    still yields ranked, scored answers.

    A :class:`~repro.index.sharded.ShardedIndex` runs through the same
    logic over global ids — and when an executor is available and the
    cluster holds at least ``scatter_threshold`` candidates, cluster
    retrieval *scatter-gathers*: candidates are charged against the
    budget in global order, decoded and aligned with one task per
    shard, and merged back with a deterministic k-way merge on
    ``(λ, gid)``, so rankings are bit-identical to the single-shard
    engine at any shard count (``tests/test_sharded.py``).

    ``memo`` caches scored alignments per query (one is created when
    not supplied; pass the same instance to a follow-up ``explain`` to
    share work).  ``executor`` fans a cluster's candidate alignments
    out in chunks of :data:`_CHUNK` when the cluster holds at least
    ``parallel_threshold`` of them (pass an executor explicitly or let
    the engine supply the process-wide :func:`repro.parallel.shared_executor`);
    entry order, uids, scores, and budget charging are identical to the
    serial path — charging happens up front on the calling thread, and
    chunk results are merged in submission order.  ``transcript``
    re-enables the :class:`~repro.paths.alignment.EditOp` transcript on
    entry alignments (off by default: clustering reads only counts and
    substitutions, and skipping the transcript is a large win).

    **Fault isolation** (sharded indexes only): a shard that raises a
    storage-level error, is quarantined or circuit-open on the index's
    health board, or overruns the per-shard deadline contributes an
    *empty* partial — the surviving shards' candidates still merge, and
    the loss is recorded on the budget as a ``SHARD_FAILED``
    degradation reason naming the lost shards.  ``hedge_ms`` arms
    straggler hedging on the scatter path: a shard task still running
    after that many milliseconds gets a duplicate dispatch and the
    first result wins (both compute the same ``(λ, gid)``-sorted list,
    so hedging never changes a ranking).  Over a single-directory
    :class:`PathIndex` there is no shard to blame, so storage failures
    propagate exactly as before.

    ``proc_pool`` (a :class:`~repro.parallel.ProcessShardPool`) routes
    shard tasks to per-shard worker processes — the
    ``worker_mode="procs"`` execution mode.  Workers score candidates
    in the columnar id space (``repro.index.columnar``) and ship back
    the same ``(λ, gid, prefix length, node label ids)`` rows the
    thread tasks produce, so the merge — and therefore every ranking —
    is
    bit-identical across serial, threads, and procs.  Hedge dispatches
    and shards with an armed fault injector score in-process (a
    duplicate task to a wedged worker would wait in the same queue, and
    injected faults must keep their exact chaos-harness semantics); a
    crashed or overrun worker surfaces as a per-shard storage fault on
    the usual ``SHARD_FAILED`` + breaker path.

    ``sketch_filter`` is the optional two-stage recall hook (a
    :class:`repro.sketch.twostage.TwoStageFilter`, usually wrapped by
    the engine with its span and counters): called as
    ``sketch_filter(query_path, offsets, trim_to_anchor, anchor)``
    right after candidate retrieval, it returns the surviving subset —
    still in ascending gid order — and everything downstream (budget
    charging, scatter-gather, serial scoring) sees only survivors.

    ``quotient`` is the optional class-compression hook (a
    :class:`repro.quotient.resolve.QuotientResolver`): per cluster it
    yields a refine-key context, and candidates sharing a refine key
    are aligned **once** — the representative's ``(λ, trimmed
    length)`` is copied to the other members, which enter the cluster
    as :class:`LazyClusterEntry` rows carrying their own node ids.
    Budget charging still sees every retrieved candidate (identical
    ``max_candidates`` trip points), uids are assigned in the same
    candidate order, and the ``(λ, gid)`` sort key is unchanged, so
    rankings are bit-identical to per-path scoring
    (``benchmarks/bench_quotient.py`` asserts it across shard counts ×
    worker modes × two-stage modes).
    """
    clusters = []
    next_uid = 0
    tripped = False
    if memo is None:
        memo = AlignmentMemo()
    sharded = getattr(index, "is_sharded", False)
    health = getattr(index, "health", None) if sharded else None
    # Shards found dead during *this query* (shard -> first error).
    # Checked before every decode so one dead shard costs one failure,
    # not one per candidate; noted once on the budget at the end.
    # Quarantined shards are lost before the query even starts — their
    # candidates cannot be served, so the result must say SHARD_FAILED
    # even though no lookup will ever touch them.
    dead_shards: dict[int, str] = {}
    if health is not None:
        for shard_no, reason in health.quarantined_shards():
            dead_shards[shard_no] = reason or "quarantined"
    # Prefix-trimmed candidates of the same stored path must share a
    # uid only when the prefix matches; key the uid pool accordingly.
    uid_pool: dict[tuple[int, int], int] = {}
    for position, query_path in enumerate(prepared.paths):
        if tripped or (budget is not None and budget.poll("cluster")):
            # Budget gone: emit the remaining clusters empty.
            clusters.append(Cluster(
                query_path=query_path, entries=[],
                missing_penalty=missing_path_penalty(query_path, weights)))
            tripped = True
            continue
        candidates = prepared.anchor_lists[position]
        trim_to_anchor = False
        anchor = None
        offsets: list[int] = []
        if not candidates:
            # Fully-variable query path: every indexed path is a candidate.
            offsets = index.all_offsets()
        else:
            # Walk the anchor fallbacks: sink first (by sink lookup,
            # then containment with trimming — the sink may be a
            # mid-graph entity like a department), then earlier
            # constants by containment (a constant that occurs nowhere
            # in the data anchors through the next one — that query
            # still deserves approximate answers).
            for position_in_list, anchor in enumerate(candidates):
                if position_in_list == 0 and anchor == query_path.sink:
                    offsets = index.offsets_with_sink(
                        anchor, semantic=semantic_lookup)
                    if offsets:
                        break
                    offsets = index.offsets_containing(
                        anchor, semantic=semantic_lookup)
                    if offsets:
                        # Alignment is sink-anchored (§4.3): cut the
                        # candidate at the matched anchor.
                        trim_to_anchor = True
                        break
                else:
                    offsets = index.offsets_containing(
                        anchor, semantic=semantic_lookup)
                    if offsets:
                        break
        # Two-stage recall: judge every retrieved candidate against its
        # sketch row before any budget is charged or any path decoded.
        if sketch_filter is not None and offsets:
            offsets = sketch_filter(query_path, offsets, trim_to_anchor,
                                    anchor)
        # Quotient compression: one refine-key context per cluster (the
        # key depends on the query path's constants and the trim
        # anchor, both fixed for the cluster).  ``None`` when the
        # resolver is absent — every candidate then scores exhaustively.
        qctx = (quotient.context(query_path, trim_to_anchor, anchor)
                if quotient is not None and offsets else None)
        # Sharded scatter-gather: when the index is partitioned and an
        # executor is available, charge the budget up front over the
        # *global* candidate order (identical trip points for the
        # deterministic caps), then fan decode + trim + alignment out
        # with one task per shard — each shard's buffer pool is touched
        # by exactly one thread, so simulated or real page-read latency
        # overlaps across shards — and k-way merge the per-shard
        # results on ``(λ, gid)``.  Global ids ascend in build-walk
        # order exactly like the unsharded index's byte offsets, so the
        # merged order is bit-identical to the serial sort below.
        if ((executor is not None or proc_pool is not None) and sharded
                and index.shard_count > 1
                and len(offsets) >= max(2, scatter_threshold)):
            kept = offsets
            for rank in range(0, len(offsets), _CHARGE_BLOCK):
                if (budget is not None and budget.charge_candidates(
                        min(_CHARGE_BLOCK, len(offsets) - rank))):
                    tripped = True
                    kept = offsets[:rank]
                    break
            # Procs mode dispatches through the pool's own threads so
            # blocked IPC waits never starve the shared executor.
            dispatch_executor = (proc_pool.executor if proc_pool is not None
                                 else executor)
            merged, scatter_tripped = _scatter_gather(
                index, kept, query_path, trim_to_anchor, anchor, matcher,
                weights, memo, transcript, budget, dispatch_executor,
                hedge_ms=hedge_ms, dead_shards=dead_shards,
                proc_pool=proc_pool, quotient_ctx=qctx)
            tripped = tripped or scatter_tripped
            context = _EntryContext(index, query_path, matcher, memo,
                                    transcript)
            entries = []
            for score, gid, plen, node_ids in merged:
                uid_key = (gid, plen)
                uid = uid_pool.get(uid_key)
                if uid is None:
                    uid = next_uid
                    uid_pool[uid_key] = uid
                    next_uid += 1
                entries.append(LazyClusterEntry(context, gid, plen,
                                                score, uid,
                                                node_ids=node_ids))
            if max_cluster_size is not None:
                entries = entries[:max_cluster_size]
            clusters.append(Cluster(
                query_path=query_path, entries=entries,
                missing_penalty=missing_path_penalty(query_path, weights)))
            if qctx is not None:
                quotient.observe(qctx)
            continue
        # Quotient-aware serial path: identical budget charging and
        # sort keys, but only one alignment per refined class.
        if qctx is not None:
            entries, next_uid, q_tripped = _quotient_serial(
                index, offsets, query_path, trim_to_anchor, anchor,
                matcher, weights, memo, transcript, budget, executor,
                parallel_threshold, sharded, health, dead_shards, qctx,
                uid_pool, next_uid)
            tripped = tripped or q_tripped
            if max_cluster_size is not None:
                entries = entries[:max_cluster_size]
            clusters.append(Cluster(
                query_path=query_path, entries=entries,
                missing_penalty=missing_path_penalty(query_path, weights)))
            quotient.observe(qctx)
            continue
        # Stage 1 (serial): charge the budget, decode, and trim.  The
        # storage layer stays single-threaded; only the pure-CPU
        # alignment below ever fans out.
        pool_pairs: list[tuple[int, Path]] = []
        for rank, offset in enumerate(offsets):
            # Charging per candidate would make the budget call the
            # hottest instruction of the loop; charge whole blocks
            # instead (the caps trip at block granularity, which the
            # <5 % overhead target buys).
            if (budget is not None and rank % _CHARGE_BLOCK == 0
                    and budget.charge_candidates(
                        min(_CHARGE_BLOCK, len(offsets) - rank))):
                tripped = True
                break
            if sharded and dead_shards \
                    and index.locate(offset)[0] in dead_shards:
                continue
            try:
                path = index.path_at(offset)
            except _SHARD_FAULTS as exc:
                if not sharded:
                    raise      # one directory, no shard to isolate
                shard_no = index.locate(offset)[0]
                dead_shards.setdefault(shard_no, str(exc))
                if health is not None:
                    health.record_failure(shard_no, exc)
                continue
            if trim_to_anchor:
                path = _prefix_at_anchor(path, anchor, matcher)
                if path is None:
                    continue
            pool_pairs.append((offset, path))
        # Stage 2: score every candidate (memoised; chunked across the
        # executor when the cluster is large enough).
        scored = _score_candidates(pool_pairs, query_path, matcher, weights,
                                   memo, transcript, budget, executor,
                                   parallel_threshold)
        if len(scored) < len(pool_pairs):
            # Deadline tripped mid-scoring: keep what was scored, emit
            # the remaining clusters empty (same contract as before).
            tripped = True
        # Stage 3 (serial): assign uids in candidate order and sort.
        entries = []
        for (offset, path), (alignment, score) in zip(pool_pairs, scored):
            uid_key = (offset, path.length)
            uid = uid_pool.get(uid_key)
            if uid is None:
                uid = next_uid
                uid_pool[uid_key] = uid
                next_uid += 1
            entries.append(ClusterEntry(
                offset=offset, path=path, alignment=alignment,
                score=score, uid=uid))
        # Best (lowest λ) first; offset breaks ties deterministically.
        entries.sort(key=lambda entry: (entry.score, entry.offset))
        if max_cluster_size is not None:
            entries = entries[:max_cluster_size]
        clusters.append(Cluster(
            query_path=query_path, entries=entries,
            missing_penalty=missing_path_penalty(query_path, weights)))
    if dead_shards and budget is not None:
        lost = ",".join(str(shard) for shard in sorted(dead_shards))
        first_error = dead_shards[min(dead_shards)]
        budget.note(DegradationCause.SHARD_FAILED, "cluster",
                    f"shards={lost}: {first_error}")
    return clusters


def _quotient_serial(index, offsets, query_path: Path,
                     trim_to_anchor: bool, anchor, matcher: LabelMatcher,
                     weights: ScoringWeights, memo: AlignmentMemo,
                     transcript: bool, budget: "Budget | None", executor,
                     parallel_threshold: int, sharded: bool, health,
                     dead_shards: "dict[int, str]", qctx, uid_pool,
                     next_uid: int) -> "tuple[list, int, bool]":
    """The serial cluster stages with one alignment per refined class.

    Mirrors :func:`build_clusters`'s stages 1–3 exactly — identical
    budget charging (every candidate is charged, member or not),
    identical dead-shard skips and per-candidate fault isolation,
    identical uid assignment order, identical ``(λ, offset)`` sort —
    except that a candidate whose refine key was already seen skips the
    decode/trim/align pipeline entirely: it enters the cluster as a
    :class:`LazyClusterEntry` carrying its own node ids and the
    representative's bit-identical ``(λ, trimmed length)``.

    The first candidate of a class becomes its representative.  A
    representative that faults during decode does *not* register its
    key — the next member of the class is decoded and becomes the
    representative instead, preserving per-candidate fault isolation.
    A representative dropped by the anchor trim registers the class as
    dropped, which drops every member (the trim verdict is refine-key
    invariant).  A deadline that trips before a representative is
    scored loses its members too — the documented unbudgeted-queries
    caveat, shared with two-stage retrieval.
    """
    tripped = False
    pool_pairs: list[tuple[int, Path]] = []
    # Refine key -> pool index of the class representative, or -1 when
    # the representative fell to the anchor trim.
    rep_state: dict = {}
    # Candidate-order plan: ``(offset, key, pool index | None)`` —
    # ``None`` pool index marks a member expanded from its class.
    plan: list = []
    for rank, offset in enumerate(offsets):
        if (budget is not None and rank % _CHARGE_BLOCK == 0
                and budget.charge_candidates(
                    min(_CHARGE_BLOCK, len(offsets) - rank))):
            tripped = True
            break
        if sharded and dead_shards \
                and index.locate(offset)[0] in dead_shards:
            continue
        key = qctx.key_of(offset)
        if key is not None:
            state = rep_state.get(key)
            if state is not None:
                if state >= 0:
                    qctx.members += 1
                    plan.append((offset, key, None))
                continue
        try:
            path = index.path_at(offset)
        except _SHARD_FAULTS as exc:
            if not sharded:
                raise      # one directory, no shard to isolate
            shard_no = index.locate(offset)[0]
            dead_shards.setdefault(shard_no, str(exc))
            if health is not None:
                health.record_failure(shard_no, exc)
            continue
        if trim_to_anchor:
            path = _prefix_at_anchor(path, anchor, matcher)
            if path is None:
                if key is not None:
                    rep_state[key] = -1
                continue
        if key is not None:
            rep_state[key] = len(pool_pairs)
            qctx.reps += 1
        plan.append((offset, key, len(pool_pairs)))
        pool_pairs.append((offset, path))
    scored = _score_candidates(pool_pairs, query_path, matcher, weights,
                               memo, transcript, budget, executor,
                               parallel_threshold)
    if len(scored) < len(pool_pairs):
        tripped = True
    context = _EntryContext(index, query_path, matcher, memo, transcript)
    entries: list = []
    for offset, key, pool_index in plan:
        if pool_index is not None:
            if pool_index >= len(scored):
                continue       # deadline tripped before this rep scored
            path = pool_pairs[pool_index][1]
            alignment, score = scored[pool_index]
            uid_key = (offset, path.length)
            uid = uid_pool.get(uid_key)
            if uid is None:
                uid = next_uid
                uid_pool[uid_key] = uid
                next_uid += 1
            entries.append(ClusterEntry(
                offset=offset, path=path, alignment=alignment,
                score=score, uid=uid))
        else:
            rep_index = rep_state[key]
            if rep_index >= len(scored):
                continue       # representative lost to the deadline
            score = scored[rep_index][1]
            plen = pool_pairs[rep_index][1].length
            uid_key = (offset, plen)
            uid = uid_pool.get(uid_key)
            if uid is None:
                uid = next_uid
                uid_pool[uid_key] = uid
                next_uid += 1
            entries.append(LazyClusterEntry(
                context, offset, plen, score, uid,
                node_ids=qctx.member_node_ids(offset, plen)))
    entries.sort(key=lambda entry: (entry.score, entry.offset))
    return entries, next_uid, tripped


def _score_candidates(pool_pairs: list[tuple[int, Path]], query_path: Path,
                      matcher: LabelMatcher, weights: ScoringWeights,
                      memo: AlignmentMemo, transcript: bool,
                      budget: "Budget | None", executor,
                      parallel_threshold: int,
                      ) -> list[tuple[Alignment, float]]:
    """λ-score one cluster's candidates in a single batched pass.

    Returns one ``(alignment, score)`` per candidate, in candidate
    order; a deadline trip mid-cluster returns the prefix scored so
    far.  The weighted λ sum is inlined (attribute lookups hoisted)
    rather than routed through :func:`lambda_cost` per candidate.
    """
    results: list[tuple[Alignment, float]] = []
    if not pool_pairs:
        return results
    node_mis = weights.node_mismatch
    node_ins = weights.node_insertion
    edge_mis = weights.edge_mismatch
    edge_ins = weights.edge_insertion
    node_del = weights.node_deletion
    edge_del = weights.edge_deletion

    def score_one(offset: int, path: Path) -> tuple[Alignment, float]:
        key = (offset, path.length, query_path)
        found = memo.get(key)
        if found is not None:
            return found
        alignment = align(path, query_path, matcher, transcript=transcript)
        counts = alignment.counts
        score = (node_mis * counts.node_mismatches
                 + node_ins * counts.node_insertions
                 + edge_mis * counts.edge_mismatches
                 + edge_ins * counts.edge_insertions
                 + node_del * counts.node_deletions
                 + edge_del * counts.edge_deletions)
        memo.put(key, alignment, score)
        return alignment, score

    if executor is not None and len(pool_pairs) >= max(2, parallel_threshold):
        chunks = chunked(pool_pairs, _CHUNK)
        futures = [executor.submit(
            lambda chunk=chunk: [score_one(o, p) for o, p in chunk])
            for chunk in chunks]
        for index, future in enumerate(futures):
            if budget is not None and budget.poll("cluster"):
                for late in futures[index:]:
                    late.cancel()
                return results
            results.extend(future.result())
        return results

    for rank, (offset, path) in enumerate(pool_pairs):
        if (budget is not None and rank and rank % _CHARGE_BLOCK == 0
                and budget.poll("cluster")):
            return results
        results.append(score_one(offset, path))
    return results


def _scatter_gather(index, gids: list[int], query_path: Path,
                    trim_to_anchor: bool, anchor, matcher: LabelMatcher,
                    weights: ScoringWeights, memo: AlignmentMemo,
                    transcript: bool, budget: "Budget | None", executor,
                    hedge_ms: "float | None" = None,
                    dead_shards: "dict[int, str] | None" = None,
                    proc_pool=None, quotient_ctx=None,
                    ) -> "tuple[list[tuple], bool]":
    """Fan one cluster's candidates out across shards; merge on (λ, gid).

    One task per non-empty shard decodes, trims and memo-scores its
    slice of the (already budget-charged) candidate list; each task
    returns its results sorted by ``(score, gid)`` and the calling
    thread k-way merges them.  Returns the merged
    ``(score, gid, prefix length, node label ids)`` rows — the id
    column rides along so the top-k search can join whole clusters
    without decoding paths — and whether any task saw the budget
    deadline trip mid-scoring (its cluster keeps what was scored;
    later clusters come back empty, the serial contract).

    With ``proc_pool``, eligible shards are scored inside their worker
    processes instead (same triples, same sort key); a shard whose
    coordinator-side page store has a fault injector armed stays
    in-process so injected chaos keeps its exact semantics, and hedge
    dispatches always run in-process because a duplicate envelope to a
    wedged worker would queue behind the very task being hedged.

    Each shard task is *isolated*: a storage-level error escaping it, a
    circuit-open verdict from the index's health board, or an overrun
    of the per-shard deadline (budget remaining plus a small grace)
    drops that one shard's partial — recorded in ``dead_shards`` and on
    the health board — while every surviving shard still merges.  When
    ``hedge_ms`` is set, a task still running after that long gets a
    duplicate submission and the first completed result wins; the merge
    key is unchanged, so a hedge can only change *when* the answer
    arrives, never what it ranks.

    The memo is shared across tasks on purpose: its table is a dict
    whose get/put are GIL-atomic, and a racing duplicate alignment is
    merely redundant work, never a wrong score.

    ``quotient_ctx`` (a :class:`repro.quotient.resolve.QuotientContext`)
    turns on class compression inside the thread tasks: the first
    candidate of a refined class is decoded and aligned, its
    ``(λ, trimmed length)`` verdict is published in a cluster-wide
    class memo, and later members — on *any* shard, classes span
    shards — ship a row copied from it with their own node ids.  The
    memo is shared like the alignment memo: dict ops are GIL-atomic
    and the refine key determines the verdict bit-exactly, so a racing
    duplicate write stores the identical value.  Procs-eligible shards
    do their own class grouping inside the worker instead (the flag
    rides on the task envelope); both produce the same sorted rows.
    """
    node_mis = weights.node_mismatch
    node_ins = weights.node_insertion
    edge_mis = weights.edge_mismatch
    edge_ins = weights.edge_insertion
    node_del = weights.node_deletion
    edge_del = weights.edge_deletion
    #: Refine key -> ``(λ, trimmed length)`` of the class
    #: representative, or :data:`DROPPED` when the representative fell
    #: to the anchor trim.  One dict per cluster, shared by its shard
    #: tasks (including hedges) — see the docstring for why the races
    #: are benign.
    class_memo: "dict | None" = {} if quotient_ctx is not None else None

    def run_shard(shard_no: int, pairs: list[tuple[int, int]]):
        shard = index.shards[shard_no]
        results = []
        tripped = False
        for rank, (gid, offset) in enumerate(pairs):
            if (budget is not None and rank and rank % _CHARGE_BLOCK == 0
                    and budget.poll("cluster")):
                tripped = True
                break
            ckey = None
            if class_memo is not None:
                ckey = quotient_ctx.key_of(gid)
                if ckey is not None:
                    verdict = class_memo.get(ckey)
                    if verdict is DROPPED:
                        continue
                    if verdict is not None:
                        score, plen = verdict
                        quotient_ctx.members += 1
                        results.append((
                            score, gid, plen,
                            quotient_ctx.member_node_ids(gid, plen)))
                        continue
            path = shard.path_at(offset)
            if trim_to_anchor:
                path = _prefix_at_anchor(path, anchor, matcher)
                if path is None:
                    if ckey is not None:
                        class_memo[ckey] = DROPPED
                    continue
            key = (gid, path.length, query_path)
            found = memo.get(key)
            if found is not None:
                score = found[1]
            else:
                alignment = align(path, query_path, matcher,
                                  transcript=transcript)
                counts = alignment.counts
                score = (node_mis * counts.node_mismatches
                         + node_ins * counts.node_insertions
                         + edge_mis * counts.edge_mismatches
                         + edge_ins * counts.edge_insertions
                         + node_del * counts.node_deletions
                         + edge_del * counts.edge_deletions)
                memo.put(key, alignment, score)
            if ckey is not None:
                class_memo[ckey] = (score, path.length)
                quotient_ctx.reps += 1
            results.append((score, gid, path.length, path.label_ids))
        results.sort(key=lambda item: (item[0], item[1]))
        return results, tripped

    if dead_shards is None:
        dead_shards = {}
    health = getattr(index, "health", None)

    def deadline_cap() -> "float | None":
        """Seconds a gather may still wait before a task is overrun."""
        if budget is None:
            return None
        remaining = budget.remaining_ms()
        if remaining is None:
            return None
        return remaining / 1000.0 + _SHARD_DEADLINE_GRACE_S

    tasks = []
    for shard_no, pairs in enumerate(index.group_by_shard(gids)):
        if not pairs:
            continue
        if shard_no in dead_shards:
            continue           # already failed earlier in this query
        if health is not None and not health.allow(shard_no):
            dead_shards.setdefault(shard_no, "circuit open")
            continue
        if proc_pool is not None and _pool_eligible(index, shard_no):
            remaining = budget.remaining_ms() if budget is not None else None
            task = partial(proc_pool.run_shard, shard_no, pairs,
                           query_path, anchor if trim_to_anchor else None,
                           weights, remaining,
                           quotient_ctx is not None)
            future = executor.submit(task)
        else:
            future = executor.submit(run_shard, shard_no, pairs)
        tasks.append((shard_no, pairs, future))

    shard_results = []
    tripped = False
    for shard_no, pairs, future in tasks:
        try:
            if hedge_ms is not None:
                try:
                    results, shard_tripped = future.result(
                        timeout=hedge_ms / 1000.0)
                except FutureTimeout:
                    # Straggler: duplicate the task, first result wins.
                    if health is not None:
                        health.note_hedge(shard_no)
                    hedge = executor.submit(run_shard, shard_no, pairs)
                    results, shard_tripped = _first_of(
                        future, hedge, deadline_cap())
            else:
                results, shard_tripped = future.result(
                    timeout=deadline_cap())
        except FutureTimeout:
            dead_shards.setdefault(shard_no, "per-shard deadline overrun")
            if health is not None:
                health.record_failure(shard_no, "deadline overrun")
            continue
        except _SHARD_FAULTS as exc:
            dead_shards.setdefault(shard_no, str(exc))
            if health is not None:
                health.record_failure(shard_no, exc)
            continue
        if health is not None:
            health.record_success(shard_no)
        shard_results.append(results)
        tripped = tripped or shard_tripped
    if tripped and budget is not None:
        # A worker trips on its own clock against its budget slice; the
        # coordinator's budget must still record the deadline so the
        # degradation reason reaches the PartialResult.  (In threads
        # mode this is a no-op: the task's own poll already noted it.)
        budget.out_of_time("cluster")
    merge_started = time.monotonic() if proc_pool is not None else 0.0
    merged = list(heapq.merge(*shard_results,
                              key=lambda item: (item[0], item[1])))
    if proc_pool is not None:
        proc_pool.observe_merge(time.monotonic() - merge_started)
    return merged, tripped


def _pool_eligible(index, shard_no: int) -> bool:
    """Whether a shard task may run in a worker process.

    A shard whose coordinator-side page store carries an armed fault
    injector must score in-process: the injector cannot fire inside a
    worker (workers open their own stores), and chaos-harness fault
    plans rely on its exact semantics.  Quarantined shards (no open
    page store at all) are never dispatched anyway.
    """
    shard = index.shards[shard_no]
    store = getattr(shard, "page_store", None)
    return store is not None and getattr(store, "fault_injector", None) is None


def _first_of(primary, hedge, cap: "float | None"):
    """The first successful result of two racing shard tasks.

    Waits for whichever future completes first (bounded by ``cap``
    seconds when given); a completed future that *failed* defers to the
    other one, and only when both have failed does the first error
    propagate.  Both compute the same pure function over the same
    pairs, so whichever wins returns the same sorted list.
    """
    pending = {primary, hedge}
    first_error = None
    while pending:
        done, pending = wait_futures(pending, timeout=cap,
                                     return_when=FIRST_COMPLETED)
        if not done:
            raise FutureTimeout()
        for finished in done:
            try:
                return finished.result()
            except _SHARD_FAULTS as exc:
                if first_error is None:
                    first_error = exc
    raise first_error
