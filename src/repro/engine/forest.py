"""The forest of paths (§5, Fig. 4).

During search the engine conceptually organises candidate combinations
in a forest: nodes are retrieved data paths, and an edge between two
paths (drawn from clusters ``cl_i`` and ``cl_j`` whose query paths
intersect) is labelled ``(q_i, q_j): [degree]`` with the conformity
degree of the pair — 1.0 for perfectly conforming pairs, lower for
deficient ones (the paper draws those dashed).

The production search (``repro.engine.search``) explores the
combination lattice directly; this module materialises the forest
explicitly for explanation, visualisation and the Fig. 4 tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..paths.intersection import IntersectionGraph
from ..resilience.budget import Budget
from ..scoring.conformity import conformity_degree
from .clustering import Cluster, ClusterEntry


@dataclass(frozen=True)
class ForestEdge:
    """An edge of the forest: two entries and their conformity degree."""

    cluster_a: int
    entry_a: ClusterEntry
    cluster_b: int
    entry_b: ClusterEntry
    degree: float

    @property
    def is_solid(self) -> bool:
        """Fig. 4 drawing rule: solid when perfectly conforming."""
        return self.degree >= 1.0

    def label(self) -> str:
        """The paper's edge label ``(qi, qj): [degree]``."""
        return f"(q{self.cluster_b + 1}, q{self.cluster_a + 1}): [{self.degree:g}]"


@dataclass
class PathForest:
    """The materialised forest over the best cluster entries.

    Forest expansion is quadratic per IG edge, so it honours an
    optional ``budget``: when the deadline trips mid-expansion the
    edges built so far are kept, ``truncated`` turns True, and the
    reason is recorded on the budget.
    """

    clusters: list[Cluster]
    ig: IntersectionGraph
    entries_per_cluster: int = 4
    budget: "Budget | None" = None
    edges: list[ForestEdge] = field(default_factory=list, init=False)
    truncated: bool = field(default=False, init=False)

    def __post_init__(self):
        for i, j, _shared in self.ig.edges():
            for entry_i in self.clusters[i].entries[:self.entries_per_cluster]:
                if self.budget is not None and self.budget.poll("forest"):
                    self.truncated = True
                    return
                for entry_j in self.clusters[j].entries[:self.entries_per_cluster]:
                    degree = conformity_degree(
                        self.clusters[i].query_path, self.clusters[j].query_path,
                        entry_i.path, entry_j.path)
                    self.edges.append(ForestEdge(
                        cluster_a=i, entry_a=entry_i,
                        cluster_b=j, entry_b=entry_j, degree=degree))

    def solid_edges(self) -> list[ForestEdge]:
        return [edge for edge in self.edges if edge.is_solid]

    def dashed_edges(self) -> list[ForestEdge]:
        return [edge for edge in self.edges if not edge.is_solid]

    def trees(self) -> list[set[tuple[int, int]]]:
        """Connected components over solid edges.

        Nodes are ``(cluster index, entry rank)`` pairs; a component
        touching every cluster is a candidate first solution (the tree
        with ``p1``, ``p10``, ``p20`` in the paper's example).
        """
        parent: dict[tuple[int, int], tuple[int, int]] = {}

        def find(node):
            parent.setdefault(node, node)
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a, b):
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_a] = root_b

        for cluster_index, cluster in enumerate(self.clusters):
            for rank in range(min(len(cluster.entries), self.entries_per_cluster)):
                find((cluster_index, rank))
        for edge in self.solid_edges():
            rank_a = self.clusters[edge.cluster_a].entries.index(edge.entry_a)
            rank_b = self.clusters[edge.cluster_b].entries.index(edge.entry_b)
            union((edge.cluster_a, rank_a), (edge.cluster_b, rank_b))

        components: dict[tuple[int, int], set[tuple[int, int]]] = {}
        for node in list(parent):
            components.setdefault(find(node), set()).add(node)
        return sorted(components.values(), key=lambda c: (-len(c), sorted(c)))

    def render(self) -> str:
        """Text rendering of the forest (edge per line, Fig. 4 style)."""
        lines = []
        for edge in self.edges:
            style = "----" if edge.is_solid else "- - "
            lines.append(f"{edge.entry_b.path} {style} {edge.entry_a.path}  "
                         f"{edge.label()}")
        return "\n".join(lines)
