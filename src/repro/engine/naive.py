"""A naive top-k reference: enumerate, score, sort.

The ablation counterpart of :func:`repro.engine.search.top_k`.  It
materialises the cross product of the clusters (optionally truncated to
the best ``per_cluster`` entries each — without truncation the product
is exponential), scores every combination, and sorts.  Exact on small
instances, hopeless on big ones; the benchmark suite uses it to show
what the paper's "minimise the number of combinations" strategy (§5)
buys.
"""

from __future__ import annotations

import itertools

from ..paths.intersection import chi
from ..scoring.weights import PAPER_WEIGHTS, ScoringWeights
from .answers import Answer
from .clustering import Cluster
from .preprocess import PreparedQuery
from .search import SearchResult


def naive_top_k(prepared: PreparedQuery, clusters: list[Cluster],
                weights: ScoringWeights = PAPER_WEIGHTS, k: int = 10,
                per_cluster: "int | None" = None,
                max_combinations: int = 2_000_000) -> SearchResult:
    """Top-k by full enumeration (the no-search ablation).

    Raises ``ValueError`` when the (possibly truncated) combination
    space exceeds ``max_combinations`` — the honest way to report that
    enumeration is infeasible, which is itself the ablation's lesson.
    """
    if len(clusters) != len(prepared.paths):
        raise ValueError("need one cluster per query path")
    domains: list[list] = []
    total = 1
    for cluster in clusters:
        entries = cluster.entries
        if per_cluster is not None:
            entries = entries[:per_cluster]
        domain = list(entries) if entries else [None]
        domains.append(domain)
        total *= len(domain)
        if total > max_combinations:
            raise ValueError(
                f"combination space exceeds {max_combinations:,}; "
                f"pass per_cluster to truncate (this blow-up is what the "
                f"guided search avoids)")

    edge_info = [(i, j, weights.conformity * len(shared))
                 for i, j, shared in prepared.ig.edges()]
    scored: list[Answer] = []
    for combination in itertools.product(*domains):
        quality = 0.0
        covered = 0
        for cluster, entry in zip(clusters, combination):
            if entry is None:
                quality += cluster.missing_penalty
            else:
                quality += entry.score
                covered += 1
        if covered == 0:
            continue
        conformity = 0.0
        broken = 0
        for i, j, penalty in edge_info:
            entry_i, entry_j = combination[i], combination[j]
            if entry_i is None or entry_j is None:
                conformity += penalty
                broken += 1
                continue
            common = len(chi(entry_i.path, entry_j.path))
            if common == 0:
                conformity += penalty
                broken += 1
            else:
                conformity += penalty / common
        scored.append(Answer(entries=tuple(combination),
                             query_paths=tuple(prepared.paths),
                             quality=quality, conformity=conformity,
                             broken_pairs=broken))
    scored.sort(key=lambda answer: (answer.score, answer.broken_pairs))
    return SearchResult(answers=scored[:k], expansions=total,
                        generated=len(scored), exhausted=True)
