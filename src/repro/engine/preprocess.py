"""Query preprocessing (§5, step 1).

On arrival, a query graph is decomposed on the fly into its set of
paths ``PQ`` (BFS from each source to every sink) and the paths are
organised into the *intersection query graph* (Fig. 2), whose edges
record which query paths share nodes.  Everything downstream — the
clusters, the forest, the conformity checks — is driven by this
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..paths.extraction import DEFAULT_LIMITS, ExtractionLimits, extract_paths
from ..paths.intersection import IntersectionGraph
from ..paths.model import Path
from ..rdf.graph import QueryGraph
from ..rdf.terms import Term, Variable


class EmptyQueryError(ValueError):
    """Raised when the query graph has no nodes (nothing to answer)."""


@dataclass
class PreparedQuery:
    """The preprocessed form of a query: its paths ``PQ`` and IG.

    ``anchors`` holds each path's primary anchor (its constant sink, or
    the first constant scanning backwards); ``anchor_lists`` the full
    ordered fallback sequence retrieval walks when earlier anchors
    match nothing in the data.
    """

    graph: QueryGraph
    paths: list[Path]
    ig: IntersectionGraph
    anchors: list["Term | None"] = field(default_factory=list)
    anchor_lists: list[list[Term]] = field(default_factory=list)

    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def node_count(self) -> int:
        """|Q| in nodes — the x-axis of Fig. 7b."""
        return self.graph.node_count()

    @property
    def variable_count(self) -> int:
        """Number of distinct variables — the x-axis of Fig. 7c."""
        return len(self.graph.variables())

    @property
    def depth(self) -> int:
        """The h of the O(h·I²) bound: the longest query path (nodes)."""
        return max((p.length for p in self.paths), default=0)


def anchor_candidates(path: Path) -> list[Term]:
    """Constants of a query path, scanning from the sink backwards (§5).

    Clustering anchors a query path on its sink; when the sink is a
    variable the anchor falls back to "the first (constant) value v
    occurring in q (w.r.t. the end of q, i.e. in the contrary way)".
    The scan interleaves nodes and edges because either can provide the
    anchor (a query path may have all nodes variable but a constant
    predicate).  The full ordered list is returned so retrieval can
    keep falling back when an anchor matches nothing in the data —
    e.g. a query naming a subject that simply does not occur still
    anchors through its predicate.  Empty for a fully-variable path.
    """
    candidates: list[Term] = []
    for index in range(path.length - 1, -1, -1):
        node = path.nodes[index]
        if not isinstance(node, Variable):
            candidates.append(node)
        if index > 0:
            edge = path.edges[index - 1]
            if not isinstance(edge, Variable):
                candidates.append(edge)
    return candidates


def first_constant_from_sink(path: Path) -> "Term | None":
    """The first constant scanning backwards, or ``None`` (see above)."""
    candidates = anchor_candidates(path)
    return candidates[0] if candidates else None


def prepare_query(query: QueryGraph,
                  limits: ExtractionLimits = DEFAULT_LIMITS) -> PreparedQuery:
    """Decompose ``query`` into ``PQ`` and build its intersection graph."""
    if query.node_count() == 0:
        raise EmptyQueryError("the query graph has no nodes")
    paths = extract_paths(query, limits=limits)
    ig = IntersectionGraph(paths)
    anchors: list["Term | None"] = []
    anchor_lists: list[list[Term]] = []
    for path in paths:
        candidates = anchor_candidates(path)
        anchor_lists.append(candidates)
        anchors.append(candidates[0] if candidates else None)
    return PreparedQuery(graph=query, paths=paths, ig=ig, anchors=anchors,
                         anchor_lists=anchor_lists)
