"""Query preprocessing (§5, step 1).

On arrival, a query graph is decomposed on the fly into its set of
paths ``PQ`` (BFS from each source to every sink) and the paths are
organised into the *intersection query graph* (Fig. 2), whose edges
record which query paths share nodes.  Everything downstream — the
clusters, the forest, the conformity checks — is driven by this
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import span
from ..paths.extraction import DEFAULT_LIMITS, ExtractionLimits, extract_paths
from ..paths.intersection import IntersectionGraph
from ..paths.model import Path
from ..rdf.graph import QueryGraph
from ..rdf.terms import Term, Variable
from ..resilience.budget import Budget
from ..resilience.errors import InvalidQueryError


class EmptyQueryError(InvalidQueryError):
    """Raised when the query graph has no nodes (nothing to answer)."""


@dataclass
class PreparedQuery:
    """The preprocessed form of a query: its paths ``PQ`` and IG.

    ``anchors`` holds each path's primary anchor (its constant sink, or
    the first constant scanning backwards); ``anchor_lists`` the full
    ordered fallback sequence retrieval walks when earlier anchors
    match nothing in the data.
    """

    graph: QueryGraph
    paths: list[Path]
    ig: IntersectionGraph
    anchors: list["Term | None"] = field(default_factory=list)
    anchor_lists: list[list[Term]] = field(default_factory=list)

    @property
    def path_count(self) -> int:
        return len(self.paths)

    @property
    def node_count(self) -> int:
        """|Q| in nodes — the x-axis of Fig. 7b."""
        return self.graph.node_count()

    @property
    def variable_count(self) -> int:
        """Number of distinct variables — the x-axis of Fig. 7c."""
        return len(self.graph.variables())

    @property
    def depth(self) -> int:
        """The h of the O(h·I²) bound: the longest query path (nodes)."""
        return max((p.length for p in self.paths), default=0)


def anchor_candidates(path: Path) -> list[Term]:
    """Constants of a query path, scanning from the sink backwards (§5).

    Clustering anchors a query path on its sink; when the sink is a
    variable the anchor falls back to "the first (constant) value v
    occurring in q (w.r.t. the end of q, i.e. in the contrary way)".
    The scan interleaves nodes and edges because either can provide the
    anchor (a query path may have all nodes variable but a constant
    predicate).  The full ordered list is returned so retrieval can
    keep falling back when an anchor matches nothing in the data —
    e.g. a query naming a subject that simply does not occur still
    anchors through its predicate.  Empty for a fully-variable path.
    """
    candidates: list[Term] = []
    for index in range(path.length - 1, -1, -1):
        node = path.nodes[index]
        if not isinstance(node, Variable):
            candidates.append(node)
        if index > 0:
            edge = path.edges[index - 1]
            if not isinstance(edge, Variable):
                candidates.append(edge)
    return candidates


def first_constant_from_sink(path: Path) -> "Term | None":
    """The first constant scanning backwards, or ``None`` (see above)."""
    candidates = anchor_candidates(path)
    return candidates[0] if candidates else None


def validate_query_graph(query: QueryGraph) -> None:
    """Up-front sanity checks a query must pass before evaluation.

    Raises a typed :class:`InvalidQueryError` (or its
    :class:`EmptyQueryError` subclass) with an actionable message for
    the three pathologies that otherwise fail confusingly deep inside
    clustering and search: an empty pattern, a pattern binding no
    constant at all (every node *and* edge a variable — nothing to
    anchor index retrieval on), and a disconnected query graph (the
    paper's queries are connected by construction; a disconnected one
    is almost always a typo'd variable name).
    """
    if query.node_count() == 0:
        raise EmptyQueryError("the query graph has no nodes")
    has_constant = (any(not label.is_variable for label in query.node_labels())
                    or any(not label.is_variable
                           for label in query.edge_labels()))
    if not has_constant:
        raise InvalidQueryError(
            "the query pattern binds no constants: every subject, "
            "predicate and object is a variable, so there is nothing to "
            "anchor retrieval on — add at least one IRI or literal")
    components = _connected_components(query)
    if components > 1:
        raise InvalidQueryError(
            f"the query graph is disconnected ({components} components): "
            f"answers cannot relate patterns that share no variable or "
            f"constant — check for mistyped variable names, or submit the "
            f"components as separate queries")


def _connected_components(query: QueryGraph) -> int:
    """Number of weakly connected components of the query graph."""
    unseen = set(query.nodes())
    components = 0
    while unseen:
        components += 1
        stack = [unseen.pop()]
        while stack:
            node = stack.pop()
            for _label, neighbor in query.out_edges(node):
                if neighbor in unseen:
                    unseen.discard(neighbor)
                    stack.append(neighbor)
            for _label, neighbor in query.in_edges(node):
                if neighbor in unseen:
                    unseen.discard(neighbor)
                    stack.append(neighbor)
    return components


def prepare_query(query: QueryGraph,
                  limits: ExtractionLimits = DEFAULT_LIMITS,
                  budget: "Budget | None" = None) -> PreparedQuery:
    """Decompose ``query`` into ``PQ`` and build its intersection graph.

    ``budget``, when given, is polled after path extraction so a query
    arriving with an already-expired deadline (or one that expires
    during extraction) skips the IG build: the degradation is recorded
    on the budget and an empty ``PreparedQuery`` shell is returned for
    the caller to turn into a partial result.
    """
    if query.node_count() == 0:
        raise EmptyQueryError("the query graph has no nodes")
    if budget is not None and budget.out_of_time("prepare"):
        return PreparedQuery(graph=query, paths=[],
                             ig=IntersectionGraph([]))
    with span("extract"):
        paths = extract_paths(query, limits=limits)
    if budget is not None and budget.out_of_time("prepare"):
        return PreparedQuery(graph=query, paths=[],
                             ig=IntersectionGraph([]))
    ig = IntersectionGraph(paths)
    anchors: list["Term | None"] = []
    anchor_lists: list[list[Term]] = []
    for path in paths:
        candidates = anchor_candidates(path)
        anchor_lists.append(candidates)
        anchors.append(candidates[0] if candidates else None)
    return PreparedQuery(graph=query, paths=paths, ig=ig, anchors=anchors,
                         anchor_lists=anchor_lists)
