"""SELECT result sets: SPARQL-shaped rows over ranked answers.

:meth:`SamaEngine.query` returns :class:`~repro.engine.answers.Answer`
objects — the full structural view.  SPARQL users expect *bindings
rows* shaped by the ``SELECT`` projection; this module provides that
view: each answer contributes one row of projected variable bindings,
annotated with the answer's score, with ``DISTINCT`` deduplication when
the query asked for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..rdf.sparql import SelectQuery
from ..rdf.terms import Term, Variable
from .answers import Answer


@dataclass(frozen=True)
class ResultRow:
    """One solution row: projected bindings plus provenance."""

    bindings: tuple[tuple[Variable, "Term | None"], ...]
    score: float
    answer: Answer

    def __getitem__(self, variable) -> "Term | None":
        if isinstance(variable, str):
            variable = Variable(variable)
        for bound, value in self.bindings:
            if bound == variable:
                return value
        raise KeyError(variable)

    def get(self, variable, default=None):
        try:
            return self[variable]
        except KeyError:
            return default

    def as_dict(self) -> dict[Variable, "Term | None"]:
        return dict(self.bindings)

    def __str__(self):
        cells = ", ".join(
            f"?{var.value}={value if value is not None else '—'}"
            for var, value in self.bindings)
        return f"[{cells}] (score {self.score:.2f})"


class ResultSet:
    """The rows of a SELECT query, best answer first."""

    def __init__(self, variables: list[Variable], rows: list[ResultRow],
                 distinct: bool = False):
        self.variables = variables
        self.rows = rows
        self.distinct = distinct

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, index) -> ResultRow:
        return self.rows[index]

    def column(self, variable) -> list["Term | None"]:
        """All values of one projected variable, in rank order."""
        if isinstance(variable, str):
            variable = Variable(variable)
        return [row.get(variable) for row in self.rows]

    def to_table(self) -> str:
        """A text rendering in SPARQL-results style."""
        headers = [f"?{v.value}" for v in self.variables] + ["score"]
        widths = [len(h) for h in headers]
        body = []
        for row in self.rows:
            cells = []
            for position, variable in enumerate(self.variables):
                value = row.get(variable)
                text = str(value) if value is not None else "—"
                widths[position] = max(widths[position], len(text))
                cells.append(text)
            cells.append(f"{row.score:.2f}")
            widths[-1] = max(widths[-1], len(cells[-1]))
            body.append(cells)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
                 "-+-".join("-" * w for w in widths)]
        for cells in body:
            lines.append(" | ".join(c.ljust(w)
                                    for c, w in zip(cells, widths)))
        return "\n".join(lines)

    def to_json(self) -> dict:
        """The W3C SPARQL 1.1 Query Results JSON structure.

        Scores travel in each binding object's non-standard
        ``sama:score`` key (consumers that follow the spec ignore
        unknown keys).  Unbound projected variables are simply absent
        from their row, per the spec.
        """
        from ..rdf.terms import BlankNode, Literal, URI

        def term_json(value) -> dict:
            if isinstance(value, URI):
                return {"type": "uri", "value": value.value}
            if isinstance(value, BlankNode):
                return {"type": "bnode", "value": value.value}
            if isinstance(value, Literal):
                out = {"type": "literal", "value": value.value}
                if value.language:
                    out["xml:lang"] = value.language
                elif value.datatype:
                    out["datatype"] = value.datatype.value
                return out
            return {"type": "literal", "value": str(value)}

        bindings = []
        for row in self.rows:
            entry: dict = {"sama:score": row.score}
            for variable, value in row.bindings:
                if value is not None:
                    entry[variable.value] = term_json(value)
            bindings.append(entry)
        return {
            "head": {"vars": [v.value for v in self.variables]},
            "results": {"bindings": bindings},
        }

    def __repr__(self):
        return f"<ResultSet: {len(self.rows)} rows x {len(self.variables)} vars>"


def result_set(select: SelectQuery, answers: list[Answer]) -> ResultSet:
    """Project ranked answers through a SELECT clause.

    ``SELECT *`` projects every variable of the pattern, sorted by
    name.  An answer that leaves a projected variable unbound (an
    uncovered query path) yields ``None`` in that column.  With
    ``DISTINCT``, later rows whose projected bindings repeat an earlier
    row are dropped (the earlier row has the better score).
    """
    if select.select_all:
        variables = sorted(select.all_variables(), key=lambda v: v.value)
    else:
        variables = list(select.variables)
    rows: list[ResultRow] = []
    seen: set[tuple] = set()
    for answer in answers:
        substitution = answer.substitution() or {}
        bindings = tuple((variable, substitution.get(variable))
                         for variable in variables)
        if select.distinct:
            key = tuple(value for _var, value in bindings)
            if key in seen:
                continue
            seen.add(key)
        rows.append(ResultRow(bindings=bindings, score=answer.score,
                              answer=answer))
    return ResultSet(variables, rows, distinct=select.distinct)
