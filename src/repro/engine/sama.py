"""The Sama engine facade: index once, query many times.

This is the library's main entry point::

    from repro import SamaEngine
    from repro.datasets.govtrack import govtrack_graph

    engine = SamaEngine.from_graph(govtrack_graph())
    answers = engine.query('''
        PREFIX gov: <http://example.org/govtrack/>
        SELECT ?v1 ?v2 ?v3 WHERE {
            gov:CarlaBunes gov:sponsor ?v1 .
            ?v1 gov:aTo ?v2 .
            ?v2 gov:subject "Health Care" .
            ?v3 gov:sponsor ?v2 .
            ?v3 gov:gender "Male" .
        }''', k=10)

Queries are SPARQL text, :class:`~repro.rdf.sparql.SelectQuery` objects
or :class:`~repro.rdf.graph.QueryGraph` instances.  Answers come back
best-first by the paper's score.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass, field, replace

from ..index.builder import IndexStats, build_index
from ..index.labels import SemanticMatcher
from ..index.pathindex import PathIndex
from ..index.thesaurus import Thesaurus, default_thesaurus
from ..obs import span
from ..parallel import ProcessShardPool, shared_executor
from ..parallel import worker_mode as resolve_worker_mode
from ..paths.alignment import LabelMatcher, exact_match
from ..paths.extraction import DEFAULT_LIMITS, ExtractionLimits
from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.sparql import SelectQuery, parse_select
from ..resilience.budget import Budget, PartialResult
from ..resilience.errors import QueryTimeout
from ..scoring.weights import PAPER_WEIGHTS, ScoringWeights
from .answers import Answer
from .clustering import AlignmentMemo, Cluster, build_clusters
from .forest import PathForest
from .preprocess import PreparedQuery, prepare_query, validate_query_graph
from .search import SearchConfig, SearchResult, top_k


@dataclass
class EngineConfig:
    """Tunables of a :class:`SamaEngine`.

    ``matcher_level`` picks the label comparison inside alignments
    (``exact`` / ``lexical`` / ``semantic``); ``semantic_lookup``
    controls thesaurus widening during index retrieval.  The defaults
    reproduce the prototype's behaviour (WordNet-backed matching).

    ``workers`` sizes the worker pool used to parallelise clustering's
    candidate alignment (``None`` defers to ``SAMA_WORKERS`` /
    ``os.cpu_count()``; 1 or 0 forces serial).  ``fast_path`` gates the
    dense-ID hot path as a whole — interned χ/ψ intersections, the
    per-query alignment memo, transcript-free alignments, parallel
    clustering.  Rankings and scores are identical either way; the
    switch exists for A/B benchmarking (``benchmarks/bench_hotpath.py``)
    and equivalence tests, not for production use.
    """

    weights: ScoringWeights = field(default_factory=ScoringWeights.paper)
    matcher_level: str = "semantic"
    semantic_lookup: bool = True
    limits: ExtractionLimits = DEFAULT_LIMITS
    #: Budget for the offline index build; ``None`` uses the indexer's
    #: own truncating default (see ``repro.index.builder.INDEXER_LIMITS``).
    index_limits: "ExtractionLimits | None" = None
    max_cluster_size: "int | None" = 4_000
    search: SearchConfig = field(default_factory=SearchConfig)
    workers: "int | None" = None
    fast_path: bool = True
    #: Straggler hedging over sharded indexes: a scatter-gather shard
    #: task still running after this many milliseconds is dispatched a
    #: second time and the first result wins.  ``None`` disables
    #: hedging.  Rankings are unaffected either way.
    hedge_ms: "float | None" = None
    #: Minimum candidates before a cluster over a sharded index
    #: scatter-gathers (see ``repro.engine.clustering.SCATTER_THRESHOLD``).
    #: Exposed mainly so tests and small benchmarks can engage the
    #: scatter path on graphs below the production default.
    scatter_threshold: "int | None" = None
    #: Shard execution mode for scatter-gather over a sharded index:
    #: ``"threads"`` keeps shard tasks on the shared thread pool (best
    #: when page reads dominate), ``"procs"`` scores each shard inside
    #: a long-lived worker process with a columnar view of its paths —
    #: the CPU-bound λ loop escapes the GIL and skips per-query decode
    #: (best for in-memory data; see DESIGN.md §11).  ``None`` defers
    #: to ``SAMA_WORKER_MODE``, default ``"threads"``.  Rankings are
    #: bit-identical across modes.
    worker_mode: "str | None" = None
    #: Two-stage retrieval mode (``repro.sketch``): ``"off"`` scores
    #: every retrieved candidate exactly (the paper's behaviour);
    #: ``"safe"`` prunes only candidates provably outside the kept
    #: cluster, so rankings stay bit-identical; ``"approx"`` trades
    #: recall for speed under ``recall_target``.  Both staged modes
    #: need persisted sketches (``sama index sketch``) — without them
    #: the engine silently falls back to exhaustive recall.
    two_stage: str = "off"
    #: Target recall of ``two_stage="approx"`` (ignored otherwise):
    #: the fraction of exhaustive top-k answers the staged run should
    #: keep.  Measured, not promised — ``benchmarks/bench_twostage.py``
    #: gates it.
    recall_target: float = 0.95
    #: Quotient-compressed scoring (``repro.quotient``): ``"auto"``
    #: aligns once per refined equivalence class whenever persisted
    #: ``quotient.bin`` files match the index epoch (built by
    #: ``sama index build`` / ``sama index quotient``), silently
    #: falling back to per-path scoring when they are absent or stale;
    #: ``"off"`` never loads them.  Rankings are bit-identical either
    #: way (``benchmarks/bench_quotient.py`` gates it).
    quotient: str = "auto"


class SamaEngine:
    """Approximate top-k query answering over one indexed RDF graph."""

    def __init__(self, index: PathIndex,
                 config: "EngineConfig | None" = None,
                 thesaurus: "Thesaurus | None" = None):
        self.index = index
        self.config = config or EngineConfig()
        from ..sketch import validate_mode
        validate_mode(self.config.two_stage)
        if self.config.quotient not in ("auto", "off"):
            raise ValueError(f"quotient must be 'auto' or 'off', "
                             f"got {self.config.quotient!r}")
        self.thesaurus = thesaurus if thesaurus is not None else default_thesaurus()
        self.matcher = self._build_matcher()
        self.last_result: "SearchResult | None" = None
        self.index_stats: "IndexStats | None" = None
        self._proc_pool: "ProcessShardPool | None" = None
        self._pool_lock = threading.Lock()
        self._sketch_lock = threading.Lock()
        self._sketch_filter = None
        self._sketch_epoch = None
        self._quotient_lock = threading.Lock()
        self._quotient_resolver = None
        self._quotient_epoch = None

    def _build_matcher(self) -> LabelMatcher:
        level = self.config.matcher_level
        if level == "exact":
            return exact_match
        return SemanticMatcher(self.thesaurus, level=level)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: DataGraph, directory=None,
                   config: "EngineConfig | None" = None,
                   thesaurus: "Thesaurus | None" = None) -> "SamaEngine":
        """Index ``graph`` (under ``directory`` or a temp dir) and wrap it."""
        config = config or EngineConfig()
        if thesaurus is None:
            thesaurus = default_thesaurus()
        if directory is None:
            directory = tempfile.mkdtemp(prefix="sama-index-")
        from ..index.builder import INDEXER_LIMITS
        index, stats = build_index(
            graph, directory,
            limits=config.index_limits or INDEXER_LIMITS,
            thesaurus=thesaurus)
        engine = cls(index, config=config, thesaurus=thesaurus)
        engine.index_stats = stats
        return engine

    @classmethod
    def open(cls, directory, config: "EngineConfig | None" = None,
             thesaurus: "Thesaurus | None" = None,
             read_latency: float = 0.0,
             recover: bool = False) -> "SamaEngine":
        """Reopen a previously built index directory.

        Detects the layout: a directory holding a sharded manifest
        (built with ``sama index build --shards N`` or
        :func:`repro.index.sharded.build_sharded_index`) comes back as
        a :class:`~repro.index.sharded.ShardedIndex`, anything else as
        a plain :class:`PathIndex`.  The engine runs identically on
        both — sharding changes wall-clock, never rankings.

        ``recover=True`` (sharded indexes only) runs the startup
        recovery scan and opens *around* damaged shards — each one is
        quarantined on the index's health board and queries degrade
        with ``SHARD_FAILED`` instead of the open failing.  This is
        what ``sama serve`` uses; offline tools keep the strict
        default, where damage is a hard error.
        """
        if thesaurus is None:
            thesaurus = default_thesaurus()
        from ..index.sharded import ShardedIndex, is_sharded_dir
        if is_sharded_dir(directory):
            index = ShardedIndex.open(
                directory, thesaurus=thesaurus, read_latency=read_latency,
                on_damage="quarantine" if recover else "raise")
        else:
            index = PathIndex.open(directory, thesaurus=thesaurus,
                                   read_latency=read_latency)
        return cls(index, config=config, thesaurus=thesaurus)

    # -- query API ----------------------------------------------------------------

    def prepare(self, query, budget: "Budget | None" = None) -> PreparedQuery:
        """Coerce/parse ``query``, validate it, and decompose it (step 1).

        Raises a typed
        :class:`~repro.resilience.errors.InvalidQueryError` for queries
        that cannot be meaningfully evaluated (empty pattern, pattern
        binding no constants, disconnected query graph) — catching
        these up front keeps them from surfacing as confusing failures
        deep inside clustering.
        """
        with span("prepare"):
            graph = self._coerce_query(query)
            validate_query_graph(graph)
            return prepare_query(graph, limits=self.config.limits,
                                 budget=budget)

    def clusters(self, prepared: PreparedQuery,
                 budget: "Budget | None" = None) -> list[Cluster]:
        """Clustering (step 2) for an already prepared query.

        On the fast path a fresh per-query :class:`AlignmentMemo`
        deduplicates alignments across the query's paths, transcripts
        are skipped (the cluster stage only reads counts), and
        candidate alignment fans out onto the shared worker pool when
        pools are large enough.  With ``fast_path=False`` everything
        runs serial and transcript-recording — the pre-interning
        behaviour, kept for A/B measurement.
        """
        if self.config.fast_path:
            executor = shared_executor(self.config.workers)
            memo: AlignmentMemo = AlignmentMemo()
            transcript = False
        else:
            executor = None
            memo = AlignmentMemo.disabled()
            transcript = True
        from .clustering import SCATTER_THRESHOLD
        scatter_threshold = (self.config.scatter_threshold
                             if self.config.scatter_threshold is not None
                             else SCATTER_THRESHOLD)
        proc_pool = self.shard_pool() if self.config.fast_path else None
        with span("cluster"):
            return build_clusters(prepared, self.index,
                                  weights=self.config.weights,
                                  matcher=self.matcher,
                                  semantic_lookup=self.config.semantic_lookup,
                                  max_cluster_size=self.config.max_cluster_size,
                                  budget=budget,
                                  memo=memo,
                                  executor=executor,
                                  scatter_threshold=scatter_threshold,
                                  hedge_ms=self.config.hedge_ms,
                                  proc_pool=proc_pool,
                                  transcript=transcript,
                                  sketch_filter=self.sketch_filter(),
                                  quotient=(self.quotient_resolver()
                                            if self.config.fast_path
                                            else None))

    def query(self, query, k: "int | None" = None, *,
              deadline_ms: "float | None" = None,
              budget: "Budget | None" = None,
              on_budget: str = "partial") -> PartialResult:
        """Answer ``query``: the top-k answers, best (lowest score) first.

        The result is a :class:`PartialResult` — a plain ``list`` of
        answers with the degradation record attached.  With no budget
        it is always complete; ``deadline_ms`` (shorthand for
        ``Budget(deadline_ms=...)``) or an explicit ``budget`` arms
        cooperative cancellation across preprocessing, clustering and
        search.  When a limit trips, ``on_budget`` decides the
        contract:

        - ``"partial"`` (default): return the best answers found
          before the trip, with machine-readable reasons on
          ``result.reasons`` — a 0 ms deadline yields an *empty*
          partial result, never an exception;
        - ``"raise"``: raise
          :class:`~repro.resilience.errors.QueryTimeout` carrying the
          same reasons and partial answers.

        Example — the paper's Fig. 1 US-Congress graph, asking for
        male principal sponsors of bills amended by Carla Bunes'
        Health-Care amendments (Fig. 1(b)'s query ``Q1``; no exact
        match exists, so the best answers carry an approximation
        cost):

        >>> from repro.datasets.govtrack import govtrack_graph
        >>> from repro.engine import SamaEngine
        >>> engine = SamaEngine.from_graph(govtrack_graph())
        >>> answers = engine.query('''
        ...     PREFIX gov: <http://example.org/govtrack/>
        ...     SELECT ?v1 ?v2 ?v3 WHERE {
        ...         gov:CarlaBunes gov:sponsor ?v1 .
        ...         ?v1 gov:aTo ?v2 .
        ...         ?v2 gov:subject "Health Care" .
        ...         ?v3 gov:sponsor ?v2 .
        ...         ?v3 gov:gender "Male" .
        ...     }''', k=3)
        >>> answers.complete
        True
        >>> round(answers[0].score, 3)
        2.0
        >>> sorted(str(v) for v in answers[0].substitution())
        ['?v1', '?v2', '?v3']
        """
        if on_budget not in ("partial", "raise"):
            raise ValueError(f"on_budget must be 'partial' or 'raise', "
                             f"got {on_budget!r}")
        if deadline_ms is not None:
            if budget is not None:
                raise ValueError("pass either deadline_ms or budget, not both")
            budget = Budget(deadline_ms=deadline_ms)
        if budget is None:
            # An unlimited budget: no limit can trip, but fault-time
            # degradation (a failed shard's SHARD_FAILED) still has a
            # place to be recorded and flows to the PartialResult.
            budget = Budget()
        prepared = self.prepare(query, budget=budget)
        clusters = self.clusters(prepared, budget=budget)
        search_config = self.config.search
        if k is not None:
            search_config = replace(search_config, k=k)
        if not self.config.fast_path and search_config.interned:
            search_config = replace(search_config, interned=False)
        with span("search"):
            result = top_k(prepared, clusters, weights=self.config.weights,
                           config=search_config, budget=budget)
        self.last_result = result
        reasons = budget.reasons if budget is not None else result.degradation
        partial = PartialResult(result.answers, reasons=reasons)
        if partial.degraded and on_budget == "raise":
            raise QueryTimeout(
                "query budget exhausted: "
                + "; ".join(str(reason) for reason in partial.reasons),
                reasons=partial.reasons, partial=partial)
        return partial

    def select(self, query, k: "int | None" = None, *,
               deadline_ms: "float | None" = None,
               budget: "Budget | None" = None,
               on_budget: str = "partial"):
        """Answer a SPARQL SELECT and project the bindings rows.

        Returns a :class:`~repro.engine.results.ResultSet`: one row per
        ranked answer, shaped by the query's projection (and
        deduplicated under ``SELECT DISTINCT``).  ``query`` must be
        SPARQL text or a parsed :class:`SelectQuery` — a bare
        :class:`QueryGraph` has no projection to apply.  Budget
        arguments behave exactly as in :meth:`query`.
        """
        from .results import result_set

        if isinstance(query, str):
            query = parse_select(query)
        if not isinstance(query, SelectQuery):
            raise TypeError("select() needs SPARQL text or a SelectQuery; "
                            "use query() for bare query graphs")
        answers = self.query(query, k=k, deadline_ms=deadline_ms,
                             budget=budget, on_budget=on_budget)
        return result_set(query, answers)

    def explain(self, query, entries_per_cluster: int = 4,
                budget: "Budget | None" = None) -> PathForest:
        """The Fig. 4 forest of paths for ``query`` (diagnostics)."""
        prepared = self.prepare(query, budget=budget)
        clusters = self.clusters(prepared, budget=budget)
        with span("forest"):
            return PathForest(clusters, prepared.ig,
                              entries_per_cluster=entries_per_cluster,
                              budget=budget)

    def _coerce_query(self, query) -> QueryGraph:
        if isinstance(query, QueryGraph):
            return query
        if isinstance(query, SelectQuery):
            return query.graph()
        if isinstance(query, DataGraph):
            # A plain data graph is a fully-ground query.
            ground = QueryGraph(name=query.name)
            ground.add_triples(query.triples())
            return ground
        if isinstance(query, str):
            return parse_select(query).graph()
        raise TypeError(f"cannot interpret {type(query).__name__} as a query")

    # -- two-stage retrieval ---------------------------------------------------

    def sketch_filter(self):
        """The stage-1 candidate filter, or ``None`` (exhaustive recall).

        Built lazily from the persisted ``sketch.bin`` files when
        ``config.two_stage`` is ``"safe"`` or ``"approx"``, and rebuilt
        whenever the index epoch moves (an incremental round, a reopen
        after compaction) — a moved epoch orphans the loaded sketches,
        and the reload finds either fresh files or nothing, in which
        case recall silently falls back to exhaustive.  The returned
        callable wraps the pure filter with the ``sketch`` span and the
        ``sama_sketch_candidates_total`` / ``sama_sketch_pruned_total``
        counters, so clustering stays observability-free.
        """
        mode = self.config.two_stage
        if mode == "off":
            return None
        index = self.index
        epoch_vector = getattr(index, "epoch_vector", None)
        epoch_key = (tuple(epoch_vector) if epoch_vector is not None
                     else (getattr(index, "epoch", 0),))
        # Resolved before taking the sketch lock — the two lazy caches
        # stay lock-disjoint, so there is no ordering to get wrong.
        quotient = self.quotient_resolver()
        with self._sketch_lock:
            if self._sketch_epoch == epoch_key:
                return self._sketch_filter
            self._sketch_epoch = epoch_key
            self._sketch_filter = None
            if getattr(index, "interner", None) is None:
                return None     # in-memory indexes carry no sketches
            from ..obs import get_registry
            from ..sketch import SketchIndex, TwoStageFilter
            sketches = SketchIndex.for_index(index)
            if sketches is None:
                return None
            judge = TwoStageFilter(index, sketches, self.matcher,
                                   self.config.weights, mode,
                                   self.config.max_cluster_size,
                                   recall_target=self.config.recall_target,
                                   quotient=quotient)
            registry = get_registry()
            candidates_total = registry.counter(
                "sama_sketch_candidates_total",
                "Candidates entering the two-stage sketch filter")
            pruned_total = registry.counter(
                "sama_sketch_pruned_total",
                "Candidates pruned by the sketch filter before exact "
                "lambda/psi scoring")

            def filtered(query_path, offsets, trim_to_anchor, anchor):
                with span("sketch"):
                    kept = judge(query_path, offsets, trim_to_anchor, anchor)
                candidates_total.inc(len(offsets))
                pruned_total.inc(len(offsets) - len(kept))
                return kept

            self._sketch_filter = filtered
        return self._sketch_filter

    # -- quotient compression --------------------------------------------------

    def quotient_resolver(self):
        """The class-compression hook, or ``None`` (per-path scoring).

        Built lazily from the persisted ``quotient.bin`` files when
        ``config.quotient`` is ``"auto"``, and rebuilt whenever the
        index epoch moves (an incremental round, a reopen after
        compaction) — a moved epoch orphans the loaded classes, and
        the reload finds either fresh files or nothing, in which case
        scoring silently falls back to per-path alignment: the exact
        contract ``sketch.bin`` established.  Loading refreshes the
        ``sama_quotient_classes`` / ``sama_quotient_paths`` /
        ``sama_quotient_compression_ratio`` gauges, so ``/stats``
        reports the live compression.
        """
        if self.config.quotient == "off":
            return None
        index = self.index
        epoch_vector = getattr(index, "epoch_vector", None)
        epoch_key = (tuple(epoch_vector) if epoch_vector is not None
                     else (getattr(index, "epoch", 0),))
        with self._quotient_lock:
            if self._quotient_epoch == epoch_key:
                return self._quotient_resolver
            self._quotient_epoch = epoch_key
            self._quotient_resolver = None
            if getattr(index, "interner", None) is None:
                return None     # in-memory indexes carry no quotients
            from ..obs import get_registry
            from ..quotient import QuotientIndex, QuotientResolver
            quotients = QuotientIndex.for_index(index)
            if quotients is None:
                return None
            registry = get_registry()
            registry.gauge(
                "sama_quotient_classes",
                "Equality-pattern equivalence classes loaded from "
                "quotient.bin files").set(quotients.class_count)
            registry.gauge(
                "sama_quotient_paths",
                "Stored paths covered by loaded quotient.bin files",
            ).set(quotients.path_count)
            registry.gauge(
                "sama_quotient_compression_ratio",
                "Stored paths per equivalence class across loaded "
                "quotients").set(quotients.compression_ratio)
            self._quotient_resolver = QuotientResolver(
                index, quotients, self.matcher)
        return self._quotient_resolver

    # -- execution mode --------------------------------------------------------

    def shard_pool(self) -> "ProcessShardPool | None":
        """The per-shard worker pool, or ``None`` outside procs mode.

        Created once per engine, on first use, when the effective
        worker mode (``config.worker_mode``, else ``SAMA_WORKER_MODE``,
        else threads) is ``"procs"`` and the index is sharded across
        more than one shard — a single shard has nothing to fan out.
        The pool survives ``cold_cache()`` on purpose: workers hold
        their columnar views for the life of the engine, which is the
        point of the execution mode.
        """
        if self._proc_pool is not None:
            return self._proc_pool
        if resolve_worker_mode(self.config.worker_mode) != "procs":
            return None
        index = self.index
        if not getattr(index, "is_sharded", False) or index.shard_count < 2:
            return None
        with self._pool_lock:
            if self._proc_pool is None:
                self._proc_pool = ProcessShardPool(
                    index.directory, index.shard_count,
                    thesaurus=self.thesaurus,
                    matcher_level=self.config.matcher_level)
        return self._proc_pool

    def warm_workers(self) -> None:
        """Spawn procs-mode shard workers now and wait until ready.

        Concentrates worker startup (process spawn + columnar build) at
        open time instead of the first query; a no-op in threads mode.
        """
        pool = self.shard_pool()
        if pool is not None:
            pool.warm()

    # -- cache control (cold / warm experiments) --------------------------------------

    def cold_cache(self) -> None:
        """Reset the engine to the cold-cache condition of §6.2."""
        self.index.clear_cache()
        if isinstance(self.matcher, SemanticMatcher):
            self.matcher = self._build_matcher()

    def warm_cache(self) -> None:
        """Pre-fault the whole index (warm-cache condition)."""
        self.index.warm_up()

    def close(self) -> None:
        pool, self._proc_pool = self._proc_pool, None
        if pool is not None:
            pool.close()
        self.index.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return f"<SamaEngine over {self.index!r}>"
