"""Top-k answer generation (§5, step 3).

The search combines one entry per cluster into answers, emitting the k
best by total score without enumerating the whole combination space.
It is an A* join driven by the intersection query graph:

- clusters are joined in connectivity order (most IG-connected first),
  so every newly decided path is immediately scored against decided
  neighbours — conformity guides the search instead of being checked
  after the fact (this is the role the paper's *forest of paths* plays:
  combinations grow along IG edges, preferring solid, conforming ones);
- a partial state's priority is its exact cost so far (λ of decided
  entries + ψ of fully decided IG pairs) plus an admissible estimate of
  the remainder (per-cluster minimum λ + per-edge conformity floor);
- successor enumeration is lazy (best child + next-sibling cursor), so
  popping a state costs one sort of its candidate list, once;
- complete states are buffered and emitted only when their score is ≤
  every bound still in the frontier, so the emitted sequence is exactly
  the top-k in non-decreasing score order.  This *structural*
  monotonicity is why the paper's reciprocal-rank experiment (§6.3)
  reports RR = 1 everywhere.

Empty clusters contribute a "missing" slot priced by
:func:`~repro.engine.clustering.missing_path_penalty`; IG pairs with a
missing side pay the full conformity penalty ``e·|χ(q_i, q_j)|``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from ..paths.intersection import chi
from ..resilience.budget import Budget, DegradationCause, DegradationReason
from ..scoring.weights import PAPER_WEIGHTS, ScoringWeights
from .answers import Answer
from .clustering import Cluster, ClusterEntry
from .preprocess import PreparedQuery

#: Rank used for the "missing" slot of an empty cluster.
_MISSING = -1

#: Cluster-prefix size sampled when estimating each IG edge's best
#: achievable |χ| (the denominator of its conformity floor).
_FLOOR_SAMPLE = 64


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the top-k search.

    ``max_expansions`` bounds frontier pops (a safety valve; the count
    is reported on the result and ``exhausted`` turns False when hit).
    ``strict_bindings`` drops combinations whose paths disagree on a
    shared variable instead of merely penalising them.  ``dedupe``
    collapses answers covering the same triple set, keeping the best.

    ``sibling_limit`` bounds how many children of one partial state the
    search may explore (children are cost-sorted, so only the tail is
    sacrificed); ``None`` explores everything — exact but potentially
    slow on clusters with thousands of λ-tied entries.  ``patience``
    force-emits the best buffered answer after that many expansions
    without an emission: the conformity floor of the A* bound is loose,
    so on adversarial plateaus the proof-of-optimality phase can cost
    far more than finding the answers; patience trades the guarantee
    for a hard latency bound (forced emissions are counted on the
    result).  ``None`` disables it.

    ``interned`` lets χ/ψ intersect the dense label-id sets attached by
    the index's :class:`~repro.index.labels.LabelInterner` instead of
    Term sets.  Rankings and scores are identical either way (interning
    is injective); the flag exists so benchmarks and equivalence tests
    can run the pre-interning path.
    """

    k: int = 10
    max_expansions: int = 100_000
    strict_bindings: bool = False
    dedupe: bool = True
    sibling_limit: "int | None" = 64
    patience: "int | None" = 250
    interned: bool = True


@dataclass
class SearchResult:
    """The ranked answers plus search effort counters.

    ``forced_emissions`` counts answers emitted by the patience rule
    before their optimality proof completed (0 = fully proven order).
    ``degradation`` records why the search stopped early, when it did —
    budget trips and the ``max_expansions`` safety valve both land
    here, so ``exhausted=False`` always comes with a reason.
    """

    answers: list[Answer]
    expansions: int = 0
    generated: int = 0
    exhausted: bool = True
    forced_emissions: int = 0
    degradation: tuple[DegradationReason, ...] = ()

    def __iter__(self):
        return iter(self.answers)

    def __len__(self):
        return len(self.answers)

    def __getitem__(self, item):
        return self.answers[item]


class _JoinSpace:
    """Shared immutable context of one top-k search."""

    def __init__(self, prepared: PreparedQuery, clusters: list[Cluster],
                 weights: ScoringWeights, interned: bool = True):
        self.prepared = prepared
        self.clusters = clusters
        self.weights = weights
        self.interned = interned
        self.order = _join_order(prepared, clusters)
        # position_of[cluster index] = depth at which it is decided.
        self.position_of = {cluster: depth
                            for depth, cluster in enumerate(self.order)}
        self.edge_penalty: dict[tuple[int, int], float] = {
            (i, j): weights.conformity * len(shared)
            for i, j, shared in prepared.ig.edges()}
        # Per-edge conformity floor.  An edge into an *empty* cluster
        # always pays the full penalty (its side is forcibly missing),
        # so the floor is exact there.  Elsewhere the floor divides by
        # the largest |χ| observed over the two clusters' best-entry
        # prefixes: the true maximum over the full clusters could in
        # principle exceed the sampled one, but the prefixes are where
        # the search actually lives, and a tight floor is what stops
        # A* from grinding λ-plateaus before completing a combination.
        self.edge_floor: dict[tuple[int, int], float] = {}
        for (i, j), penalty in self.edge_penalty.items():
            entries_i = clusters[i].entries
            entries_j = clusters[j].entries
            if not entries_i or not entries_j:
                self.edge_floor[(i, j)] = penalty
                continue
            cap = 0
            sample_i = entries_i[:_FLOOR_SAMPLE]
            sample_j = entries_j[:_FLOOR_SAMPLE]
            # One key space per edge: ids only when every sampled path
            # on both sides carries them (mixed spaces would intersect
            # to nothing and overstate the floor).
            sets_i = sets_j = None
            if interned:
                sets_i = [e.node_label_id_set() for e in sample_i]
                sets_j = [e.node_label_id_set() for e in sample_j]
                if None in sets_i or None in sets_j:
                    sets_i = sets_j = None
            if sets_i is None:
                sets_i = [e.node_label_set() for e in sample_i]
                sets_j = [e.node_label_set() for e in sample_j]
            for labels_i in sets_i:
                for labels_j in sets_j:
                    common = len(labels_i & labels_j)
                    if common > cap:
                        cap = common
            self.edge_floor[(i, j)] = penalty / cap if cap else penalty
        self.min_lambda = [
            cluster.entries[0].score if cluster.entries
            else cluster.missing_penalty
            for cluster in clusters]
        # h(depth): optimistic remainder after ``depth`` clusters decided.
        self.tail_estimate = self._tail_estimates()
        # Pairwise-ψ cache keyed on packed entry uids.  The packing
        # stride is derived from the actual uid population — a fixed
        # 2^20 stride silently collided (and returned a wrong cached
        # intersection) once a clustering run handed out uids past it.
        self._uid_stride = 1 + max(
            (entry.uid for cluster in clusters for entry in cluster.entries),
            default=0)
        self._pair_cache: dict[int, int] = {}
        # Edges settled when the cluster at each join depth is decided:
        # (other cluster index, penalty) — ψ against anything else is
        # irrelevant while scoring that depth's candidates.
        self.settled_edges: list[list[tuple[int, float]]] = [
            [] for _ in self.order]
        for (i, j), penalty in self.edge_penalty.items():
            pos_i, pos_j = self.position_of[i], self.position_of[j]
            late, early = ((i, j) if pos_i > pos_j else (j, i))
            self.settled_edges[self.position_of[late]].append((early, penalty))
        # Candidate lists depend only on (depth, the decided entries on
        # that depth's settled edges) — states sharing those share the
        # list, which this cache exploits.
        self._candidate_cache: dict[tuple, list[tuple[float, int, int]]] = {}
        # Per-cluster inverted index: node label key → entry ranks, used
        # to find the entries that *intersect* an anchor path without
        # scanning the whole cluster.  Built lazily per cluster.
        self._buckets: dict[int, tuple[dict, dict]] = {}

    def buckets_of(self, cluster_index: int) -> tuple[dict, dict]:
        """Inverted index of one cluster: label key → entry ranks.

        Keys are interned label ids when the cluster's paths carry them
        (C-speed int hashing), the Term labels otherwise.  The second
        dict maps each key to the label's lexical form — the
        deterministic tie-break of the rarest-label ordering, identical
        in both key spaces so interned and Term-based runs score the
        same candidate pools.
        """
        cached = self._buckets.get(cluster_index)
        if cached is None:
            buckets: dict = {}
            names: dict = {}
            for rank, entry in enumerate(self.clusters[cluster_index].entries):
                for key, name in entry.bucket_labels(self.interned):
                    buckets.setdefault(key, []).append(rank)
                    names.setdefault(key, name)
            cached = (buckets, names)
            self._buckets[cluster_index] = cached
        return cached

    def _longest(self, cluster_index: int) -> int:
        entries = self.clusters[cluster_index].entries
        return max((entry.path_length for entry in entries), default=0)

    def _tail_estimates(self) -> list[float]:
        depth_count = len(self.order)
        estimates = [0.0] * (depth_count + 1)
        for depth in range(depth_count - 1, -1, -1):
            estimates[depth] = (estimates[depth + 1]
                                + self.min_lambda[self.order[depth]])
        # Conformity floors attach to the depth at which the edge's
        # *second* endpoint is decided (that's when its ψ becomes exact).
        for (i, j), floor in self.edge_floor.items():
            settled = max(self.position_of[i], self.position_of[j])
            for depth in range(settled + 1):
                estimates[depth] += floor
        return estimates

    def entry(self, cluster_index: int, rank: int) -> "ClusterEntry | None":
        if rank == _MISSING:
            return None
        return self.clusters[cluster_index].entries[rank]

    def common_nodes(self, entry_a: ClusterEntry, entry_b: ClusterEntry) -> int:
        uid_a, uid_b = entry_a.uid, entry_b.uid
        key = uid_a * self._uid_stride + uid_b if uid_a <= uid_b \
            else uid_b * self._uid_stride + uid_a
        cached = self._pair_cache.get(key)
        if cached is None:
            labels_a, labels_b = self.chi_operands(entry_a, entry_b)
            cached = len(labels_a & labels_b)
            self._pair_cache[key] = cached
        return cached

    def chi_operands(self, entry_a, entry_b) -> tuple[frozenset, frozenset]:
        if self.interned:
            ids_a = entry_a.node_label_id_set()
            if ids_a is not None:
                ids_b = entry_b.node_label_id_set()
                if ids_b is not None:
                    return ids_a, ids_b
        return entry_a.node_label_set(), entry_b.node_label_set()

    def psi_of_pair(self, entry: "ClusterEntry | None",
                    other: "ClusterEntry | None",
                    penalty: float) -> tuple[float, bool]:
        """(ψ of one IG edge, whether the pair is broken)."""
        if entry is None or other is None:
            return penalty, True
        common = self.common_nodes(entry, other)
        if common == 0:
            return penalty, True
        return penalty / common, False


def _join_order(prepared: PreparedQuery, clusters: list[Cluster]) -> list[int]:
    """Decide clusters most-connected-first, growing along IG edges."""
    count = len(clusters)
    if count == 0:
        return []
    ig = prepared.ig
    remaining = set(range(count))

    def degree(index: int) -> int:
        return len(ig.neighbors(index))

    order = []
    seed = max(remaining, key=lambda i: (degree(i), -len(clusters[i].entries),
                                         -i))
    order.append(seed)
    remaining.discard(seed)
    while remaining:
        def connectivity(index: int) -> int:
            return sum(1 for decided in order if ig.has_edge(index, decided))
        best = max(remaining, key=lambda i: (connectivity(i), degree(i), -i))
        order.append(best)
        remaining.discard(best)
    return order


class _PartialState:
    """A prefix of the join: entries decided for ``order[:depth]``."""

    __slots__ = ("depth", "ranks", "cost", "broken", "candidates")

    def __init__(self, depth: int, ranks: tuple[int, ...], cost: float,
                 broken: int):
        self.depth = depth
        self.ranks = ranks            # rank per decided cluster, join order
        self.cost = cost              # exact Λ + settled Ψ so far
        self.broken = broken
        self.candidates: "list[tuple[float, int, int]] | None" = None


def top_k(prepared: PreparedQuery, clusters: list[Cluster],
          weights: ScoringWeights = PAPER_WEIGHTS,
          config: SearchConfig = SearchConfig(),
          budget: "Budget | None" = None) -> SearchResult:
    """Generate the top-k answers for a prepared query over its clusters.

    ``budget`` adds cooperative cancellation to the A* loop: each
    frontier pop is charged (deadline checks are strided inside the
    budget), and when a limit trips the search stops where it is and
    returns the answers proven (or buffered) so far, with the reason
    recorded both on the budget and on ``SearchResult.degradation``.
    """
    if len(clusters) != len(prepared.paths):
        raise ValueError(f"need one cluster per query path: "
                         f"{len(clusters)} vs {len(prepared.paths)}")
    if not clusters:
        return SearchResult(answers=[], exhausted=True)

    space = _JoinSpace(prepared, clusters, weights,
                       interned=config.interned)
    depth_total = len(clusters)
    tie = itertools.count()

    root = _PartialState(0, (), 0.0, 0)
    # Heap items: (bound, tie, state, sibling_index).  sibling_index is
    # the position in state.candidates this item will expand; the root
    # enters with index 0 and, when popped, re-enqueues index + 1.
    frontier: list[tuple[float, int, int, _PartialState, int]] = []
    _enqueue_child(frontier, space, root, 0, tie, config)

    buffered: list[tuple[float, int, int, Answer]] = []
    emitted: list[Answer] = []
    signatures: set[frozenset] = set()
    expansions = 0
    generated = 0
    exhausted = True
    forced = 0
    since_emission = 0
    degradation: list[DegradationReason] = []

    def emit_one() -> bool:
        """Pop the buffered best into the output; False if deduped away."""
        _score, _broken, _t, answer = heapq.heappop(buffered)
        if config.dedupe:
            signature = answer.signature()
            if signature in signatures:
                return False
            signatures.add(signature)
        emitted.append(answer)
        return True

    def drain(force: bool = False) -> int:
        floor = frontier[0][0] if frontier else float("inf")
        count = 0
        while buffered and len(emitted) < config.k:
            # Strict: a frontier state whose bound *equals* the buffered
            # score could still tie it with fewer broken pairs, so the
            # plateau is expanded first (the patience rule bounds how
            # long that may take).
            if not force and buffered[0][0] >= floor:
                break
            if emit_one():
                count += 1
        return count

    while frontier and len(emitted) < config.k:
        if expansions >= config.max_expansions:
            exhausted = False
            degradation.append(DegradationReason(
                DegradationCause.EXPANSION_CAP, "search",
                f"max_expansions={config.max_expansions}"))
            break
        if budget is not None:
            reason = budget.charge_expansion()
            if reason is not None:
                exhausted = False
                degradation.append(reason)
                break
        _bound, _depth, _t, parent, sibling_index = heapq.heappop(frontier)
        expansions += 1
        since_emission += 1
        # Re-enqueue the parent's next-best child (the cursor trick).
        _enqueue_child(frontier, space, parent, sibling_index + 1, tie, config)
        child = _make_child(space, parent, sibling_index)
        if child.depth == depth_total:
            answer = _materialize(space, child)
            if answer is not None and not (config.strict_bindings
                                           and not answer.is_coherent):
                generated += 1
                heapq.heappush(buffered, (answer.score, answer.broken_pairs,
                                          next(tie), answer))
        else:
            _enqueue_child(frontier, space, child, 0, tie, config)
        if drain():
            since_emission = 0
        elif (config.patience is not None
                and since_emission >= config.patience):
            # The search is stalling: answers exist (or can be made to
            # exist) but the optimality proof can't close on the λ-tie
            # plateau.  Switch to greedy-finish: repeatedly complete
            # the best-bound frontier state and emit — an anytime
            # cutover bounding query latency at ~patience expansions
            # total rather than per answer.  The final sort below
            # orders whatever was found best-first.
            while len(emitted) < config.k and (buffered or frontier):
                if budget is not None:
                    reason = budget.poll("search")
                    if reason is not None:
                        exhausted = False
                        degradation.append(reason)
                        break
                if frontier:
                    _b, _d, _t2, dive_parent, dive_sibling = \
                        heapq.heappop(frontier)
                    answer = _materialize(
                        space, _greedy_complete(space, dive_parent,
                                                dive_sibling, depth_total,
                                                config))
                    if answer is not None and not (
                            config.strict_bindings
                            and not answer.is_coherent):
                        generated += 1
                        heapq.heappush(buffered,
                                       (answer.score, answer.broken_pairs,
                                        next(tie), answer))
                if buffered and emit_one():
                    forced += 1
            break

    drain(force=True)
    # Forced (patience) emissions can leave the list locally out of
    # order; the delivered ranking is the sorted one.
    emitted.sort(key=lambda answer: (answer.score, answer.broken_pairs))
    return SearchResult(answers=emitted, expansions=expansions,
                        generated=generated, exhausted=exhausted,
                        forced_emissions=forced,
                        degradation=tuple(degradation))


def _candidates_of(space: _JoinSpace, state: _PartialState,
                   limit: "int | None") -> list[tuple[float, int, int]]:
    """Sorted candidate children of a partial state.

    Each item is ``(cost increment, broken increment, rank)`` for the
    cluster decided at ``state.depth``; the increment is exact — the
    entry's λ plus the ψ of the IG edges this decision settles — so
    parent cost + increment is again an exact prefix cost.  With a
    ``limit`` only the best ``limit`` children are kept (heap
    selection, O(C log limit)); the discarded tail has the worst
    increments.

    Only the entries decided on this depth's *settled edges* influence
    the scores, so the list is memoised on them: sibling states that
    differ elsewhere share one computation.
    """
    depth = state.depth
    cluster_index = space.order[depth]
    cluster = space.clusters[cluster_index]
    settled = space.settled_edges[depth]
    # The decided entries that matter here (settled-edge endpoints).
    anchors: list[tuple["ClusterEntry | None", float]] = []
    cache_key: list = [depth, limit]
    for other_index, penalty in settled:
        entry = space.entry(other_index,
                            state.ranks[space.position_of[other_index]])
        anchors.append((entry, penalty))
        cache_key.append(entry.uid if entry is not None else _MISSING)
    key = tuple(cache_key)
    cached = space._candidate_cache.get(key)
    if cached is not None:
        return cached

    def increments(entry: "ClusterEntry | None", base: float,
                   ) -> tuple[float, int]:
        psi_total = 0.0
        broken_total = 0
        for other_entry, penalty in anchors:
            psi, is_broken = space.psi_of_pair(entry, other_entry, penalty)
            psi_total += psi
            broken_total += is_broken
        return base + psi_total, broken_total

    if not cluster.entries:
        cost, broken = increments(None, cluster.missing_penalty)
        result = [(cost, broken, _MISSING)]
    else:
        ranks = _evaluation_pool(space, cluster_index, anchors, limit)
        entries = cluster.entries
        # Interned fast path: the ψ of every settled edge is an int-set
        # intersection, inlined here — the generic increments() chain
        # (psi_of_pair → common_nodes → chi_operands) costs several
        # Python calls and a pair-cache probe per pair, which dominates
        # this loop on large pools.  Anchor id-sets are hoisted; an
        # anchor entry without ids (foreign path) falls back to the
        # generic chain.  Floats are combined in the same order as
        # increments(), so both paths produce bit-identical costs.
        anchor_sets: "list | None" = None
        if space.interned:
            anchor_sets = []
            for other_entry, penalty in anchors:
                if other_entry is None:
                    anchor_sets.append((None, penalty))
                    continue
                ids = other_entry.node_label_id_set()
                if ids is None:
                    anchor_sets = None
                    break
                anchor_sets.append((ids, penalty))
        scored = []
        if anchor_sets is not None:
            for rank in ranks:
                entry = entries[rank]
                ids = entry.node_label_id_set()
                if ids is None:
                    cost, broken = increments(entry, entry.score)
                    scored.append((cost, broken, rank))
                    continue
                psi_total = 0.0
                broken = 0
                for other_ids, penalty in anchor_sets:
                    if other_ids is not None:
                        common = len(ids & other_ids)
                        if common:
                            psi_total += penalty / common
                            continue
                    psi_total += penalty
                    broken += 1
                scored.append((entry.score + psi_total, broken, rank))
        else:
            for rank in ranks:
                entry = entries[rank]
                cost, broken = increments(entry, entry.score)
                scored.append((cost, broken, rank))
        if limit is None:
            scored.sort()
            result = scored
        else:
            result = heapq.nsmallest(limit, scored)
    space._candidate_cache[key] = result
    return result


def _evaluation_pool(space: _JoinSpace, cluster_index: int,
                     anchors: list[tuple["ClusterEntry | None", float]],
                     limit: "int | None") -> list[int]:
    """The entry ranks worth scoring exactly against these anchors.

    With no ``limit`` every rank is scored (exact search).  Otherwise
    the pool combines (a) entries *intersecting* an anchor path, found
    through the cluster's label buckets rarest-label-first — these are
    the conformity-friendly candidates ψ rewards — and (b) the λ-order
    prefix, which dominates among the non-intersecting entries because
    their ψ penalty is uniform.  The pool is capped at ``4·limit`` (at
    least 256): beyond it, candidates are either worse in λ than the
    whole prefix or no better in ψ than the pooled intersecting ones.
    """
    cluster = space.clusters[cluster_index]
    total = len(cluster.entries)
    if limit is None:
        return list(range(total))
    cap = max(2 * limit, 128)
    if total <= cap:
        return list(range(total))
    pool: list[int] = []
    seen: set[int] = set()
    buckets, names = space.buckets_of(cluster_index)
    anchor_labels = set()
    for entry, _penalty in anchors:
        if entry is not None:
            ids = entry.node_label_id_set() if space.interned else None
            anchor_labels |= ids if ids is not None \
                else entry.node_label_set()
    # Rarest labels first: a label shared with few entries pinpoints
    # the genuinely related candidates (specific entities), while a
    # label shared with thousands (class nodes) carries no signal.
    # The tie-break is the label's lexical form in both key spaces, so
    # interned and Term-based runs pool identical candidates.
    for label in sorted(anchor_labels,
                        key=lambda l: (len(buckets.get(l, ())),
                                       names.get(l) or str(l))):
        for rank in buckets.get(label, ()):
            if rank not in seen:
                seen.add(rank)
                pool.append(rank)
                if len(pool) >= cap // 2:
                    break
        if len(pool) >= cap // 2:
            break
    for rank in range(total):
        if len(pool) >= cap:
            break
        if rank not in seen:
            seen.add(rank)
            pool.append(rank)
    return pool


def _enqueue_child(frontier, space: _JoinSpace, state: _PartialState,
                   sibling_index: int, tie, config: SearchConfig) -> None:
    if state.candidates is None:
        state.candidates = _candidates_of(space, state, config.sibling_limit)
    if sibling_index >= len(state.candidates):
        return
    increment, _broken, _rank = state.candidates[sibling_index]
    # Bound: exact cost through the child (parent cost + λ of the entry
    # + ψ of the edges it settles) plus the optimistic remainder at the
    # child's depth (min λ of undecided clusters + floors of edges not
    # yet settled).  increment ≥ min λ + settled floors, so bounds are
    # non-decreasing along any path — the A* frontier is consistent.
    # Ties break deepest-first: on the λ-tie plateaus typical of large
    # clusters, insertion-order ties would explore the plateau
    # breadth-first and never complete a combination.
    bound = state.cost + increment + space.tail_estimate[state.depth + 1]
    heapq.heappush(frontier,
                   (bound, -(state.depth + 1), next(tie), state, sibling_index))


def _greedy_complete(space: _JoinSpace, state: _PartialState,
                     sibling_index: int, depth_total: int,
                     config: SearchConfig) -> _PartialState:
    """Complete a partial state by always taking the best child.

    The anytime fallback of the patience rule: from the frontier's best
    partial state, dive straight to a full combination.  The result is
    not provably optimal — it is the best *greedy* completion — but it
    guarantees the search can always emit an answer.
    """
    if state.candidates is None:
        state.candidates = _candidates_of(space, state, config.sibling_limit)
    current = _make_child(space, state,
                          min(sibling_index, len(state.candidates) - 1))
    while current.depth < depth_total:
        if current.candidates is None:
            current.candidates = _candidates_of(space, current,
                                                config.sibling_limit)
        current = _make_child(space, current, 0)
    return current


def _make_child(space: _JoinSpace, parent: _PartialState,
                sibling_index: int) -> _PartialState:
    increment, broken, rank = parent.candidates[sibling_index]
    return _PartialState(parent.depth + 1, parent.ranks + (rank,),
                         parent.cost + increment, parent.broken + broken)


def _materialize(space: _JoinSpace, state: _PartialState) -> "Answer | None":
    """Build the Answer for a complete join state."""
    entries: list["ClusterEntry | None"] = [None] * len(space.clusters)
    quality = 0.0
    conformity = 0.0
    covered = 0
    for depth, cluster_index in enumerate(space.order):
        entry = space.entry(cluster_index, state.ranks[depth])
        entries[cluster_index] = entry
        if entry is None:
            quality += space.clusters[cluster_index].missing_penalty
        else:
            quality += entry.score
            covered += 1
    if covered == 0:
        return None
    # Recompute Ψ exactly over all IG edges (cheap; uses the pair cache).
    broken = 0
    for (i, j), penalty in space.edge_penalty.items():
        entry_i, entry_j = entries[i], entries[j]
        if entry_i is None or entry_j is None:
            conformity += penalty
            broken += 1
            continue
        common = space.common_nodes(entry_i, entry_j)
        if common == 0:
            conformity += penalty
            broken += 1
        else:
            conformity += penalty / common
    return Answer(entries=tuple(entries),
                  query_paths=tuple(space.prepared.paths),
                  quality=quality, conformity=conformity,
                  broken_pairs=broken)
