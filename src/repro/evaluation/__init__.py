"""Evaluation harness: metrics, ground truth, timing, and the runner.

Regenerates every table and figure of §6; see
``python -m repro.evaluation.runner --help`` (or the ``sama-bench``
console script).
"""

from .ground_truth import (GroundTruth, RelevanceOracle, answer_data_nodes,
                           relax_query)
from .matches import MatchCount, baseline_match_count, sama_match_count
from .metrics import (PrecisionRecallPoint, STANDARD_RECALL_LEVELS,
                      average_interpolated, average_precision,
                      interpolated_precision, precision_recall_curve,
                      reciprocal_rank)
from .scalability import (QuadraticFit, SweepPoint, quadratic_fit,
                          retrieved_path_count, sweep_data_size,
                          sweep_query_nodes, sweep_variable_count)
from .timing import (TimingSample, time_baseline, time_callable, time_cold,
                     time_warm)

__all__ = [
    "GroundTruth", "MatchCount", "PrecisionRecallPoint", "QuadraticFit",
    "RelevanceOracle", "STANDARD_RECALL_LEVELS", "SweepPoint",
    "TimingSample", "answer_data_nodes", "average_interpolated",
    "average_precision", "baseline_match_count", "interpolated_precision",
    "precision_recall_curve", "quadratic_fit", "reciprocal_rank",
    "relax_query", "retrieved_path_count", "sama_match_count",
    "sweep_data_size", "sweep_query_nodes", "sweep_variable_count",
    "time_baseline", "time_callable", "time_cold", "time_warm",
]
