"""The relevance oracle: a stand-in for the paper's domain experts.

§6.3 says "the evaluation of the matches was performed by experts of
the domain (e.g. LUBM)".  No experts are available offline, so the
oracle derives ground truth mechanically, in the spirit of Definition 4
(minimal-transformation answers are the relevant ones):

1. exact matches of the query are relevant (relaxation level 0);
2. if a query has no exact match, the oracle enumerates *relaxations* —
   dropping one triple, or widening one constant to a variable — and
   takes the exact matches of the minimally relaxed variants as
   relevant (level 1, then level 2 if still empty).

A system's answer is judged relevant when it covers a ground-truth
embedding: the overlap between the answer's data nodes and a relevant
embedding's nodes, relative to the embedding, reaches
``overlap_threshold`` (1.0 = strict containment; the default 0.8
tolerates an uncovered fringe node, the way a human judge would).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..baselines.dogma import DogmaMatcher
from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.terms import Variable


@dataclass(frozen=True)
class GroundTruth:
    """The relevant embeddings for one query, with their relaxation level."""

    embeddings: tuple[frozenset[int], ...]
    relaxation_level: int

    def __len__(self):
        return len(self.embeddings)

    @property
    def is_empty(self) -> bool:
        return not self.embeddings


@dataclass
class RelevanceOracle:
    """Derives and applies ground truth over one data graph."""

    graph: DataGraph
    overlap_threshold: float = 0.8
    max_relaxation: int = 2
    max_variants: int = 60
    max_matches_per_variant: int = 200
    _matcher: "DogmaMatcher | None" = field(default=None, repr=False)
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not 0.0 < self.overlap_threshold <= 1.0:
            raise ValueError("overlap_threshold must be in (0, 1]")

    @property
    def matcher(self) -> DogmaMatcher:
        if self._matcher is None:
            self._matcher = DogmaMatcher(self.graph)
        return self._matcher

    # -- ground truth construction ------------------------------------------

    def ground_truth(self, query: QueryGraph, key=None) -> GroundTruth:
        """The relevant embeddings of ``query`` (cached by ``key``)."""
        if key is not None and key in self._cache:
            return self._cache[key]
        truth = self._derive(query)
        if key is not None:
            self._cache[key] = truth
        return truth

    def _derive(self, query: QueryGraph) -> GroundTruth:
        frontier = [query]
        for level in range(self.max_relaxation + 1):
            embeddings: set[frozenset[int]] = set()
            for variant in frontier:
                for match in self.matcher.search(
                        variant, limit=self.max_matches_per_variant):
                    embeddings.add(match.data_nodes())
            if embeddings:
                return GroundTruth(tuple(sorted(embeddings, key=sorted)),
                                   relaxation_level=level)
            next_frontier = []
            for variant in frontier:
                next_frontier.extend(relax_query(variant))
                if len(next_frontier) >= self.max_variants:
                    break
            frontier = next_frontier[:self.max_variants]
            if not frontier:
                break
        return GroundTruth((), relaxation_level=self.max_relaxation)

    # -- judging answers -----------------------------------------------------------

    def judge_nodes(self, truth: GroundTruth,
                    answer_nodes: frozenset[int]) -> bool:
        """True when the answer covers some relevant embedding."""
        for embedding in truth.embeddings:
            if not embedding:
                continue
            overlap = len(embedding & answer_nodes) / len(embedding)
            if overlap >= self.overlap_threshold:
                return True
        return False

    def judge_sama_answer(self, truth: GroundTruth, answer) -> bool:
        """Judge a :class:`repro.engine.answers.Answer` (path-based)."""
        return self.judge_nodes(truth, answer_data_nodes(answer))

    def judge_match(self, truth: GroundTruth, match) -> bool:
        """Judge a :class:`repro.baselines.base.GraphMatch` (embedding)."""
        return self.judge_nodes(truth, match.data_nodes())


def answer_data_nodes(answer) -> frozenset[int]:
    """The data node ids a Sama answer touches."""
    nodes: set[int] = set()
    for entry in answer.entries:
        if entry is None or entry.path.node_ids is None:
            continue
        nodes.update(entry.path.node_ids)
    return frozenset(nodes)


def relax_query(query: QueryGraph) -> list[QueryGraph]:
    """All one-step relaxations of a query graph.

    A relaxation either (a) deletes one triple pattern, provided at
    least one pattern remains, or (b) replaces one constant node label
    with a fresh variable.  These are the τ-operations of Definition 3
    applied in reverse to the query, i.e. the ways a domain expert
    would loosen an over-specified question.
    """
    patterns = list(query.triples())
    variants: list[QueryGraph] = []
    fresh = itertools.count()
    existing = {v.value for v in query.variables()}

    def fresh_variable() -> Variable:
        while True:
            name = f"relax{next(fresh)}"
            if name not in existing:
                return Variable(name)

    # (a) drop one pattern.
    if len(patterns) > 1:
        for index in range(len(patterns)):
            variant = QueryGraph(name=f"{query.name}/drop{index}")
            variant.add_triples(p for i, p in enumerate(patterns)
                                if i != index)
            variants.append(variant)

    # (b) widen one constant node label to a variable.
    constants = sorted({label for label in query.node_labels()
                        if not label.is_variable}, key=str)
    for constant in constants:
        replacement = fresh_variable()
        variant = QueryGraph(name=f"{query.name}/widen-{constant}")
        for subject, predicate, object_ in patterns:
            subject = replacement if subject == constant else subject
            object_ = replacement if object_ == constant else object_
            variant.add_triple(subject, predicate, object_)
        variants.append(variant)
    return variants
