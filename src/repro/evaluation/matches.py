"""Match counting (Fig. 8): how many meaningful matches each system finds.

The paper runs the 12 queries "without imposing the number k of
solutions" and counts the matches each system identifies; Sama and
SAPPER find more than BOUNDED and DOGMA because they approximate.  For
Sama, a "match" is a generated answer; the uncapped run is bounded by a
large k and the search's expansion budget (both reported), and answers
whose score exceeds ``score_ceiling`` are not counted as meaningful —
the analogue of the paper's expert filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.clustering import missing_path_penalty
from ..engine.sama import SamaEngine
from ..engine.search import SearchConfig
from ..rdf.graph import QueryGraph


@dataclass(frozen=True)
class MatchCount:
    """One bar of Fig. 8."""

    system: str
    query_id: str
    count: int


def sama_match_count(engine: SamaEngine, query: QueryGraph,
                     query_id: str = "", uncapped_k: int = 500,
                     score_ceiling: "float | None" = None) -> MatchCount:
    """Count Sama's meaningful matches for one query.

    ``score_ceiling`` defaults to the cost of leaving every query path
    unmatched — an answer scoring worse than "found nothing at all"
    carries no information.
    """
    prepared = engine.prepare(query)
    if score_ceiling is None:
        score_ceiling = sum(
            missing_path_penalty(path, engine.config.weights)
            for path in prepared.paths)
    clusters = engine.clusters(prepared)
    from dataclasses import replace

    from ..engine.search import top_k
    config = replace(engine.config.search, k=uncapped_k)
    result = top_k(prepared, clusters, weights=engine.config.weights,
                   config=config)
    meaningful = sum(1 for answer in result.answers
                     if answer.score <= score_ceiling
                     and answer.matched_count > 0)
    return MatchCount(system="sama", query_id=query_id, count=meaningful)


def baseline_match_count(matcher, query: QueryGraph, query_id: str = "",
                         limit: int = 500) -> MatchCount:
    """Count a baseline system's matches (capped at ``limit``)."""
    matches = matcher.search(query, limit=limit)
    return MatchCount(system=matcher.name, query_id=query_id,
                      count=len(matches))
