"""Effectiveness metrics: reciprocal rank and precision/recall (§6.3).

The paper uses the reciprocal rank (RR) — "the ratio between 1 and the
rank at which the first correct answer is returned; or 0 if no correct
answer is returned" — and the standard IR interpolation between
precision and recall for ranked result lists (Fig. 9 plots precision at
the eleven standard recall points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

#: The eleven standard recall levels of interpolated precision/recall.
STANDARD_RECALL_LEVELS = tuple(round(0.1 * i, 1) for i in range(11))


def reciprocal_rank(relevance: Sequence[bool]) -> float:
    """RR of a ranked list given per-rank relevance flags.

    ``relevance[i]`` says whether the answer at rank ``i + 1`` is
    correct.  Returns 0.0 when nothing is relevant.
    """
    for index, is_relevant in enumerate(relevance):
        if is_relevant:
            return 1.0 / (index + 1)
    return 0.0


@dataclass(frozen=True)
class PrecisionRecallPoint:
    """One (recall, precision) pair of a ranked evaluation."""

    recall: float
    precision: float


def precision_recall_curve(relevance: Sequence[bool],
                           total_relevant: int) -> list[PrecisionRecallPoint]:
    """The raw P/R points of a ranked list (one per relevant hit).

    ``total_relevant`` is the size of the ground-truth set (the
    denominator of recall); it may exceed the number of relevant
    answers in the list when the system missed some.
    """
    if total_relevant < 0:
        raise ValueError("total_relevant must be >= 0")
    points = []
    hits = 0
    for index, is_relevant in enumerate(relevance):
        if is_relevant:
            hits += 1
            points.append(PrecisionRecallPoint(
                recall=hits / total_relevant if total_relevant else 0.0,
                precision=hits / (index + 1)))
    return points


def interpolated_precision(points: Iterable[PrecisionRecallPoint],
                           levels: Sequence[float] = STANDARD_RECALL_LEVELS,
                           ) -> list[PrecisionRecallPoint]:
    """Eleven-point interpolated precision (the Fig. 9 curves).

    Interpolated precision at recall level r is the maximum precision
    at any recall ≥ r; levels beyond the achieved recall get 0.
    """
    points = sorted(points, key=lambda p: p.recall)
    out = []
    for level in levels:
        candidates = [p.precision for p in points if p.recall >= level - 1e-9]
        out.append(PrecisionRecallPoint(recall=level,
                                        precision=max(candidates, default=0.0)))
    return out


def average_interpolated(curves: Sequence[Sequence[PrecisionRecallPoint]],
                         levels: Sequence[float] = STANDARD_RECALL_LEVELS,
                         ) -> list[PrecisionRecallPoint]:
    """Average several interpolated curves level-by-level (macro average)."""
    if not curves:
        return [PrecisionRecallPoint(level, 0.0) for level in levels]
    out = []
    for position, level in enumerate(levels):
        values = [curve[position].precision for curve in curves]
        out.append(PrecisionRecallPoint(level, sum(values) / len(values)))
    return out


def average_precision(relevance: Sequence[bool], total_relevant: int) -> float:
    """AP: mean precision over the relevant hits (0 when none found)."""
    points = precision_recall_curve(relevance, total_relevant)
    if not total_relevant:
        return 0.0
    return sum(p.precision for p in points) / total_relevant


def relevance_flags(answers: Sequence, judge: Callable[[object], bool],
                    ) -> list[bool]:
    """Apply a relevance judge to a ranked answer list."""
    return [bool(judge(answer)) for answer in answers]
