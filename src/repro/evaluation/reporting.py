"""Rendering helpers: aligned text tables and ASCII log-scale charts.

The runner regenerates each of the paper's tables and figures as text;
these helpers keep the output consistent and diff-friendly (every cell
formatted the same way run-over-run under fixed seeds).
"""

from __future__ import annotations

import math
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """A fixed-width text table with right-aligned numeric columns."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [all(_is_numeric(row[i]) for row in rows) if rows else False
               for i in range(len(headers))]

    def fmt_line(cells):
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_line(headers))
    lines.append(fmt_line(["-" * w for w in widths]))
    for row in rendered_rows:
        lines.append(fmt_line(row))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    return str(value)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float))


def format_bytes(count: int) -> str:
    """56 MB / 1.2 GB style sizes (the Table 1 'Space' column)."""
    units = ["B", "KB", "MB", "GB", "TB"]
    value = float(count)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} TB"  # pragma: no cover


def format_seconds(seconds: float) -> str:
    """1 sec / 4 min / 102 min style durations (Table 1 't' column)."""
    if seconds < 120:
        return f"{seconds:.2f} sec" if seconds < 10 else f"{seconds:.0f} sec"
    return f"{seconds / 60:.0f} min"


def log_bar_chart(labels: Sequence[str], series: dict[str, Sequence[float]],
                  title: str = "", width: int = 48,
                  unit: str = "ms") -> str:
    """Grouped horizontal bars on a log scale (the Fig. 6/8 bar style).

    ``series`` maps system name → one value per label.  Zero and
    negative values render as empty bars.
    """
    positives = [v for values in series.values() for v in values if v > 0]
    if not positives:
        return title + "\n(no data)"
    low = math.log10(min(positives))
    high = math.log10(max(positives))
    span = max(high - low, 1e-9)

    def bar(value: float) -> str:
        if value <= 0:
            return ""
        filled = int(round((math.log10(value) - low) / span * (width - 1))) + 1
        return "#" * max(filled, 1)

    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
        lines.append(f"(log scale, {unit})")
    for index, label in enumerate(labels):
        lines.append(label)
        for name, values in series.items():
            value = values[index]
            value_text = f"{value:,.1f}" if value < 10000 else f"{value:,.0f}"
            lines.append(f"  {name.ljust(name_width)} "
                         f"{bar(value).ljust(width)} {value_text}")
    return "\n".join(lines)


def xy_series(points, x_label: str, y_label: str, title: str = "",
              fit_equation: str = "") -> str:
    """A two-column rendering of a Fig. 7 sweep with its trendline."""
    headers = [x_label, y_label]
    rows = [[point.x, point.mean_ms] for point in points]
    table = format_table(headers, rows, title=title)
    if fit_equation:
        table += f"\ntrendline: {fit_equation}"
    return table
