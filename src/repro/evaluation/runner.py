"""The experiment runner: regenerates every table and figure (§6).

Usage (also installed as the ``sama-bench`` console script)::

    python -m repro.evaluation.runner table1
    python -m repro.evaluation.runner fig6a fig6b
    python -m repro.evaluation.runner fig7a fig7b fig7c
    python -m repro.evaluation.runner fig8 fig9 rr
    python -m repro.evaluation.runner all

Every experiment prints the same rows/series the paper reports, at the
scaled-down dataset sizes of :mod:`repro.datasets.registry` (pass
``--scale`` to multiply them).  Seeds are fixed: output is reproducible
run-over-run.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from ..baselines import BoundedMatcher, DogmaMatcher, SapperMatcher
from ..datasets import all_datasets, dataset, lubm_queries
from ..engine.sama import EngineConfig, SamaEngine
from ..index.builder import build_index
from .ground_truth import RelevanceOracle, answer_data_nodes
from .matches import baseline_match_count, sama_match_count
from .metrics import (average_interpolated, interpolated_precision,
                      precision_recall_curve, reciprocal_rank)
from .reporting import (format_bytes, format_seconds, format_table,
                        log_bar_chart, xy_series)
from .scalability import (quadratic_fit, sweep_data_size, sweep_query_nodes,
                          sweep_variable_count)
from .timing import time_baseline, time_cold, time_warm

_BASELINE_CLASSES = (SapperMatcher, BoundedMatcher, DogmaMatcher)


def run_table1(scale: float = 1.0, seed: int = 0,
               max_paths: int = 60_000) -> str:
    """Table 1: indexing statistics for all eight datasets.

    Densely cyclic datasets (PBlog, UOBM) and citation-heavy ones
    (DBLP) have more simple paths than any budget; their rows carry a
    ``trunc`` marker, mirroring the feasibility bound implied by the
    paper's own hours-long builds.
    """
    from ..paths.extraction import ExtractionLimits

    limits = ExtractionLimits(max_length=24, max_paths=max_paths,
                              on_limit="truncate")
    rows = []
    for spec in all_datasets():
        triples = max(100, int(spec.default_triples * scale))
        graph = spec.build(triples, seed=seed)
        _index, stats = build_index(graph, tempfile.mkdtemp(prefix="t1-"),
                                    limits=limits)
        rows.append([spec.name.upper(), f"(paper {spec.paper_triples})",
                     stats.triple_count, stats.hv_count, stats.he_count,
                     format_seconds(stats.build_seconds),
                     format_bytes(stats.size_bytes),
                     "yes" if stats.truncated else "no"])
    return format_table(
        ["DG", "paper size", "#Triples", "|HV|", "|HE|", "t", "Space",
         "trunc"],
        rows, title="Table 1: HyperGraphDB indexing (scaled datasets)")


def _lubm_engine(scale: float, seed: int,
                 read_latency: float = 0.0) -> SamaEngine:
    spec = dataset("lubm")
    graph = spec.build(max(500, int(spec.default_triples * scale)), seed=seed)
    directory = tempfile.mkdtemp(prefix="lubm-index-")
    index, stats = build_index(graph, directory)
    if read_latency:
        index.close()
        from ..index.pathindex import PathIndex
        index = PathIndex.open(directory, read_latency=read_latency)
    engine = SamaEngine(index, config=EngineConfig())
    engine.index_stats = stats
    engine._graph = graph  # used by baselines below
    return engine


#: Simulated disk costs for the Fig. 6 comparison (§6.1 premise: the
#: graph "can only be stored on disk").  Baselines pay per adjacency
#: access on a disk-resident graph; Sama pays per index page read.
GRAPH_ACCESS_LATENCY = 1e-5      # 10 µs per adjacency list
INDEX_PAGE_LATENCY = 1e-4        # 100 µs per 4 KiB index page


def run_fig6(cold: bool, scale: float = 1.0, seed: int = 0, runs: int = 3,
             k: int = 10) -> str:
    """Fig. 6: average response time, Q1-Q12, Sama vs the 3 baselines.

    Both sides run against simulated disk residency: the baselines
    traverse an access-accounted graph (every adjacency read pays
    ``GRAPH_ACCESS_LATENCY``), Sama reads its index through a buffer
    pool whose physical page reads pay ``INDEX_PAGE_LATENCY``.  The
    cold condition clears Sama's buffer pool and the baselines'
    memoised reachability before every run.
    """
    from ..rdf.latency import AccessAccountedGraph

    engine = _lubm_engine(scale, seed, read_latency=INDEX_PAGE_LATENCY)
    view = AccessAccountedGraph(engine._graph,
                                access_latency=GRAPH_ACCESS_LATENCY)
    with view.offline():
        baselines = [cls(view) for cls in _BASELINE_CLASSES]

    def reset_baselines() -> None:
        for baseline in baselines:
            if hasattr(baseline, "clear_cache"):
                baseline.clear_cache()

    from .timing import time_callable
    labels = []
    series: dict[str, list[float]] = {"sama": []}
    for baseline in baselines:
        series[baseline.name] = []
    for spec in lubm_queries():
        labels.append(spec.qid)
        query = spec.graph
        if cold:
            sample = time_cold(engine, query, k=k, runs=runs)
        else:
            sample = time_warm(engine, query, k=k, runs=runs)
        series["sama"].append(sample.mean_ms)
        for baseline in baselines:
            before = reset_baselines if cold else None
            if not cold:
                baseline.search(query, limit=k)  # prime caches
            sample = time_callable(
                lambda b=baseline: b.search(query, limit=k),
                runs=runs, before_each=before)
            series[baseline.name].append(sample.mean_ms)
    condition = "cold-cache" if cold else "warm-cache"
    return log_bar_chart(labels, series,
                         title=f"Fig. 6{'a' if cold else 'b'}: average "
                               f"response time on LUBM ({condition}, "
                               f"simulated disk residency)")


def run_fig7a(scale: float = 1.0, seed: int = 0) -> str:
    sizes = [max(300, int(s * scale)) for s in
             (2_000, 4_000, 6_000, 8_000, 10_000, 12_000)]
    points = sweep_data_size(sizes=sizes, seed=seed)
    fit = quadratic_fit(points)
    return xy_series(points, "I (#extracted paths)", "msec",
                     title="Fig. 7a: Sama scalability vs I",
                     fit_equation=fit.equation())


def run_fig7b(scale: float = 1.0, seed: int = 0) -> str:
    points = sweep_query_nodes(triples=max(500, int(8_000 * scale)),
                               seed=seed)
    fit = quadratic_fit(points)
    return xy_series(points, "#nodes in Q", "msec",
                     title="Fig. 7b: Sama scalability vs |Q| nodes",
                     fit_equation=fit.equation())


def run_fig7c(scale: float = 1.0, seed: int = 0) -> str:
    points = sweep_variable_count(triples=max(500, int(8_000 * scale)),
                                  seed=seed)
    fit = quadratic_fit(points)
    return xy_series(points, "#variables in Q", "msec",
                     title="Fig. 7c: Sama scalability vs variables",
                     fit_equation=fit.equation())


def run_fig8(scale: float = 1.0, seed: int = 0) -> str:
    """Fig. 8: number of matches per query per system (unbounded k)."""
    engine = _lubm_engine(scale, seed)
    graph = engine._graph
    baselines = [cls(graph) for cls in _BASELINE_CLASSES]
    labels = []
    series: dict[str, list[float]] = {"sama": []}
    for baseline in baselines:
        series[baseline.name] = []
    for spec in lubm_queries():
        labels.append(spec.qid)
        series["sama"].append(
            float(sama_match_count(engine, spec.graph, spec.qid).count))
        for baseline in baselines:
            series[baseline.name].append(float(
                baseline_match_count(baseline, spec.graph, spec.qid).count))
    return log_bar_chart(labels, series, unit="# of matches",
                         title="Fig. 8: matches found on LUBM (no k imposed)")


def _query_bands() -> dict[str, list]:
    """The |Q| bands of Fig. 9 (|Q| counted in query paths)."""
    bands = {"|Q| in [1,4]": [], "|Q| in [5,10]": [], "|Q| in [11,17]": []}
    from ..engine.preprocess import prepare_query
    for spec in lubm_queries():
        count = len(prepare_query(spec.graph).paths)
        if count <= 4:
            bands["|Q| in [1,4]"].append(spec)
        elif count <= 10:
            bands["|Q| in [5,10]"].append(spec)
        else:
            bands["|Q| in [11,17]"].append(spec)
    return bands


def run_fig9(scale: float = 1.0, seed: int = 0, k: int = 50) -> str:
    """Fig. 9: interpolated precision/recall on LUBM.

    Sama is split by query-path band like the paper; the baselines get
    one curve each over all 12 queries.
    """
    engine = _lubm_engine(scale, seed)
    graph = engine._graph
    oracle = RelevanceOracle(graph)
    baselines = [cls(graph) for cls in _BASELINE_CLASSES]

    def sama_curve(specs) -> list:
        curves = []
        for spec in specs:
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            answers = engine.query(spec.graph, k=k)
            flags = [oracle.judge_sama_answer(truth, a) for a in answers]
            curves.append(interpolated_precision(
                precision_recall_curve(flags, len(truth))))
        return average_interpolated(curves)

    def baseline_curve(matcher) -> list:
        curves = []
        for spec in lubm_queries():
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            matches = matcher.search(spec.graph, limit=k)
            flags = [oracle.judge_match(truth, m) for m in matches]
            curves.append(interpolated_precision(
                precision_recall_curve(flags, len(truth))))
        return average_interpolated(curves)

    bands = _query_bands()
    headers = ["recall"] + [f"sama {band}" for band in bands] \
        + [m.name for m in baselines]
    band_curves = [sama_curve(specs) for specs in bands.values()]
    baseline_curves = [baseline_curve(m) for m in baselines]
    rows = []
    for position in range(11):
        row = [band_curves[0][position].recall]
        for curve in band_curves + baseline_curves:
            row.append(curve[position].precision)
        rows.append(row)
    return format_table(headers, rows,
                        title="Fig. 9: interpolated precision/recall on LUBM")


def run_rr(scale: float = 1.0, seed: int = 0, k: int = 10) -> str:
    """§6.3: reciprocal rank of Sama on the 12 queries (paper: all 1)."""
    engine = _lubm_engine(scale, seed)
    oracle = RelevanceOracle(engine._graph)
    rows = []
    for spec in lubm_queries():
        truth = oracle.ground_truth(spec.graph, key=spec.qid)
        answers = engine.query(spec.graph, k=k)
        flags = [oracle.judge_sama_answer(truth, a) for a in answers]
        value = reciprocal_rank(flags) if not truth.is_empty else float("nan")
        rows.append([spec.qid, len(truth), value])
    return format_table(["query", "#relevant", "RR"], rows,
                        title="Reciprocal rank of Sama on LUBM (§6.3)")


def run_extensions(scale: float = 1.0, seed: int = 0) -> str:
    """Ablation of the §7 extensions: compression ratio, update cost."""
    import time

    from ..index.incremental import IncrementalIndex
    from .reporting import format_bytes

    spec = dataset("lubm")
    triples = max(500, int(spec.default_triples * scale / 4))
    graph = spec.build(triples, seed=seed)
    _plain, stats_plain = build_index(graph, tempfile.mkdtemp(prefix="xp-"))
    _packed, stats_packed = build_index(graph, tempfile.mkdtemp(prefix="xc-"),
                                        compress=True)
    extra = list(dataset("lubm").build(200, seed=seed + 99).triples())
    incremental = IncrementalIndex(graph.copy(),
                                   tempfile.mkdtemp(prefix="xi-"))
    started = time.perf_counter()
    for triple in extra[:50]:
        incremental.add_triple(*triple)
    per_update_ms = (time.perf_counter() - started) / 50 * 1000
    started = time.perf_counter()
    rebuilt_graph = graph.copy()
    for triple in extra[:50]:
        rebuilt_graph.add_triple(*triple)
    build_index(rebuilt_graph, tempfile.mkdtemp(prefix="xr-"))
    rebuild_ms = (time.perf_counter() - started) * 1000
    rows = [
        ["index bytes (plain)", format_bytes(stats_plain.size_bytes)],
        ["index bytes (compressed)", format_bytes(stats_packed.size_bytes)],
        ["compression ratio",
         f"{stats_packed.size_bytes / stats_plain.size_bytes:.1%}"],
        ["incremental update (per triple)", f"{per_update_ms:.2f} ms"],
        ["full rebuild (50 triples)", f"{rebuild_ms:.1f} ms"],
        ["paths invalidated", incremental.stats.paths_invalidated],
        ["full-rebuild fallbacks", incremental.stats.full_rebuilds],
    ]
    return format_table(["metric", "value"], rows,
                        title="§7 extensions: compression and updates")


def run_weights_ablation(scale: float = 1.0, seed: int = 0,
                         k: int = 10) -> str:
    """Ablation: the scoring weights' effect on effectiveness.

    Compares the paper's configuration (a=1, b=0.5, c=2, d=1, e=1)
    against uniform weights, structure-only (label mismatches free)
    and labels-only (insertions free, conformity off) on the LUBM
    workload, reporting mean reciprocal rank and mean top-1 coverage.
    """
    from ..scoring import ScoringWeights

    engine = _lubm_engine(scale, seed)
    oracle = RelevanceOracle(engine._graph)
    configurations = [
        ("paper", ScoringWeights.paper()),
        ("uniform", ScoringWeights.uniform()),
        ("structure-only", ScoringWeights.structure_only()),
        ("labels-only", ScoringWeights.labels_only()),
    ]
    specs = lubm_queries()[:6]
    rows = []
    for name, weights in configurations:
        engine.config.weights = weights
        rr_values = []
        coverage = []
        for spec in specs:
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            answers = engine.query(spec.graph, k=k)
            flags = [oracle.judge_sama_answer(truth, a) for a in answers]
            rr_values.append(reciprocal_rank(flags))
            coverage.append(answers[0].matched_count / len(answers[0].entries)
                            if answers else 0.0)
        rows.append([name,
                     sum(rr_values) / len(rr_values) if rr_values else 0.0,
                     sum(coverage) / len(coverage) if coverage else 0.0])
    engine.config.weights = ScoringWeights.paper()
    return format_table(["weights", "mean RR", "mean top-1 coverage"], rows,
                        title="Ablation: scoring weight configurations "
                              "(LUBM Q1-Q6)")


_EXPERIMENTS = {
    "table1": lambda args: run_table1(args.scale, args.seed),
    "fig6a": lambda args: run_fig6(True, args.scale, args.seed),
    "fig6b": lambda args: run_fig6(False, args.scale, args.seed),
    "fig7a": lambda args: run_fig7a(args.scale, args.seed),
    "fig7b": lambda args: run_fig7b(args.scale, args.seed),
    "fig7c": lambda args: run_fig7c(args.scale, args.seed),
    "fig8": lambda args: run_fig8(args.scale, args.seed),
    "fig9": lambda args: run_fig9(args.scale, args.seed),
    "rr": lambda args: run_rr(args.scale, args.seed),
    "extensions": lambda args: run_extensions(args.scale, args.seed),
    "weights": lambda args: run_weights_ablation(args.scale, args.seed),
}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sama-bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="+",
                        choices=sorted(_EXPERIMENTS) + ["all"],
                        help="which experiments to run")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset size multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="also write each report to DIR/<name>.txt")
    args = parser.parse_args(argv)
    names = list(_EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    for name in names:
        report = _EXPERIMENTS[name](args)
        print(report)
        print()
        if args.output:
            import os
            os.makedirs(args.output, exist_ok=True)
            path = os.path.join(args.output, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
