"""Scalability sweeps (Fig. 7): Sama's runtime versus I, |Q| and #vars.

Fig. 7 plots Sama's cold-cache response time against (a) the number
``I`` of paths extracted from ``G`` for the query, (b) the number of
nodes in the query graph (3–23) and (c) the number of variables (1–7),
each with a quadratic trendline — supporting the O(h·I²) analysis.

The sweeps here regenerate those series: (a) scales the data graph,
(b) grows a query chain through the LUBM schema, (c) progressively
widens one fixed query's constants into variables.  A least-squares
quadratic fit (plain linear algebra, no numpy needed at runtime) is
reported with each series, mirroring the figure's trendline equations.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

from ..datasets import lubm
from ..engine.sama import EngineConfig, SamaEngine
from ..index.builder import build_index
from ..rdf.graph import QueryGraph
from ..rdf.namespaces import RDF, UB
from ..rdf.terms import Term, Variable
from .timing import time_callable


@dataclass(frozen=True)
class SweepPoint:
    """One x/y point of a Fig. 7 series."""

    x: float
    mean_ms: float


@dataclass(frozen=True)
class QuadraticFit:
    """y = a·x² + b·x + c — the trendline the figure displays."""

    a: float
    b: float
    c: float

    def __call__(self, x: float) -> float:
        return self.a * x * x + self.b * x + self.c

    def equation(self) -> str:
        return f"y = {self.a:.3g}x^2 + {self.b:.3g}x + {self.c:.3g}"


def quadratic_fit(points: list[SweepPoint]) -> QuadraticFit:
    """Least-squares quadratic fit via the normal equations."""
    if len(points) < 3:
        raise ValueError("need at least 3 points for a quadratic fit")
    # Normal equations for [a b c]: minimise ||V·p - y||².
    s = [0.0] * 5       # Σ x^0..x^4
    t = [0.0] * 3       # Σ y·x^0..x^2
    for p in points:
        xs = 1.0
        for power in range(5):
            s[power] += xs
            if power < 3:
                t[power] += p.mean_ms * xs
            xs *= p.x
    # Solve the 3x3 system by Gaussian elimination.
    matrix = [
        [s[4], s[3], s[2], t[2]],
        [s[3], s[2], s[1], t[1]],
        [s[2], s[1], s[0], t[0]],
    ]
    for col in range(3):
        pivot_row = max(range(col, 3), key=lambda r: abs(matrix[r][col]))
        matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        pivot = matrix[col][col]
        if abs(pivot) < 1e-12:
            raise ValueError("singular fit (degenerate x values)")
        for row in range(3):
            if row == col:
                continue
            factor = matrix[row][col] / pivot
            for k in range(col, 4):
                matrix[row][k] -= factor * matrix[col][k]
    a = matrix[0][3] / matrix[0][0]
    b = matrix[1][3] / matrix[1][1]
    c = matrix[2][3] / matrix[2][2]
    return QuadraticFit(a, b, c)


def _engine_for(triples: int, seed: int = 0) -> SamaEngine:
    graph = lubm.generate(triples, seed=seed)
    index, _stats = build_index(graph, tempfile.mkdtemp(prefix="sama-sweep-"))
    return SamaEngine(index, config=EngineConfig())


def retrieved_path_count(engine: SamaEngine, query: QueryGraph) -> int:
    """The I of Fig. 7a: paths retrieved from the index for the query."""
    prepared = engine.prepare(query)
    clusters = engine.clusters(prepared)
    return sum(len(cluster) for cluster in clusters)


def sweep_data_size(sizes: "list[int] | None" = None, runs: int = 3,
                    k: int = 10, seed: int = 0) -> list[SweepPoint]:
    """Fig. 7a: runtime vs I, scaling the LUBM graph."""
    sizes = sizes or [2_000, 4_000, 6_000, 8_000, 10_000, 12_000]
    query = _chain_query(7)
    points = []
    for size in sizes:
        engine = _engine_for(size, seed=seed)
        sample = time_callable(lambda: engine.query(query, k=k), runs=runs,
                               before_each=engine.cold_cache)
        points.append(SweepPoint(x=float(retrieved_path_count(engine, query)),
                                 mean_ms=sample.mean_ms))
        engine.close()
    return points


def sweep_query_nodes(node_counts: "list[int] | None" = None,
                      triples: int = 8_000, runs: int = 3, k: int = 10,
                      seed: int = 0) -> list[SweepPoint]:
    """Fig. 7b: runtime vs |Q| in nodes (the paper sweeps 3–23)."""
    node_counts = node_counts or [3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23]
    engine = _engine_for(triples, seed=seed)
    points = []
    for count in node_counts:
        query = _chain_query(count)
        sample = time_callable(lambda: engine.query(query, k=k), runs=runs,
                               before_each=engine.cold_cache)
        points.append(SweepPoint(x=float(query.node_count()),
                                 mean_ms=sample.mean_ms))
    engine.close()
    return points


def sweep_variable_count(variable_counts: "list[int] | None" = None,
                         triples: int = 8_000, runs: int = 3, k: int = 10,
                         seed: int = 0) -> list[SweepPoint]:
    """Fig. 7c: runtime vs the number of variables (1–7)."""
    variable_counts = variable_counts or [1, 2, 3, 4, 5, 6, 7]
    engine = _engine_for(triples, seed=seed)
    points = []
    for count in variable_counts:
        query = _variable_query(count)
        sample = time_callable(lambda: engine.query(query, k=k), runs=runs,
                               before_each=engine.cold_cache)
        points.append(SweepPoint(x=float(count), mean_ms=sample.mean_ms))
    engine.close()
    return points


def _chain_query(node_count: int) -> QueryGraph:
    """A connected LUBM query with exactly ``node_count`` nodes.

    Grows along the schema: student → advisor → department → university
    plus course/publication branches, adding type constraints until the
    node budget is met.  All shapes are semantically sensible LUBM
    questions, so retrieval work grows with size rather than collapsing
    to empty clusters.
    """
    if node_count < 3:
        raise ValueError("node_count must be >= 3")
    steps = [
        ("?s", UB.advisor, "?p"),
        ("?s", RDF.type, UB.GraduateStudent),
        ("?p", RDF.type, UB.FullProfessor),
        ("?s", UB.takesCourse, "?c"),
        ("?p", UB.teacherOf, "?c"),
        ("?c", RDF.type, UB.GraduateCourse),
        ("?p", UB.worksFor, "?d"),
        ("?d", RDF.type, UB.Department),
        ("?d", UB.subOrganizationOf, "?u"),
        ("?u", RDF.type, UB.University),
        ("?pub", UB.publicationAuthor, "?p"),
        ("?pub", RDF.type, UB.Publication),
        ("?s", UB.memberOf, "?d"),
        ("?s", UB.undergraduateDegreeFrom, "?u2"),
        ("?u2", RDF.type, UB.University),
        ("?p", UB.doctoralDegreeFrom, "?u3"),
        ("?u3", RDF.type, UB.University),
        ("?s2", UB.advisor, "?p"),
        ("?s2", RDF.type, UB.GraduateStudent),
        ("?s2", UB.takesCourse, "?c2"),
        ("?c2", RDF.type, UB.Course),
        ("?pub2", UB.publicationAuthor, "?p"),
        ("?pub2", RDF.type, UB.Publication),
        ("?g", UB.subOrganizationOf, "?d"),
        ("?g", RDF.type, UB.ResearchGroup),
        ("?p", UB.emailAddress, "?email"),
        ("?s", UB.name, "?name"),
        ("?p2", UB.worksFor, "?d"),
        ("?p2", RDF.type, UB.AssociateProfessor),
        ("?p2", UB.teacherOf, "?c3"),
        ("?c3", RDF.type, UB.Course),
        ("?s3", UB.takesCourse, "?c3"),
        ("?s3", RDF.type, UB.UndergraduateStudent),
        ("?s3", UB.memberOf, "?d"),
    ]
    query = QueryGraph(name=f"chain-{node_count}")
    for subject, predicate, object_ in steps:
        query.add_triple(subject, predicate, object_)
        if query.node_count() >= node_count:
            break
    return query


def _variable_query(variable_count: int) -> QueryGraph:
    """A fixed 8-node pattern with 1..7 of its terms left variable.

    Starts fully grounded except one variable and widens one constant
    per step, so the x axis isolates the effect of variables on
    retrieval (more variables ⇒ anchor constants further from sinks ⇒
    larger clusters).
    """
    if not 1 <= variable_count <= 7:
        raise ValueError("variable_count must be in [1, 7]")
    # Terms that are progressively widened (constant → variable).
    widened: list[tuple[str, Term]] = [
        ("?p", UB.Faculty0),
        ("?d", UB.Department0),
        ("?c", UB.Course0),
        ("?u", UB.University0),
        ("?s2", UB.GraduateStudent0),
        ("?g", UB.ResearchGroup0),
    ]

    def term(index: int, default: Term) -> "Term | str":
        name, constant = widened[index]
        # The first `variable_count - 1` widened slots become variables
        # (?s is always variable, accounting for the remaining one).
        return name if index < variable_count - 1 else constant

    query = QueryGraph(name=f"vars-{variable_count}")
    query.add_triple("?s", UB.advisor, term(0, widened[0][1]))
    query.add_triple("?s", RDF.type, UB.GraduateStudent)
    query.add_triple(term(0, widened[0][1]), UB.worksFor,
                     term(1, widened[1][1]))
    query.add_triple("?s", UB.takesCourse, term(2, widened[2][1]))
    query.add_triple(term(1, widened[1][1]), UB.subOrganizationOf,
                     term(3, widened[3][1]))
    query.add_triple(term(4, widened[4][1]), UB.advisor,
                     term(0, widened[0][1]))
    query.add_triple(term(5, widened[5][1]), UB.subOrganizationOf,
                     term(1, widened[1][1]))
    return query
