"""Timing utilities for the response-time experiments (§6.2, Fig. 6).

The paper runs every query ten times and reports the average response
time in milliseconds (log scale), under both cold-cache and warm-cache
conditions.  These helpers run a callable repeatedly, with optional
before-run hooks (cache clearing for cold runs), and return summary
statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import mean, median, stdev
from typing import Callable


@dataclass(frozen=True)
class TimingSample:
    """Summary of repeated timed runs (all values in milliseconds)."""

    runs: tuple[float, ...]

    @property
    def mean_ms(self) -> float:
        return mean(self.runs)

    @property
    def median_ms(self) -> float:
        return median(self.runs)

    @property
    def min_ms(self) -> float:
        return min(self.runs)

    @property
    def stdev_ms(self) -> float:
        return stdev(self.runs) if len(self.runs) > 1 else 0.0

    def __str__(self):
        return f"{self.mean_ms:.1f}ms ±{self.stdev_ms:.1f}"


def time_callable(fn: Callable[[], object], runs: int = 10,
                  before_each: "Callable[[], None] | None" = None,
                  ) -> TimingSample:
    """Run ``fn`` ``runs`` times and collect wall-clock durations.

    ``before_each`` executes outside the timed window (that's where the
    cold-cache reset goes).
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    samples = []
    for _ in range(runs):
        if before_each is not None:
            before_each()
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1000.0)
    return TimingSample(tuple(samples))


def time_cold(engine, query, k: int = 10, runs: int = 10) -> TimingSample:
    """Cold-cache timing of a Sama query (§6.2 cold condition)."""
    return time_callable(lambda: engine.query(query, k=k), runs=runs,
                         before_each=engine.cold_cache)


def time_warm(engine, query, k: int = 10, runs: int = 10) -> TimingSample:
    """Warm-cache timing: one untimed priming run, then measure."""
    engine.query(query, k=k)
    return time_callable(lambda: engine.query(query, k=k), runs=runs)


def time_baseline(matcher, query, limit: "int | None" = 10,
                  runs: int = 10) -> TimingSample:
    """Timing of a baseline matcher's search."""
    return time_callable(lambda: matcher.search(query, limit=limit),
                         runs=runs)
