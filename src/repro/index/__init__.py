"""Index substrate: the HyperGraphDB + Lucene stand-in (§6.1).

Offline, the builder hashes labels, finds sources and sinks, extracts
every source-to-sink path and persists it in a page-structured record
log.  At query time the :class:`PathIndex` answers label lookups — by
sink or by containment, exactly / lexically / thesaurus-widened — so
the engine never traverses the data graph online.
"""

from .builder import INDEXER_LIMITS, IndexStats, build_index
from .hypergraph import Hypergraph, hypergraph_of
from .incremental import (CompactionReport, IncrementalIndex, UpdateStats,
                          compact_directory)
from .labels import LabelIndex, LabelInterner, SemanticMatcher
from .pathindex import IndexCorruptError, PathIndex, PathIndexWriter
from .sharded import (ShardedIndex, build_sharded_index, is_sharded_dir,
                      reshard, shard_of, signature_hash)
from .thesaurus import Thesaurus, default_thesaurus, tokenize_label

__all__ = [
    "CompactionReport", "Hypergraph", "INDEXER_LIMITS", "IncrementalIndex",
    "IndexCorruptError", "IndexStats", "LabelIndex", "LabelInterner",
    "PathIndex", "PathIndexWriter", "SemanticMatcher", "ShardedIndex",
    "Thesaurus", "UpdateStats", "build_index", "build_sharded_index",
    "compact_directory", "default_thesaurus", "hypergraph_of",
    "is_sharded_dir", "reshard", "shard_of", "signature_hash",
    "tokenize_label",
]
