"""Offline index construction (§6.1): the three-step build.

The paper's indexing process is "(i) hashing of all vertices' and
edges' labels, (ii) identification of sources and sinks, and (iii)
computation of the paths" via concurrent BFS from every source.  The
builder runs those steps, times each, stores the paths on disk through
:class:`~repro.index.pathindex.PathIndexWriter`, and reports the
Table 1 statistics: triple count, hypergraph sizes |HV| / |HE|, build
time, and bytes on disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..paths.extraction import ExtractionLimits, _Budget, _walk_from
from ..rdf.graph import DataGraph
from ..rdf.terms import Term
from .pathindex import PathIndex, PathIndexWriter
from .thesaurus import Thesaurus, default_thesaurus

#: The indexer's default budget.  Unlike ad-hoc extraction (which
#: raises on explosion so nothing truncates silently), the offline
#: build *truncates and reports*: densely cyclic graphs — the political
#: blogosphere, say — have astronomically many simple source-to-sink
#: paths, and the paper's own index builds are bounded by feasibility
#: ("building the index takes hours for large RDF data graphs").  The
#: truncation is never silent: ``IndexStats.truncated`` records it.
INDEXER_LIMITS = ExtractionLimits(max_length=32, max_paths=200_000,
                                  on_limit="truncate")


@dataclass
class IndexStats:
    """Build statistics — one row of Table 1, plus extras.

    ``hv_count`` and ``he_count`` are the hypergraph sizes of §6.1
    (vertices = graph nodes; hyperedges = stored paths, per Fig. 5).
    """

    dataset: str = ""
    triple_count: int = 0
    hv_count: int = 0
    he_count: int = 0
    label_count: int = 0
    source_count: int = 0
    sink_count: int = 0
    path_count: int = 0
    build_seconds: float = 0.0
    size_bytes: int = 0
    truncated: bool = False
    step_seconds: dict = field(default_factory=dict)

    def table1_row(self) -> tuple:
        """(dataset, #triples, |HV|, |HE|, time, space) — Table 1's columns."""
        return (self.dataset, self.triple_count, self.hv_count,
                self.he_count, self.build_seconds, self.size_bytes)


def build_index(graph: DataGraph, directory,
                limits: ExtractionLimits = INDEXER_LIMITS,
                thesaurus: "Thesaurus | None" = None,
                use_default_thesaurus: bool = True,
                page_size: int = 4096,
                compress: bool = False,
                intern_records: bool = True,
                shards: int = 1):
    """Build the path index of ``graph`` under ``directory``.

    Returns the opened :class:`PathIndex` and its :class:`IndexStats`.
    ``thesaurus`` defaults to the built-in lexicon (pass
    ``use_default_thesaurus=False`` for purely lexical matching).
    ``compress=True`` dictionary-encodes the stored paths (the §7
    compression extension); queries are unaffected.  By default records
    are label-interned (compact ids decoded through the persisted
    label dictionary); ``intern_records=False`` writes the original
    inline-term records.

    ``shards > 1`` routes to
    :func:`repro.index.sharded.build_sharded_index`: the same walk
    order partitioned across N self-contained shard directories, and a
    :class:`~repro.index.sharded.ShardedIndex` comes back instead of a
    :class:`PathIndex` (same lookup surface, bit-identical rankings).
    """
    if shards > 1:
        from .sharded import build_sharded_index

        if compress or not intern_records:
            raise ValueError("sharded indexes use the interned record "
                             "format; compress/intern_records do not apply")
        return build_sharded_index(graph, directory, shards,
                                   limits=limits, thesaurus=thesaurus,
                                   use_default_thesaurus=use_default_thesaurus,
                                   page_size=page_size)
    if thesaurus is None and use_default_thesaurus:
        thesaurus = default_thesaurus()
    stats = IndexStats(dataset=graph.name or "<anonymous>")
    total_started = time.perf_counter()

    # Step (i): hash all vertex and edge labels.
    step_started = time.perf_counter()
    labels: set[Term] = set(graph.node_labels())
    labels.update(graph.edge_labels())
    stats.label_count = len(labels)
    stats.step_seconds["hash_labels"] = time.perf_counter() - step_started

    # Step (ii): identify sources and sinks.
    step_started = time.perf_counter()
    sources = graph.sources()
    sinks = graph.sinks()
    roots = sources if sources else graph.hubs()
    stats.source_count = len(roots)
    stats.sink_count = len(sinks)
    stats.step_seconds["find_sources_sinks"] = time.perf_counter() - step_started

    # Step (iii): compute and store the paths (BFS from every root).
    step_started = time.perf_counter()
    writer = PathIndexWriter(directory, thesaurus=thesaurus,
                             page_size=page_size, compress=compress,
                             intern_records=intern_records)
    budget = _Budget(limits, graph)
    for root in roots:
        for path in _walk_from(graph, root, budget):
            writer.add_path(path)
    stats.truncated = budget.truncated
    stats.step_seconds["compute_paths"] = time.perf_counter() - step_started

    stats.triple_count = graph.edge_count()
    stats.hv_count = graph.node_count()
    stats.path_count = budget.emitted
    stats.he_count = budget.emitted
    index = writer.finish(metadata={
        "dataset": stats.dataset,
        "triples": stats.triple_count,
        "hv": stats.hv_count,
        "he": stats.he_count,
        "truncated": stats.truncated,
    })
    stats.size_bytes = writer.size_bytes
    stats.build_seconds = time.perf_counter() - total_started
    return index, stats
