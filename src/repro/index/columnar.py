"""Columnar shard scoring: the λ inner loop over contiguous id arrays.

``worker_mode="procs"`` moves each shard's candidate scoring into a
long-lived worker process (``repro.parallel.ProcessShardPool``).  That
only pays if the worker-side loop is cheap: decoding a ``Path`` object
per candidate per query — tuples of :class:`~repro.rdf.terms.Term`
objects, a greedy scan over them — costs far more than the comparison
work itself.  So at worker startup each shard is projected **once**
into a columnar layout:

.. code-block:: text

    node_ids   [ p0n0 p0n1 p0n2 | p1n0 p1n1 | p2n0 p2n1 p2n2 p2n3 | ...]
    edge_ids   [ p0e0 p0e1      | p1e0      | p2e0 p2e1 p2e2      | ...]
    node_offs  [ 0, 3, 5, 9, ...]        # row r spans node_offs[r]:[r+1]

Every label is its :class:`~repro.index.labels.LabelInterner` id, so
per-candidate work is slicing two ``array('i')`` ranges and comparing
small ints.  A path of *n* nodes always carries *n − 1* edges, so the
edge column needs no offsets of its own: row ``r``'s edges start at
``node_offs[r] - r``.

:func:`score_pairs` replays :func:`repro.paths.alignment.align`'s
sink-anchored greedy scan *exactly* — same traversal order, same
insertion-budget rule, same variable-binding semantics, and the same
float summation order for the weighted λ — so the scores it produces
are bit-identical to the coordinator's (asserted over every candidate
in ``tests/test_multiproc.py``).  Two facts make id-space comparison
sound:

- interning is injective (one id per distinct term), so id equality
  *is* term equality;
- when ids differ, the label matcher decides — looked up through the
  interner and memoised per id pair by :func:`make_id_matcher`.

Query variables cannot be interned (they are not data labels); they are
encoded as negative ids, ``-(slot + 1)`` into a per-query binding
table, mirroring the scanner's binding dict.
"""

from __future__ import annotations

import time
from array import array

from ..paths.model import Path
from ..rdf.terms import Variable
from ..scoring.weights import ScoringWeights

#: Candidates scored between deadline checks inside :func:`score_pairs`
#: — the same stride the coordinator's shard tasks use for
#: ``Budget.poll`` so procs mode is no less responsive to deadlines.
CHECK_STRIDE = 64


class ColumnarView:
    """One shard's paths as flat label-id columns (see module docs).

    Built once per worker process from an open
    :class:`~repro.index.pathindex.PathIndex`; after the build the
    index's decode cache can be dropped — scoring never touches
    ``Path`` objects again.
    """

    __slots__ = ("node_ids", "node_offs", "edge_ids", "row_of")

    def __init__(self, node_ids: array, node_offs: array,
                 edge_ids: array, row_of: "dict[int, int]"):
        self.node_ids = node_ids
        self.node_offs = node_offs
        self.edge_ids = edge_ids
        #: Storage offset -> row number, in build-walk order.  Shard
        #: tasks address candidates by their shard-local offsets.
        self.row_of = row_of

    def __len__(self) -> int:
        return len(self.node_offs) - 1

    @classmethod
    def build(cls, index) -> "ColumnarView":
        """Project every stored path of ``index`` into columns."""
        interner = index.interner
        intern = interner.intern
        node_ids = array("i")
        edge_ids = array("i")
        node_offs = array("l", [0])
        row_of: "dict[int, int]" = {}
        for row, offset in enumerate(index.all_offsets()):
            path = index.path_at(offset)
            ids = path.label_ids
            if ids is not None:
                node_ids.extend(ids)
            else:
                # Pre-interning records: derive ids the slow way once.
                node_ids.extend(intern(node) for node in path.nodes)
            edge_ids.extend(intern(edge) for edge in path.edges)
            node_offs.append(len(node_ids))
            row_of[offset] = row
        return cls(node_ids, node_offs, edge_ids, row_of)


class EncodedQuery:
    """A query path in id space: constants interned, variables negative."""

    __slots__ = ("nodes", "edges", "var_count", "anchor_id")

    def __init__(self, nodes: "list[int]", edges: "list[int]",
                 var_count: int, anchor_id: "int | None" = None):
        self.nodes = nodes
        self.edges = edges
        self.var_count = var_count
        #: Interned trim anchor, or ``None`` when candidates are taken
        #: whole (sink lookups and non-sink anchors).
        self.anchor_id = anchor_id


def encode_query(query_path: Path, interner, anchor=None) -> EncodedQuery:
    """Encode ``query_path`` against ``interner`` (see module docs).

    Node and edge variables share one binding table, exactly like the
    scanner's single binding dict — ``?v`` used as both a node and an
    edge label is one variable.  Interning a query constant the data
    never mentions assigns it a fresh id no data label carries, so id
    equality stays exact and the matcher fallback still runs.
    """
    slots: "dict[Variable, int]" = {}

    def encode(term) -> int:
        if isinstance(term, Variable):
            slot = slots.get(term)
            if slot is None:
                slot = slots[term] = len(slots)
            return -(slot + 1)
        return interner.intern(term)

    nodes = [encode(node) for node in query_path.nodes]
    edges = [encode(edge) for edge in query_path.edges]
    anchor_id = None if anchor is None else interner.intern(anchor)
    return EncodedQuery(nodes, edges, len(slots), anchor_id)


def make_id_matcher(interner, matcher):
    """An id-space label comparison: equality, else the memoised matcher.

    The returned callable outlives queries on purpose — matcher verdicts
    depend only on the two labels, so the memo is valid for the life of
    the interner and amortises thesaurus lookups across every query a
    worker serves.
    """
    lookup = interner.lookup
    cache: "dict[tuple[int, int], bool]" = {}

    def ids_match(data_id: int, query_id: int) -> bool:
        if data_id == query_id:
            return True
        key = (data_id, query_id)
        verdict = cache.get(key)
        if verdict is None:
            verdict = cache[key] = bool(matcher(lookup(data_id),
                                                lookup(query_id)))
        return verdict

    return ids_match


def score_pairs(view: ColumnarView, pairs, query: EncodedQuery,
                weights: ScoringWeights, ids_match, *,
                remaining_ms: "float | None" = None,
                clock=time.monotonic, with_starts: bool = False):
    """λ-score ``pairs`` (``(gid, offset)`` tuples) against ``query``.

    Returns ``(results, tripped)`` where ``results`` is a list of
    ``(score, gid, prefix_length)`` triples sorted by ``(score, gid)``
    — the deterministic scatter-gather merge key — and ``tripped``
    reports a deadline expiry mid-scan (the results so far are kept,
    matching the coordinator's cooperative-degradation contract).
    ``with_starts=True`` appends each kept candidate's node-column
    start as a fourth element, so the caller can slice the trimmed
    node ids back out of ``view.node_ids`` (the worker ships them to
    the coordinator, which joins on ids without decoding paths).

    When ``query.anchor_id`` is set, each candidate is first cut at its
    last node matching the anchor (the sink-anchored §4.3 trim); a
    candidate with no matching node is dropped, exactly like
    ``_prefix_at_anchor`` returning ``None``.
    """
    node_mis = weights.node_mismatch
    node_ins = weights.node_insertion
    edge_mis = weights.edge_mismatch
    edge_ins = weights.edge_insertion
    node_del = weights.node_deletion
    edge_del = weights.edge_deletion
    query_nodes = query.nodes
    query_edges = query.edges
    var_count = query.var_count
    anchor_id = query.anchor_id
    sink_label = query_nodes[-1]
    node_ids = view.node_ids
    node_offs = view.node_offs
    edge_ids = view.edge_ids
    row_of = view.row_of

    deadline_at = None
    if remaining_ms is not None:
        deadline_at = clock() + remaining_ms / 1000.0

    results: "list[tuple[float, int, int]]" = []
    tripped = False
    for rank, (gid, offset) in enumerate(pairs):
        if (deadline_at is not None and rank and rank % CHECK_STRIDE == 0
                and clock() >= deadline_at):
            tripped = True
            break
        row = row_of[offset]
        start = node_offs[row]
        stored_len = node_offs[row + 1] - start
        if anchor_id is None:
            plen = stored_len
        else:
            plen = 0
            for position in range(stored_len - 1, -1, -1):
                if ids_match(node_ids[start + position], anchor_id):
                    plen = position + 1
                    break
            if not plen:
                continue
        path_nodes = node_ids[start:start + plen]
        edge_start = start - row
        path_edges = edge_ids[edge_start:edge_start + plen - 1]
        bindings = [None] * var_count if var_count else None
        node_mismatches = node_insertions = node_deletions = 0
        edge_mismatches = edge_insertions = edge_deletions = 0
        # Sink nodes first (the alignment is sink-anchored) ...
        data_label = path_nodes[-1]
        if sink_label < 0:
            bindings[-sink_label - 1] = data_label
        elif not ids_match(data_label, sink_label):
            node_mismatches += 1
        # ... then walk both edge sequences backwards.
        data_pos = plen - 2
        query_pos = len(query_edges) - 1
        budget = data_pos - query_pos
        if budget < 0:
            budget = 0
        while data_pos >= 0 and query_pos >= 0:
            data_edge = path_edges[data_pos]
            query_edge = query_edges[query_pos]
            if budget > 0 and not (query_edge < 0
                                   or ids_match(data_edge, query_edge)):
                # Spend insertion budget at the first incompatible edge:
                # skip the data (edge, node) pair and retry this query
                # edge one step earlier, exactly like the scanner.
                edge_insertions += 1
                node_insertions += 1
                data_pos -= 1
                budget -= 1
                continue
            if query_edge < 0:
                bound = bindings[-query_edge - 1]
                if bound is None:
                    bindings[-query_edge - 1] = data_edge
                elif bound != data_edge:
                    edge_mismatches += 1     # conflict: binding kept
            elif not ids_match(data_edge, query_edge):
                edge_mismatches += 1
            data_label = path_nodes[data_pos]
            query_label = query_nodes[query_pos]
            if query_label < 0:
                bound = bindings[-query_label - 1]
                if bound is None:
                    bindings[-query_label - 1] = data_label
                elif bound != data_label:
                    node_mismatches += 1
            elif not ids_match(data_label, query_label):
                node_mismatches += 1
            data_pos -= 1
            query_pos -= 1
        if data_pos >= 0:       # longer data path: leading inserts
            edge_insertions += data_pos + 1
            node_insertions += data_pos + 1
        if query_pos >= 0:      # longer query path: leading deletes
            edge_deletions += query_pos + 1
            node_deletions += query_pos + 1
        score = (node_mis * node_mismatches
                 + node_ins * node_insertions
                 + edge_mis * edge_mismatches
                 + edge_ins * edge_insertions
                 + node_del * node_deletions
                 + edge_del * edge_deletions)
        if with_starts:
            results.append((score, gid, plen, start))
        else:
            results.append((score, gid, plen))
    results.sort(key=lambda item: (item[0], item[1]))
    return results, tripped
