"""The hypergraph representation of an indexed data graph (§6.1, Fig. 5).

HyperGraphDB models data as a hypergraph ``H = (X, E)`` where ``X`` is
a set of vertices and ``E ⊆ P(X)`` a set of hyperedges.  The paper maps
a data graph into ``H`` by turning every stored path into one hyperedge
over the vertices it traverses (Fig. 5 shows ``e1 = {PierceDickes,
A0467, B0532, ...}``).  Table 1 reports ``|HV|`` and ``|HE|`` for every
dataset; this module computes both.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..paths.model import Path
from ..rdf.graph import DataGraph


class Hypergraph:
    """A finite hypergraph over integer vertices."""

    def __init__(self):
        self._vertices: set[int] = set()
        self._hyperedges: list[frozenset[int]] = []
        self._incidence: dict[int, set[int]] = {}

    def add_vertex(self, vertex: int) -> None:
        if vertex not in self._vertices:
            self._vertices.add(vertex)
            self._incidence[vertex] = set()

    def add_hyperedge(self, vertices: Iterable[int]) -> int:
        """Add a hyperedge (a non-empty vertex set); returns its id."""
        members = frozenset(vertices)
        if not members:
            raise ValueError("a hyperedge must connect at least one vertex")
        edge_id = len(self._hyperedges)
        self._hyperedges.append(members)
        for vertex in members:
            self.add_vertex(vertex)
            self._incidence[vertex].add(edge_id)
        return edge_id

    # -- inspection -----------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """|HV| of Table 1."""
        return len(self._vertices)

    @property
    def hyperedge_count(self) -> int:
        """|HE| of Table 1."""
        return len(self._hyperedges)

    def hyperedge(self, edge_id: int) -> frozenset[int]:
        return self._hyperedges[edge_id]

    def hyperedges(self) -> Iterator[tuple[int, frozenset[int]]]:
        return enumerate(self._hyperedges)

    def incident_edges(self, vertex: int) -> set[int]:
        """Ids of hyperedges containing ``vertex``."""
        return set(self._incidence.get(vertex, ()))

    def degree(self, vertex: int) -> int:
        return len(self._incidence.get(vertex, ()))

    def __repr__(self):
        return (f"<Hypergraph: {self.vertex_count} vertices, "
                f"{self.hyperedge_count} hyperedges>")


def hypergraph_of(graph: DataGraph, paths: Iterable[Path]) -> Hypergraph:
    """Build the Fig. 5 hypergraph: every path becomes a hyperedge.

    Vertices are the data graph's node ids; isolated nodes (paths of
    length one) still produce singleton hyperedges, matching the
    "paths ending into sinks" the index stores.
    """
    hypergraph = Hypergraph()
    for node in graph.nodes():
        hypergraph.add_vertex(node)
    for path in paths:
        if path.node_ids is None:
            raise ValueError(f"path {path} carries no graph node ids; "
                             f"extract it from the data graph first")
        hypergraph.add_hyperedge(path.node_ids)
    return hypergraph
