"""Incremental index maintenance (the paper's §7 future work).

The paper's index is built offline and its §7 lists "optimization
techniques to speed-up the creation and the update of the index" as
future work.  This module implements the update half: an
:class:`IncrementalIndex` keeps a data graph and its path index in
sync under triple insertions without rebuilding from scratch.

The invalidation rule is root-based.  Inserting an edge ``u → v`` can
only change source-to-sink paths that pass through ``u`` (including
paths that used to *end* at ``u`` when it was a sink) or that start at
a root whose walks can now continue through the new edge.  Those are
exactly the paths whose root can reach ``u`` in the updated graph, so:

1. find the affected roots — sources that reach ``u`` backwards, plus
   ``u`` itself if it just became a source, minus ``v`` if it just
   stopped being one;
2. tombstone every stored path rooted there;
3. re-extract paths from those roots over the updated graph and append
   them to the (unsealed) record log.

Graphs without sources (hub-promoted roots) fall back to a full
re-extraction: hub identity is a global property, so locality is lost
— the fallback is correct, just not incremental (reported via stats).

The class exposes the same lookup surface as
:class:`~repro.index.pathindex.PathIndex`, so a
:class:`~repro.engine.sama.SamaEngine` runs on it unchanged.
"""

from __future__ import annotations

import json
import os
import shutil
from collections import deque
from dataclasses import dataclass

from ..paths.extraction import (ExtractionLimits, _Budget, _walk_from)
from ..paths.model import Path
from ..rdf.graph import DataGraph
from ..rdf.terms import Term
from ..rdf.triples import Triple
from ..resilience.errors import IndexCorruptError
from ..storage.atomic import atomic_write_json
from ..storage.bufferpool import BufferPool
from ..storage.pagestore import PageStore
from ..storage.recordfile import RecordFile
from ..storage.serializer import decode_path, encode_path
from .builder import INDEXER_LIMITS
from .labels import LabelIndex, LabelInterner
from .thesaurus import Thesaurus, default_thesaurus

#: Sidecar persisting which records of ``paths.log`` are alive (and
#: their roots), so maintenance tools can compact the log without the
#: in-memory index that wrote it.
MANIFEST_FILE = "incremental.json"
_MANIFEST_VERSION = 1


@dataclass
class UpdateStats:
    """Counters of incremental maintenance work."""

    triples_added: int = 0
    paths_invalidated: int = 0
    paths_added: int = 0
    full_rebuilds: int = 0
    #: Bytes occupied by tombstoned records (reclaimed by compact()).
    dead_bytes: int = 0

    @property
    def live_efficiency(self) -> float:
        """Fraction of update rounds handled incrementally."""
        total = self.triples_added
        if not total:
            return 1.0
        return 1.0 - self.full_rebuilds / total


class IncrementalIndex:
    """A path index that stays consistent under triple insertions."""

    def __init__(self, graph: DataGraph, directory,
                 limits: ExtractionLimits = INDEXER_LIMITS,
                 thesaurus: "Thesaurus | None" = None,
                 page_size: int = 4096,
                 shards: int = 1, hash_seed: int = 0):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.graph = graph
        self.directory = directory
        self.limits = limits
        self.thesaurus = thesaurus if thesaurus is not None \
            else default_thesaurus()
        self.stats = UpdateStats()
        os.makedirs(directory, exist_ok=True)
        store = PageStore(os.path.join(os.fspath(directory), "paths.log"),
                          page_size=page_size)
        self._records = RecordFile(store, BufferPool(store))
        self._sink_index = LabelIndex(self.thesaurus)
        self._contains_index = LabelIndex(self.thesaurus)
        self._alive: set[int] = set()
        self._record_size: dict[int, int] = {}
        self._root_of: dict[int, int] = {}          # offset -> root node id
        self._offsets_by_root: dict[int, set[int]] = {}
        self._decoded: dict[int, Path] = {}
        self._hub_mode = not graph.sources() and graph.node_count() > 0
        #: Logical shards for epoch accounting: each stored path is
        #: routed by the same stable label-signature hash the on-disk
        #: :class:`~repro.index.sharded.ShardedIndex` uses, and an
        #: update bumps only the epochs of the shards it touched.  The
        #: serving cache keys on the resulting epoch *vector*, so an
        #: update invalidates per-shard instead of flushing globally.
        self.shards = shards
        self.hash_seed = hash_seed
        self._epochs = [0] * shards
        self._shard_by_offset: dict[int, int] = {}
        self._route_interner = LabelInterner()
        #: Shards touched by the update round in progress (None when
        #: no round is open — construction-time extraction bumps
        #: nothing: epoch 0 is the freshly built index).
        self._touched: "set[int] | None" = None
        self._extract_roots(self.graph.path_roots())

    @property
    def epoch(self) -> int:
        """Scalar data version: the sum of per-shard epochs.

        Bumped on every observable change to the index contents —
        effective insertions, deletions, rebuilds, compactions.
        Monotone, so the serving layer's check-and-set logic is
        unchanged; result caches key on the finer-grained
        :attr:`epoch_vector` when more than one shard is configured.
        """
        return sum(self._epochs)

    @property
    def epoch_vector(self) -> tuple:
        """Per-shard epochs, the composite result-cache key part."""
        return tuple(self._epochs)

    @property
    def shard_count(self) -> int:
        """Logical shard count (mirrors ``ShardedIndex.shard_count``)."""
        return self.shards

    # -- construction helpers ------------------------------------------------

    def _extract_roots(self, roots) -> None:
        budget = _Budget(self.limits, self.graph)
        budget.emitted = len(self._alive)  # share the global path budget
        for root in roots:
            for path in _walk_from(self.graph, root, budget):
                self._store_path(root, path)

    def _store_path(self, root: int, path: Path) -> None:
        blob = encode_path(path)
        offset = self._records.append(blob)
        self._record_size[offset] = len(blob)
        self._alive.add(offset)
        self._root_of[offset] = root
        self._offsets_by_root.setdefault(root, set()).add(offset)
        self._sink_index.add(path.sink, offset)
        for label in set(path.nodes) | set(path.edges):
            self._contains_index.add(label, offset)
        self._decoded[offset] = path
        owner = 0
        if self.shards > 1:
            from .sharded import shard_of
            owner = shard_of(path, self._route_interner, self.shards,
                             self.hash_seed)
        self._shard_by_offset[offset] = owner
        if self._touched is not None:
            self._touched.add(owner)
        self.stats.paths_added += 1

    # -- epoch rounds --------------------------------------------------------

    def _begin_round(self) -> None:
        self._touched = set()

    def _commit_round(self) -> None:
        """Bump the epochs of every shard the round touched.

        A round that changed the graph without moving any path still
        bumps all shards (conservative, and vanishingly rare: it means
        the update was effective yet produced and removed no paths).
        """
        touched = self._touched
        self._touched = None
        if not touched:
            touched = set(range(self.shards))
        for shard in touched:
            self._epochs[shard] += 1

    # -- updates -------------------------------------------------------------------

    def add_triple(self, subject, predicate, object) -> None:
        """Insert one triple and repair the affected paths."""
        triple = Triple.of(subject, predicate, object)
        before_sources = set(self.graph.sources())
        src = self.graph.node_for(triple.subject)
        dst = self.graph.node_for(triple.object)
        edge_count_before = self.graph.edge_count()
        self.graph.add_edge(src, triple.predicate, dst)
        self.stats.triples_added += 1
        if self.graph.edge_count() == edge_count_before:
            return  # duplicate triple: nothing changed
        self._begin_round()
        try:
            if self._hub_mode or not self.graph.sources():
                # Hub-promoted roots are global; rebuild everything.
                self._hub_mode = not self.graph.sources()
                self._full_rebuild()
                return

            after_sources = set(self.graph.sources())
            # Roots that can reach ``src`` in the updated graph...
            affected = self._roots_reaching(src, after_sources)
            # ...plus any root that appeared or disappeared with this
            # edge (``dst`` may have stopped being a source; ``src``
            # may be new).
            affected |= (after_sources - before_sources)
            vanished = before_sources - after_sources
            for root in vanished | affected:
                self._invalidate_root(root)
            self._extract_roots(sorted(affected))
        finally:
            self._commit_round()

    def add_triples(self, rows) -> None:
        for row in rows:
            self.add_triple(*row)

    def remove_triple(self, subject, predicate, object) -> bool:
        """Delete one triple and repair the affected paths.

        Returns False when the triple was not present.  The
        invalidation rule mirrors insertion: removing ``u → v`` can
        only change paths whose root reaches ``u`` (they may have run
        through the edge), plus roots that appear (``v`` may become a
        source) or disappear with the edge.

        The underlying :class:`~repro.rdf.graph.DataGraph` is
        append-only, so deletion rebuilds the graph without the edge —
        O(|G|) for the graph structure, but path re-extraction stays
        local to the affected roots.
        """
        triple = Triple.of(subject, predicate, object)
        if triple not in set(self.graph.triples()):
            return False
        before_sources = set(self.graph.sources())
        old_src = self.graph.node_for(triple.subject)
        old_labels = {node: self.graph.label_of(node)
                      for node in self.graph.nodes()}

        rebuilt = type(self.graph)(name=self.graph.name)
        for existing in self.graph.triples():
            if existing != triple:
                rebuilt.add_triple(*existing)
        # Keep isolated endpoints so node identity stays meaningful.
        for label in (triple.subject, triple.object):
            rebuilt.node_for(label)
        # Node ids may renumber: path node_ids reference the OLD graph,
        # so a structural change of identity forces a full rebuild.
        same_ids = (rebuilt.node_count() == len(old_labels) and all(
            rebuilt.label_of(node) == label
            for node, label in old_labels.items()))
        self.graph = rebuilt
        self.stats.triples_added += 1  # counts update rounds
        self._begin_round()
        try:
            if not same_ids or self._hub_mode or not self.graph.sources():
                self._hub_mode = not self.graph.sources() \
                    and self.graph.node_count() > 0
                self._full_rebuild()
                return True

            after_sources = set(self.graph.sources())
            affected = self._roots_reaching(old_src, after_sources)
            affected |= (after_sources - before_sources)
            vanished = before_sources - after_sources
            for root in vanished | affected:
                self._invalidate_root(root)
            self._extract_roots(sorted(affected))
            return True
        finally:
            self._commit_round()

    def _roots_reaching(self, node: int, sources: set[int]) -> set[int]:
        """Sources with a directed path to ``node`` (reverse BFS)."""
        seen = {node}
        frontier = deque([node])
        found = set()
        while frontier:
            current = frontier.popleft()
            if current in sources:
                found.add(current)
            for _label, parent in self.graph.in_edges(current):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        if node in sources:
            found.add(node)
        return found

    def _invalidate_root(self, root: int) -> None:
        for offset in self._offsets_by_root.pop(root, set()):
            self._alive.discard(offset)
            self._root_of.pop(offset, None)
            self._decoded.pop(offset, None)
            owner = self._shard_by_offset.pop(offset, 0)
            if self._touched is not None:
                self._touched.add(owner)
            self.stats.paths_invalidated += 1
            self.stats.dead_bytes += self._record_size.pop(offset, 0)

    def _full_rebuild(self) -> None:
        self.stats.full_rebuilds += 1
        if self._touched is not None:
            # A rebuild rewrites every shard's contents by definition.
            self._touched.update(range(self.shards))
        for root in list(self._offsets_by_root):
            self._invalidate_root(root)
        self._sink_index = LabelIndex(self.thesaurus)
        self._contains_index = LabelIndex(self.thesaurus)
        self._decoded.clear()
        self._extract_roots(self.graph.path_roots())

    # -- the PathIndex lookup surface -----------------------------------------------

    @property
    def path_count(self) -> int:
        return len(self._alive)

    def path_at(self, offset: int) -> Path:
        cached = self._decoded.get(offset)
        if cached is None:
            cached = decode_path(self._records.read(offset))
            self._decoded[offset] = cached
        return cached

    def all_offsets(self) -> list[int]:
        return sorted(self._alive)

    def all_paths(self) -> list[Path]:
        return [self.path_at(offset) for offset in self.all_offsets()]

    def offsets_with_sink(self, label: Term, semantic: bool = True) -> list[int]:
        found = self._sink_index.lookup(label, semantic=semantic)
        return sorted(found & self._alive)

    def offsets_containing(self, label: Term, semantic: bool = True) -> list[int]:
        found = self._contains_index.lookup(label, semantic=semantic)
        return sorted(found & self._alive)

    def paths_with_sink(self, label: Term, semantic: bool = True) -> list[Path]:
        return [self.path_at(o) for o in self.offsets_with_sink(label, semantic)]

    def paths_containing(self, label: Term, semantic: bool = True) -> list[Path]:
        return [self.path_at(o)
                for o in self.offsets_containing(label, semantic)]

    def clear_cache(self) -> None:
        self._records.pool.clear()
        self._decoded.clear()

    def warm_up(self) -> None:
        for offset in self.all_offsets():
            self.path_at(offset)

    @property
    def io_stats(self):
        return self._records.store.stats

    @property
    def cache_stats(self):
        return self._records.pool.stats

    @property
    def metadata(self) -> dict:
        return {"dataset": self.graph.name, "incremental": True,
                "triples": self.graph.edge_count(), "epoch": self.epoch,
                "epochs": list(self._epochs), "shards": self.shards}

    def close(self) -> None:
        self._records.store.close()

    def __repr__(self):
        return (f"<IncrementalIndex: {self.path_count} live paths, "
                f"{self.stats.paths_invalidated} tombstoned>")

    # -- maintenance -----------------------------------------------------------------

    def compact(self, directory) -> "IncrementalIndex":
        """Vacuum: rewrite only the live paths into a fresh directory.

        The compacted index starts a *new* epoch (record offsets
        change, so anything keyed to the old data version is stale) and
        persists its manifest so disk-level tools can keep maintaining
        it.
        """
        fresh = IncrementalIndex.__new__(IncrementalIndex)
        fresh.graph = self.graph
        fresh.directory = directory
        fresh.limits = self.limits
        fresh.thesaurus = self.thesaurus
        fresh.stats = UpdateStats()
        os.makedirs(directory, exist_ok=True)
        store = PageStore(os.path.join(os.fspath(directory), "paths.log"),
                          page_size=self._records.store.page_size)
        fresh._records = RecordFile(store, BufferPool(store))
        fresh._sink_index = LabelIndex(self.thesaurus)
        fresh._contains_index = LabelIndex(self.thesaurus)
        fresh._alive = set()
        fresh._record_size = {}
        fresh._root_of = {}
        fresh._offsets_by_root = {}
        fresh._decoded = {}
        fresh._hub_mode = self._hub_mode
        fresh.shards = self.shards
        fresh.hash_seed = self.hash_seed
        fresh._shard_by_offset = {}
        fresh._route_interner = LabelInterner()
        fresh._touched = None
        # Compaction renumbers offsets in every shard: all epochs bump.
        fresh._epochs = [epoch + 1 for epoch in self._epochs]
        for offset in self.all_offsets():
            fresh._store_path(self._root_of[offset], self.path_at(offset))
        fresh.stats = UpdateStats()
        fresh.save_manifest()
        return fresh

    # -- on-disk manifest ---------------------------------------------------------

    def save_manifest(self) -> str:
        """Flush the log and persist the live-record manifest.

        The manifest (``incremental.json``, written atomically) records
        which offsets of ``paths.log`` are alive, their roots, the
        epoch, and the accumulated ``dead_bytes`` — everything
        :func:`compact_directory` needs to vacuum the log offline.
        Returns the manifest path.
        """
        self._records.sync()
        payload = {
            "version": _MANIFEST_VERSION,
            "epoch": self.epoch,
            "epochs": list(self._epochs),
            "shards": self.shards,
            "page_size": self._records.store.page_size,
            "dead_bytes": self.stats.dead_bytes,
            "alive": [[offset, self._root_of[offset]]
                      for offset in self.all_offsets()],
        }
        path = os.path.join(os.fspath(self.directory), MANIFEST_FILE)
        atomic_write_json(path, payload)
        return path


@dataclass
class CompactionReport:
    """What :func:`compact_directory` did to an index directory."""

    directory: str
    live_paths: int
    #: Tombstoned record bytes the manifest declared (reclaimed).
    dead_bytes: int
    #: paths.log size before and after the rewrite.
    old_log_bytes: int
    new_log_bytes: int
    #: Persisted ``sketch.bin`` files deleted because the rewrite
    #: renumbered their offsets (rebuild with ``sama index sketch``).
    sketches_invalidated: int = 0
    #: Persisted ``quotient.bin`` files deleted for the same reason
    #: (rebuild with ``sama index quotient``).
    quotients_invalidated: int = 0

    @property
    def reclaimed_bytes(self) -> int:
        return max(0, self.old_log_bytes - self.new_log_bytes)


def _read_manifest(directory) -> dict:
    path = os.path.join(os.fspath(directory), MANIFEST_FILE)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"cannot read incremental manifest {path}: {exc}") from exc
    if manifest.get("version") != _MANIFEST_VERSION:
        raise IndexCorruptError(
            f"incremental manifest version {manifest.get('version')!r} "
            f"unsupported (expected {_MANIFEST_VERSION})")
    return manifest


def compact_directory(directory, output=None) -> CompactionReport:
    """Vacuum an incremental index directory on disk.

    Reads the ``incremental.json`` manifest (see
    :meth:`IncrementalIndex.save_manifest`), rewrites only the live
    records into a fresh log, and — when ``output`` is ``None`` —
    atomically swaps the compacted directory into place (the original
    is staged aside and removed only after the swap, so a crash leaves
    a complete index under either name, never a torn one).

    Persisted sidecars — two-stage sketches (``sketch.bin``,
    :mod:`repro.sketch.store`) and quotient classes (``quotient.bin``,
    :mod:`repro.quotient.store`) — are deleted up front *only when
    compacting in place*: the rewrite renumbers every record offset
    and bumps every epoch, so they are stale the moment compaction
    succeeds.  Deleting early is safe — a crashed compaction leaves
    the old index authoritative and a missing sidecar merely falls
    back to exhaustive scoring (rebuild with ``sama index sketch`` /
    ``sama index quotient``); the epoch key in each sidecar header
    remains the backstop for writers that bypass this path.  With
    ``output`` set the source directory stays authoritative and keeps
    its valid sidecars; the fresh copy simply starts without any.
    """
    from ..quotient.store import invalidate_quotients
    from ..sketch.store import invalidate_sketches

    directory = os.fspath(directory)
    manifest = _read_manifest(directory)
    in_place = output is None
    sketches_invalidated = (invalidate_sketches(directory)
                            if in_place else 0)
    quotients_invalidated = (invalidate_quotients(directory)
                             if in_place else 0)
    store = PageStore(os.path.join(directory, "paths.log"),
                      page_size=manifest["page_size"])
    records = RecordFile(store, BufferPool(store))
    records.discard_tail()
    old_log_bytes = store.size_bytes()

    target = directory + ".compacting" if in_place else os.fspath(output)
    if os.path.exists(target):
        shutil.rmtree(target)
    os.makedirs(target)
    fresh_store = PageStore(os.path.join(target, "paths.log"),
                            page_size=manifest["page_size"])
    fresh_records = RecordFile(fresh_store, BufferPool(fresh_store))
    alive = []
    for offset, root in manifest["alive"]:
        blob = records.read(offset)
        alive.append([fresh_records.append(blob), root])
    fresh_records.sync()
    new_log_bytes = fresh_store.size_bytes()
    fresh_store.close()
    store.close()
    old_epochs = manifest.get("epochs") or [manifest["epoch"]]
    new_epochs = [epoch + 1 for epoch in old_epochs]
    atomic_write_json(os.path.join(target, MANIFEST_FILE), {
        "version": _MANIFEST_VERSION,
        "epoch": sum(new_epochs),
        "epochs": new_epochs,
        "shards": manifest.get("shards", len(new_epochs)),
        "page_size": manifest["page_size"],
        "dead_bytes": 0,
        "alive": alive,
    })

    final = directory if in_place else target
    if in_place:
        staged = directory + ".pre-compact"
        if os.path.exists(staged):
            shutil.rmtree(staged)
        os.rename(directory, staged)
        os.rename(target, directory)
        shutil.rmtree(staged)
    return CompactionReport(directory=final,
                            live_paths=len(alive),
                            dead_bytes=manifest["dead_bytes"],
                            old_log_bytes=old_log_bytes,
                            new_log_bytes=new_log_bytes,
                            sketches_invalidated=sketches_invalidated,
                            quotients_invalidated=quotients_invalidated)
