"""The label index: Lucene-Domain-index stand-in over graph labels (§6.1).

The prototype "define[s] a LDi index on the labels of nodes and edges"
so that "given a label, HGDB retrieves all paths containing data
elements matching the label in a very efficient way".  This module
provides that: an inverted index from exact labels and word tokens to
arbitrary integer entry ids (the path index registers path offsets),
plus a :class:`SemanticMatcher` that upgrades alignment's label
comparison with the same lexical and thesaurus machinery.
"""

from __future__ import annotations

from typing import Iterable

from ..rdf.terms import Literal, Term, URI, Variable
from .thesaurus import Thesaurus, tokenize_label


class LabelIndex:
    """Inverted index: exact label / token → entry ids."""

    def __init__(self, thesaurus: "Thesaurus | None" = None):
        self.thesaurus = thesaurus
        self._exact: dict[Term, set[int]] = {}
        self._tokens: dict[str, set[int]] = {}
        self._label_count = 0

    def add(self, label: Term, entry_id: int) -> None:
        """Register ``entry_id`` under ``label`` and all its tokens."""
        bucket = self._exact.get(label)
        if bucket is None:
            bucket = set()
            self._exact[label] = bucket
            self._label_count += 1
        bucket.add(entry_id)
        from .thesaurus import stem_candidates
        for token in tokenize_label(label):
            self._tokens.setdefault(token, set()).add(entry_id)
            for stemmed in stem_candidates(token):
                if stemmed != token:
                    # Index the singular stems too, so "Database"
                    # retrieves entries labelled "Databases".
                    self._tokens.setdefault(stemmed, set()).add(entry_id)

    def add_all(self, labels: Iterable[Term], entry_id: int) -> None:
        for label in labels:
            self.add(label, entry_id)

    # -- lookup --------------------------------------------------------------

    def lookup_exact(self, label: Term) -> set[int]:
        """Entries registered under exactly this label."""
        return set(self._exact.get(label, ()))

    def lookup_token(self, token: str) -> set[int]:
        """Entries whose labels contain the word ``token``."""
        return set(self._tokens.get(token.lower(), ()))

    def lookup(self, label: Term, semantic: bool = True) -> set[int]:
        """Entries matching ``label`` exactly, lexically, or semantically.

        Tries exact match first (the cheap common case); falls back to
        token conjunction (all the label's words), then — when a
        thesaurus is configured and ``semantic`` is true — to the union
        over thesaurus expansions of each token.
        """
        exact = self.lookup_exact(label)
        if exact:
            return exact
        tokens = tokenize_label(label)
        if not tokens:
            return set()
        matched = self._conjunction(tokens)
        if matched or not (semantic and self.thesaurus):
            return matched
        widened: set[int] = set()
        for token in tokens:
            for variant in self.thesaurus.expand(token):
                widened |= self.lookup_token(variant)
        return widened

    def _conjunction(self, tokens: list[str]) -> set[int]:
        result: "set[int] | None" = None
        for token in tokens:
            bucket = self._tokens.get(token)
            if not bucket:
                return set()
            result = set(bucket) if result is None else result & bucket
            if not result:
                return set()
        return result or set()

    @property
    def label_count(self) -> int:
        """Distinct exact labels indexed (the |hash| of build step i)."""
        return self._label_count

    @property
    def token_count(self) -> int:
        return len(self._tokens)

    def __repr__(self):
        return (f"<LabelIndex: {self.label_count} labels, "
                f"{self.token_count} tokens>")


class SemanticMatcher:
    """A :data:`~repro.paths.alignment.LabelMatcher` with graded laxity.

    Levels
    ------
    ``exact``
        Plain term equality (the alignment default).
    ``lexical``
        Equality, or equal token sequences — ``ub:FullProfessor``
        matches the literal ``"full professor"``.
    ``semantic``
        Lexical, or token-wise thesaurus relatedness: every query token
        must be matched by some related data token.  This is the level
        the Sama prototype runs at (WordNet-backed matching, §6.1).
    """

    LEVELS = ("exact", "lexical", "semantic")

    def __init__(self, thesaurus: "Thesaurus | None" = None,
                 level: str = "semantic"):
        if level not in self.LEVELS:
            raise ValueError(f"level must be one of {self.LEVELS}, got {level!r}")
        if level == "semantic" and thesaurus is None:
            raise ValueError("semantic level needs a thesaurus")
        self.thesaurus = thesaurus
        self.level = level
        self._cache: dict[tuple[Term, Term], bool] = {}

    def __call__(self, data_label: Term, query_label: Term) -> bool:
        if data_label == query_label:
            return True
        if self.level == "exact":
            return False
        key = (data_label, query_label)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._match(data_label, query_label)
            self._cache[key] = cached
        return cached

    def _match(self, data_label: Term, query_label: Term) -> bool:
        if isinstance(data_label, Variable) or isinstance(query_label, Variable):
            # Variables are the alignment's business, not the matcher's.
            return False
        data_tokens = tokenize_label(data_label)
        query_tokens = tokenize_label(query_label)
        if not data_tokens or not query_tokens:
            return False
        if data_tokens == query_tokens:
            return True
        if self.level == "lexical":
            return False
        return self._tokens_related(data_tokens, query_tokens)

    def _tokens_related(self, data_tokens: list[str],
                        query_tokens: list[str]) -> bool:
        from .thesaurus import stem_candidates

        data_stems: set[str] = set()
        for token in data_tokens:
            data_stems |= stem_candidates(token)
        for query_token in query_tokens:
            expansion = self.thesaurus.expand(query_token)
            if any(token in expansion for token in data_tokens):
                continue
            # Morphological fallback: compare singular stems too.
            if stem_candidates(query_token) & data_stems:
                continue
            return False
        return True
