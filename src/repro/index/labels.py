"""The label index: Lucene-Domain-index stand-in over graph labels (§6.1).

The prototype "define[s] a LDi index on the labels of nodes and edges"
so that "given a label, HGDB retrieves all paths containing data
elements matching the label in a very efficient way".  This module
provides that: an inverted index from exact labels and word tokens to
arbitrary integer entry ids (the path index registers path offsets),
plus a :class:`SemanticMatcher` that upgrades alignment's label
comparison with the same lexical and thesaurus machinery.
"""

from __future__ import annotations

import io
import os
from array import array
from typing import BinaryIO, Iterable

from ..paths.model import Path
from ..rdf.terms import Literal, Term, URI, Variable
from .thesaurus import Thesaurus, tokenize_label


def _uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one LEB128 varint at ``pos``; returns (value, next pos)."""
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            from ..storage.serializer import CodecError
            raise CodecError("varint too long")


class LabelInterner:
    """A persisted dense label → ``int`` id dictionary.

    The hot paths of the engine — χ intersections inside ψ, the
    search's inverted candidate buckets, the conformity floors — all
    operate on *sets of node labels*.  Hashing and comparing full
    :class:`~repro.rdf.terms.Term` objects there costs a Python-level
    ``__eq__`` per probe; interning every label once into a dense
    integer id turns those into C-speed small-int set operations (the
    classic IR/RDF-store dense-vocabulary move).

    Ids are assigned in first-use order (an id *is* its position), so
    the on-disk form is simply the labels in order: ``LINT`` magic, a
    varint count, then each term in the serializer's term encoding.
    The index builder interns every node label at ``add_path`` time and
    persists the dictionary next to the path log; reopening reads it
    back so ids are stable across processes.  Labels first seen at
    query time (thesaurus-widened anchors, literals only the query
    mentions) keep interning in memory — determinism within a process
    is all χ needs, since only *data-path* id sets are ever intersected.
    """

    def __init__(self):
        self._terms: list[Term] = []
        self._ids: dict[Term, int] = {}

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def intern(self, term: Term) -> int:
        """The dense id of ``term``, assigning the next id on first use."""
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        label_id = len(self._terms)
        self._terms.append(term)
        self._ids[term] = label_id
        return label_id

    def lookup(self, label_id: int) -> Term:
        """The label behind ``label_id``."""
        return self._terms[label_id]

    def intern_path(self, path: Path) -> Path:
        """Attach the ``array('i')`` id sequence of ``path``'s node
        labels (idempotent; returns ``path`` for chaining)."""
        if path.label_ids is None:
            path.attach_label_ids(
                array("i", [self.intern(node) for node in path.nodes]))
        return path

    # -- record codec ------------------------------------------------------

    def encode_path(self, path: Path) -> bytes:
        """Serialise ``path`` as varint label ids in this dictionary.

        The interned record format: varint node count, the node label
        ids, the edge label ids, then the node-id presence flag and
        varints of the serializer format.  Ids are (re)computed through
        :meth:`intern` rather than trusting any attached ``label_ids``
        — those may belong to a different interner.
        """
        from ..storage.serializer import write_varint

        stream = io.BytesIO()
        write_varint(stream, path.length)
        for node in path.nodes:
            write_varint(stream, self.intern(node))
        for edge in path.edges:
            write_varint(stream, self.intern(edge))
        if path.node_ids is None:
            stream.write(b"\x00")
        else:
            stream.write(b"\x01")
            for node_id in path.node_ids:
                write_varint(stream, node_id)
        return stream.getvalue()

    def decode_path(self, data: bytes) -> Path:
        """Deserialise an interned record.

        This is the decode hot path of query-time cluster retrieval:
        label ids resolve by list indexing into *shared* Term objects
        (no UTF-8 parsing, no fresh Term per record), and the node-id
        array doubles as the path's ``label_ids``, so the dense-ID
        pipeline needs no re-interning pass afterwards.
        """
        from ..storage.serializer import CodecError

        # Varints are parsed by direct byte indexing — a BytesIO-based
        # reader allocates a one-byte object per byte read, which is
        # the difference between decode being I/O-shaped and
        # allocation-shaped on cold cluster scans.
        try:
            count, pos = _uvarint(data, 0)
            if count < 1:
                raise CodecError("path must have at least one node")
            terms = self._terms
            raw_ids = []
            append_id = raw_ids.append
            for _ in range(count):
                byte = data[pos]
                if byte < 0x80:
                    pos += 1
                else:
                    byte, pos = _uvarint(data, pos)
                append_id(byte)
            label_ids = array("i", raw_ids)
            nodes = tuple(terms[i] for i in raw_ids)
            edges = []
            for _ in range(count - 1):
                byte = data[pos]
                if byte < 0x80:
                    pos += 1
                else:
                    byte, pos = _uvarint(data, pos)
                edges.append(terms[byte])
            flag = data[pos:pos + 1]
            pos += 1
            if flag == b"\x00":
                node_ids = None
            elif flag == b"\x01":
                ids = []
                for _ in range(count):
                    value, pos = _uvarint(data, pos)
                    ids.append(value)
                node_ids = tuple(ids)
            else:
                raise CodecError(f"bad node-id presence flag {flag!r}")
        except IndexError as exc:
            raise CodecError(f"truncated or corrupt interned record: "
                             f"{exc}") from exc
        path = Path.from_terms(nodes, tuple(edges), node_ids)
        path.attach_label_ids(label_ids)
        return path

    # -- persistence -------------------------------------------------------

    def save(self, path) -> int:
        """Write the dictionary to ``path``; returns bytes written.

        The write is atomic (temp file + ``os.replace``): a crash
        mid-save can never leave a torn ``labels.dict`` that a server
        opening the index would reject as corrupt.
        """
        from ..storage.atomic import atomic_write_bytes
        from ..storage.serializer import write_term, write_varint

        buffer = io.BytesIO()
        buffer.write(b"LINT")
        write_varint(buffer, len(self._terms))
        for term in self._terms:
            write_term(buffer, term)
        return atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def load(cls, path) -> "LabelInterner":
        from ..storage.serializer import CodecError, read_term, read_varint

        with open(path, "rb") as handle:
            stream: BinaryIO = io.BytesIO(handle.read())
        magic = stream.read(4)
        if magic != b"LINT":
            raise CodecError(f"{os.fspath(path)} is not a label-interner "
                             f"dictionary (magic {magic!r})")
        count = read_varint(stream)
        interner = cls()
        for _ in range(count):
            interner.intern(read_term(stream))
        if len(interner) != count:
            raise CodecError("duplicate labels in interner stream")
        return interner


class LabelIndex:
    """Inverted index: exact label / token → entry ids."""

    def __init__(self, thesaurus: "Thesaurus | None" = None):
        self.thesaurus = thesaurus
        self._exact: dict[Term, set[int]] = {}
        self._tokens: dict[str, set[int]] = {}
        self._label_count = 0

    def add(self, label: Term, entry_id: int) -> None:
        """Register ``entry_id`` under ``label`` and all its tokens."""
        bucket = self._exact.get(label)
        if bucket is None:
            bucket = set()
            self._exact[label] = bucket
            self._label_count += 1
        bucket.add(entry_id)
        from .thesaurus import stem_candidates
        for token in tokenize_label(label):
            self._tokens.setdefault(token, set()).add(entry_id)
            for stemmed in stem_candidates(token):
                if stemmed != token:
                    # Index the singular stems too, so "Database"
                    # retrieves entries labelled "Databases".
                    self._tokens.setdefault(stemmed, set()).add(entry_id)

    def add_all(self, labels: Iterable[Term], entry_id: int) -> None:
        for label in labels:
            self.add(label, entry_id)

    # -- lookup --------------------------------------------------------------

    def lookup_exact(self, label: Term) -> set[int]:
        """Entries registered under exactly this label."""
        return set(self._exact.get(label, ()))

    def lookup_token(self, token: str) -> set[int]:
        """Entries whose labels contain the word ``token``."""
        return set(self._tokens.get(token.lower(), ()))

    def lookup(self, label: Term, semantic: bool = True) -> set[int]:
        """Entries matching ``label`` exactly, lexically, or semantically.

        Tries exact match first (the cheap common case); falls back to
        token conjunction (all the label's words), then — when a
        thesaurus is configured and ``semantic`` is true — to the union
        over thesaurus expansions of each token.
        """
        exact = self.lookup_exact(label)
        if exact:
            return exact
        tokens = tokenize_label(label)
        if not tokens:
            return set()
        matched = self._conjunction(tokens)
        if matched or not (semantic and self.thesaurus):
            return matched
        widened: set[int] = set()
        for token in tokens:
            for variant in self.thesaurus.expand(token):
                widened |= self.lookup_token(variant)
        return widened

    def _conjunction(self, tokens: list[str]) -> set[int]:
        result: "set[int] | None" = None
        for token in tokens:
            bucket = self._tokens.get(token)
            if not bucket:
                return set()
            result = set(bucket) if result is None else result & bucket
            if not result:
                return set()
        return result or set()

    @property
    def label_count(self) -> int:
        """Distinct exact labels indexed (the |hash| of build step i)."""
        return self._label_count

    @property
    def token_count(self) -> int:
        return len(self._tokens)

    def __repr__(self):
        return (f"<LabelIndex: {self.label_count} labels, "
                f"{self.token_count} tokens>")


class SemanticMatcher:
    """A :data:`~repro.paths.alignment.LabelMatcher` with graded laxity.

    Levels
    ------
    ``exact``
        Plain term equality (the alignment default).
    ``lexical``
        Equality, or equal token sequences — ``ub:FullProfessor``
        matches the literal ``"full professor"``.
    ``semantic``
        Lexical, or token-wise thesaurus relatedness: every query token
        must be matched by some related data token.  This is the level
        the Sama prototype runs at (WordNet-backed matching, §6.1).
    """

    LEVELS = ("exact", "lexical", "semantic")

    def __init__(self, thesaurus: "Thesaurus | None" = None,
                 level: str = "semantic"):
        if level not in self.LEVELS:
            raise ValueError(f"level must be one of {self.LEVELS}, got {level!r}")
        if level == "semantic" and thesaurus is None:
            raise ValueError("semantic level needs a thesaurus")
        self.thesaurus = thesaurus
        self.level = level
        self._cache: dict[tuple[Term, Term], bool] = {}

    def __call__(self, data_label: Term, query_label: Term) -> bool:
        if data_label == query_label:
            return True
        if self.level == "exact":
            return False
        key = (data_label, query_label)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._match(data_label, query_label)
            self._cache[key] = cached
        return cached

    def _match(self, data_label: Term, query_label: Term) -> bool:
        if isinstance(data_label, Variable) or isinstance(query_label, Variable):
            # Variables are the alignment's business, not the matcher's.
            return False
        data_tokens = tokenize_label(data_label)
        query_tokens = tokenize_label(query_label)
        if not data_tokens or not query_tokens:
            return False
        if data_tokens == query_tokens:
            return True
        if self.level == "lexical":
            return False
        return self._tokens_related(data_tokens, query_tokens)

    def _tokens_related(self, data_tokens: list[str],
                        query_tokens: list[str]) -> bool:
        from .thesaurus import stem_candidates

        data_stems: set[str] = set()
        for token in data_tokens:
            data_stems |= stem_candidates(token)
        for query_token in query_tokens:
            expansion = self.thesaurus.expand(query_token)
            if any(token in expansion for token in data_tokens):
                continue
            # Morphological fallback: compare singular stems too.
            if stem_candidates(query_token) & data_stems:
                continue
            return False
        return True
