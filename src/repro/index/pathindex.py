"""The disk-resident path index (§6.1).

The index stores every source-to-sink path of the data graph, because
"they bring information that might match the query" and retrieving them
"allows us to skip the expensive graph traversal at runtime".  Paths
live in a page-structured record log; two label indexes — one over
sink labels, one over all labels a path contains — answer the two
lookups clustering needs:

- ``paths_with_sink(label)``: paths whose sink matches the sink of a
  query path;
- ``paths_containing(label)``: paths containing a label matching the
  first constant of a query path (used when the query sink is a
  variable).

Both lookups go through the Lucene-stand-in :class:`LabelIndex`, so
they match exactly, lexically, or via thesaurus expansion.  Decoded
paths are fetched through the buffer pool: clearing it reproduces the
paper's cold-cache condition.
"""

from __future__ import annotations

import json
import os

from ..paths.model import Path
from ..rdf.ntriples import parse_term
from ..rdf.terms import Term
from ..resilience.errors import IndexCorruptError, StorageError
from ..storage.atomic import atomic_write_json, sweep_tmp_debris
from ..storage.bufferpool import BufferPool
from ..storage.dictionary import (TermDictionary, decode_path_ids,
                                  encode_path_ids)
from ..storage.pagestore import PageStore
from ..storage.recordfile import RecordFile
from ..storage.serializer import decode_path, encode_path
from .labels import LabelIndex, LabelInterner
from .thesaurus import Thesaurus

_PATHS_FILE = "paths.log"
_DICT_FILE = "terms.dict"
_LABELS_FILE = "labels.dict"
_MAPS_FILE = "maps.json"
_FORMAT_VERSION = 1

#: Pages prefetched after a demand miss during record reads.  Records
#: are packed contiguously and cluster retrieval walks offsets in
#: ascending order, so sequential read-ahead turns one-fault-per-path
#: cold scans into one fault per run of pages.
DEFAULT_READ_AHEAD = 8


class PathIndex:
    """Query-time view of an indexed data graph.

    Build with :func:`repro.index.builder.build_index`; reopen later
    with :meth:`PathIndex.open`.
    """

    def __init__(self, directory, records: RecordFile,
                 sink_index: LabelIndex, contains_index: LabelIndex,
                 offsets: list[int], metadata: dict,
                 dictionary: "TermDictionary | None" = None,
                 interner: "LabelInterner | None" = None,
                 interned_records: bool = False):
        self.directory = os.fspath(directory)
        self._records = records
        self._sink_index = sink_index
        self._contains_index = contains_index
        self._offsets = offsets
        self.metadata = metadata
        self._dictionary = dictionary
        # Every decoded path gets dense node-label ids attached so χ/ψ
        # downstream intersect int-sets; indexes built before the
        # interner existed just start from an empty in-memory one.
        self.interner = interner if interner is not None else LabelInterner()
        self._interned_records = interned_records
        self._decoded: dict[int, Path] = {}
        #: Records decoded from storage (cache misses of ``_decoded``);
        #: surfaced on ``/metrics`` as ``sama_record_decodes_total``.
        self.decode_count = 0
        #: Data version for result caching.  A static on-disk index
        #: never changes after build, so its epoch is constant;
        #: :class:`~repro.index.incremental.IncrementalIndex` bumps its
        #: own counter on every update/compaction.
        self.epoch = 0

    @property
    def is_compressed(self) -> bool:
        """True when records are dictionary-encoded (§7 extension)."""
        return self._dictionary is not None

    # -- opening ---------------------------------------------------------------

    @classmethod
    def open(cls, directory, thesaurus: "Thesaurus | None" = None,
             read_latency: float = 0.0,
             pool_capacity: int = 4096,
             read_ahead: int = DEFAULT_READ_AHEAD,
             interner: "LabelInterner | None" = None) -> "PathIndex":
        """Open an index previously persisted under ``directory``.

        ``interner`` supplies an already-loaded label dictionary
        instead of reading ``labels.dict`` from disk — the sharded
        index opens one global dictionary and shares it across every
        shard so dense label ids agree globally.
        """
        directory = os.fspath(directory)
        # A crash mid-atomic-write strands a *.tmp sibling; the real
        # files are intact, so just clean the debris on the way in.
        sweep_tmp_debris(directory)
        maps_path = os.path.join(directory, _MAPS_FILE)
        try:
            with open(maps_path, encoding="utf-8") as handle:
                maps = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise IndexCorruptError(f"cannot read {maps_path}: {exc}") from exc
        if maps.get("version") != _FORMAT_VERSION:
            raise IndexCorruptError(
                f"index format {maps.get('version')!r} unsupported "
                f"(expected {_FORMAT_VERSION})")
        # Older maps.json files predate the recorded page size; they
        # were always written with the 4 KiB default.
        store = PageStore(os.path.join(directory, _PATHS_FILE),
                          page_size=maps.get("page_size", 4096),
                          read_latency=read_latency)
        pool = BufferPool(store, capacity=pool_capacity,
                          read_ahead=read_ahead)
        records = RecordFile(store, pool)
        # An opened index is read-only: drop the staged tail so every
        # record read is a real (pooled) page read — otherwise the last
        # page would be served from memory, hiding it from cold-cache
        # accounting and fault injection alike.
        records.discard_tail()
        sink_index = _load_label_map(maps["sink"], thesaurus)
        contains_index = _load_label_map(maps["contains"], thesaurus)
        offsets = list(maps["offsets"])
        dictionary = None
        if maps.get("compressed"):
            dictionary = TermDictionary.load(
                os.path.join(directory, _DICT_FILE))
        if interner is None:
            labels_path = os.path.join(directory, _LABELS_FILE)
            if os.path.exists(labels_path):
                try:
                    interner = LabelInterner.load(labels_path)
                except Exception as exc:
                    raise IndexCorruptError(
                        f"cannot read {labels_path}: {exc}") from exc
        interned_records = bool(maps.get("interned_records"))
        if interned_records and interner is None:
            raise IndexCorruptError(
                f"{directory} stores interned records but has no "
                f"{_LABELS_FILE} dictionary to decode them")
        return cls(directory, records, sink_index, contains_index,
                   offsets, maps.get("metadata", {}), dictionary=dictionary,
                   interner=interner, interned_records=interned_records)

    def close(self) -> None:
        self._records.store.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- lookups ------------------------------------------------------------------

    @property
    def path_count(self) -> int:
        return len(self._offsets)

    def path_at(self, offset: int) -> Path:
        """Decode the path stored at ``offset`` (cached after first use).

        Storage-level failures (transient reads, checksum mismatches)
        propagate as their own typed errors; anything else that goes
        wrong while decoding the record means the stored bytes are not
        a path and surfaces as :class:`IndexCorruptError`.
        """
        cached = self._decoded.get(offset)
        if cached is None:
            try:
                blob = self._records.read(offset)
                if self._interned_records:
                    # label_ids come attached straight from the record.
                    cached = self.interner.decode_path(blob)
                elif self._dictionary is not None:
                    cached = decode_path_ids(blob, self._dictionary)
                else:
                    cached = decode_path(blob)
            except (StorageError, IndexCorruptError):
                raise
            except Exception as exc:
                raise IndexCorruptError(
                    f"cannot decode path at offset {offset} of "
                    f"{self.directory}: {exc}") from exc
            if cached.label_ids is None:
                self.interner.intern_path(cached)
            self._decoded[offset] = cached
            self.decode_count += 1
        return cached

    def all_offsets(self) -> list[int]:
        return list(self._offsets)

    def all_paths(self) -> list[Path]:
        """Every indexed path (decodes the full log — benchmarks only)."""
        return [self.path_at(offset) for offset in self._offsets]

    def offsets_with_sink(self, label: Term, semantic: bool = True) -> list[int]:
        """Offsets of paths whose sink matches ``label``."""
        return sorted(self._sink_index.lookup(label, semantic=semantic))

    def offsets_containing(self, label: Term, semantic: bool = True) -> list[int]:
        """Offsets of paths containing a label matching ``label``."""
        return sorted(self._contains_index.lookup(label, semantic=semantic))

    def paths_with_sink(self, label: Term, semantic: bool = True) -> list[Path]:
        return [self.path_at(o) for o in self.offsets_with_sink(label, semantic)]

    def paths_containing(self, label: Term, semantic: bool = True) -> list[Path]:
        return [self.path_at(o) for o in self.offsets_containing(label, semantic)]

    # -- cache control (cold / warm experiments) ---------------------------------

    def clear_cache(self) -> None:
        """Cold-cache condition: drop buffer pool and decoded paths."""
        self._records.pool.clear()
        self._decoded.clear()

    def warm_up(self) -> None:
        """Touch every page once so subsequent runs are warm."""
        for offset in self._offsets:
            self.path_at(offset)

    @property
    def page_store(self):
        """The underlying page store (fault injection, direct stats)."""
        return self._records.store

    @property
    def io_stats(self):
        """Physical I/O counters of the underlying store."""
        return self._records.store.stats

    @property
    def cache_stats(self):
        """Buffer pool hit/miss counters."""
        return self._records.pool.stats

    def __repr__(self):
        return (f"<PathIndex {self.directory!r}: {self.path_count} paths, "
                f"{self._sink_index.label_count} sink labels>")


class PathIndexWriter:
    """Accumulates paths during the build, then persists the maps."""

    def __init__(self, directory, thesaurus: "Thesaurus | None" = None,
                 page_size: int = 4096, compress: bool = False,
                 intern_records: bool = True,
                 interner: "LabelInterner | None" = None):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._store = PageStore(os.path.join(self.directory, _PATHS_FILE),
                                page_size=page_size)
        self._records = RecordFile(self._store)
        self._thesaurus = thesaurus
        self._dictionary = TermDictionary() if compress else None
        # ``interner`` lets several writers share one global label
        # dictionary (the sharded build); each writer still persists
        # the full dictionary so its directory stays self-contained.
        self._interner = interner if interner is not None else LabelInterner()
        # Interned records are the default format: compact like the §7
        # dictionary compression AND decodable without constructing
        # fresh Terms.  ``compress`` (the explicit §7 codec) takes
        # precedence; ``intern_records=False`` writes the original
        # inline-term records for comparison/compatibility runs.
        self._intern_records = intern_records and not compress
        self._sink_map: dict[Term, list[int]] = {}
        self._contains_map: dict[Term, list[int]] = {}
        self._offsets: list[int] = []

    def add_path(self, path: Path) -> int:
        """Store one path; returns its offset."""
        self._interner.intern_path(path)
        if self._dictionary is not None:
            blob = encode_path_ids(path, self._dictionary)
        elif self._intern_records:
            blob = self._interner.encode_path(path)
        else:
            blob = encode_path(path)
        offset = self._records.append(blob)
        self._offsets.append(offset)
        self._sink_map.setdefault(path.sink, []).append(offset)
        seen: set[Term] = set()
        for node in path.nodes:
            seen.add(node)
        for edge in path.edges:
            seen.add(edge)
        for label in seen:
            self._contains_map.setdefault(label, []).append(offset)
        return offset

    def finish(self, metadata: "dict | None" = None) -> PathIndex:
        """Flush, persist the maps, and return the opened index."""
        self._records.seal()
        maps = {
            "version": _FORMAT_VERSION,
            "metadata": metadata or {},
            "page_size": self._store.page_size,
            "compressed": self._dictionary is not None,
            "interned_records": self._intern_records,
            "offsets": self._offsets,
            "sink": _dump_label_map(self._sink_map),
            "contains": _dump_label_map(self._contains_map),
        }
        if self._dictionary is not None:
            self._dictionary.save(os.path.join(self.directory, _DICT_FILE))
        self._interner.save(os.path.join(self.directory, _LABELS_FILE))
        # maps.json is the file that makes the directory an index; write
        # it atomically so a crash here leaves either no index or a
        # complete one, never a torn manifest.
        atomic_write_json(os.path.join(self.directory, _MAPS_FILE), maps)
        sink_index = _build_label_index(self._sink_map, self._thesaurus)
        contains_index = _build_label_index(self._contains_map, self._thesaurus)
        return PathIndex(self.directory, self._records, sink_index,
                         contains_index, self._offsets, maps["metadata"],
                         dictionary=self._dictionary,
                         interner=self._interner,
                         interned_records=self._intern_records)

    @property
    def size_bytes(self) -> int:
        total = self._store.size_bytes()
        for name in (_DICT_FILE, _LABELS_FILE):
            side_path = os.path.join(self.directory, name)
            if os.path.exists(side_path):
                total += os.path.getsize(side_path)
        return total


def _dump_label_map(label_map: dict[Term, list[int]]) -> dict[str, list[int]]:
    return {label.n3(): offsets for label, offsets in label_map.items()}


def _load_label_map(dumped: dict[str, list[int]],
                    thesaurus: "Thesaurus | None") -> LabelIndex:
    index = LabelIndex(thesaurus)
    for n3, offsets in dumped.items():
        label = parse_term(n3)
        for offset in offsets:
            index.add(label, offset)
    return index


def _build_label_index(label_map: dict[Term, list[int]],
                       thesaurus: "Thesaurus | None") -> LabelIndex:
    index = LabelIndex(thesaurus)
    for label, offsets in label_map.items():
        for offset in offsets:
            index.add(label, offset)
    return index
