"""The sharded path index: N self-contained shards, one global view.

The single-directory :class:`~repro.index.pathindex.PathIndex` caps
index size and query fan-out on one record log and one buffer pool.
A :class:`ShardedIndex` partitions the stored paths across ``N``
shards by a **stable hash of the path's sorted label-id signature**
(the set of dense label ids of its nodes and edges, sorted — a
partition-stable signature in the spirit of bisimulation-style label
signatures).  Each shard is a complete, self-contained
:class:`PathIndex` directory — its own ``paths.log``, label maps,
buffer pool and ``labels.dict`` — except that every shard's label
dictionary is the *same global* :class:`~repro.index.labels.LabelInterner`,
so dense label ids mean the same thing in every shard and χ/ψ
downstream never re-intern.

Layout::

    index-dir/
      manifest.json        # kind, shard count, hash seed, per-shard epochs,
                           # per-shard global-id lists  (atomic write)
      shard-00/            # a full PathIndex directory
      shard-01/
      ...

Determinism is the load-bearing property.  Build order assigns every
path a **global id** (gid) in the exact order the unsharded builder
walks paths; because the unsharded index stores paths in that same
order, its byte offsets are monotone in gid.  Query-time lookups
return *gids* in sorted order — the same candidate order the unsharded
index produces — and the engine's cluster sort key ``(λ, gid)``
therefore reproduces the unsharded ``(λ, offset)`` order exactly:
rankings are bit-identical at any shard count (asserted by
``benchmarks/bench_sharding.py`` and ``tests/test_sharded.py``).

Example (two shards over the Fig. 1 US-Congress graph)::

    >>> import tempfile
    >>> from repro.datasets.govtrack import govtrack_graph
    >>> from repro.index.sharded import ShardedIndex, build_sharded_index
    >>> directory = tempfile.mkdtemp(prefix="sama-sharded-")
    >>> index, stats = build_sharded_index(govtrack_graph(), directory,
    ...                                    shards=2)
    >>> index.shard_count
    2
    >>> index.path_count == sum(s.path_count for s in index.shards)
    True
    >>> reopened = ShardedIndex.open(directory)
    >>> reopened.epoch_vector
    (0, 0)
    >>> reopened.all_offsets() == list(range(reopened.path_count))
    True
"""

from __future__ import annotations

import json
import os
import shutil
import time
from typing import Iterable

from ..paths.extraction import ExtractionLimits, _Budget, _walk_from
from ..paths.model import Path
from ..rdf.graph import DataGraph
from ..rdf.terms import Term
from ..resilience.errors import (IndexCorruptError, ShardUnavailableError,
                                 StorageError)
from ..resilience.health import BreakerConfig, ShardHealth
from ..storage.atomic import atomic_write_json, sweep_tmp_debris
from .builder import INDEXER_LIMITS, IndexStats
from .labels import LabelInterner
from .pathindex import (DEFAULT_READ_AHEAD, PathIndex, PathIndexWriter,
                        _LABELS_FILE)
from .thesaurus import Thesaurus, default_thesaurus

MANIFEST_FILE = "manifest.json"
_MANIFEST_VERSION = 1
_MANIFEST_KIND = "sharded"

_FNV_OFFSET = 0xcbf29ce484222325
_FNV_PRIME = 0x100000001b3
_FNV_MASK = (1 << 64) - 1


def signature_hash(label_ids: Iterable[int], seed: int = 0) -> int:
    """FNV-1a (64-bit) over the sorted, de-duplicated ``label_ids``.

    Python's builtin ``hash`` is salted per process; this one is stable
    across processes and platforms, so a path always lands on the same
    shard no matter who computes the route.  ``seed`` perturbs the
    initial basis (recorded in the manifest) so two sharded indexes can
    deliberately partition differently.
    """
    value = (_FNV_OFFSET ^ (seed & _FNV_MASK)) & _FNV_MASK
    for label_id in sorted(set(label_ids)):
        # Mix each id byte-by-byte, LSB first (ids are small ints).
        if label_id < 0:
            label_id = -label_id * 2 + 1
        while True:
            value ^= label_id & 0xFF
            value = (value * _FNV_PRIME) & _FNV_MASK
            label_id >>= 8
            if not label_id:
                break
    return value


def shard_of(path: Path, interner: LabelInterner, shard_count: int,
             seed: int = 0) -> int:
    """The owning shard of ``path``: hash of its label-id signature.

    The signature covers node *and* edge labels (both are interned
    through the shared global dictionary), so structurally similar
    paths co-locate and the route needs nothing but the path itself.
    """
    if shard_count <= 1:
        return 0
    ids = [interner.intern(node) for node in path.nodes]
    ids.extend(interner.intern(edge) for edge in path.edges)
    return signature_hash(ids, seed) % shard_count


def shard_dir(directory, shard: int) -> str:
    return os.path.join(os.fspath(directory), f"shard-{shard:02d}")


def is_sharded_dir(directory) -> bool:
    """True when ``directory`` holds a sharded-index manifest.

    Only a genuinely *absent* manifest means "not sharded".  A manifest
    that exists but cannot be read or parsed is diagnosed as
    :class:`IndexCorruptError` — silently answering ``False`` here used
    to make dispatch code fall through to :class:`PathIndex`, which
    then failed on the missing ``maps.json`` with an error pointing at
    entirely the wrong file.
    """
    path = os.path.join(os.fspath(directory), MANIFEST_FILE)
    if not os.path.exists(path):
        return False
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        return False          # raced away between exists() and open()
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"shard manifest {path} exists but is unreadable: {exc} "
            f"— restore it from a replica or rebuild the index") from exc
    return manifest.get("kind") == _MANIFEST_KIND


def _write_manifest(directory, shards: int, hash_seed: int,
                    epochs: list, gids: list, metadata: dict) -> None:
    atomic_write_json(os.path.join(os.fspath(directory), MANIFEST_FILE), {
        "version": _MANIFEST_VERSION,
        "kind": _MANIFEST_KIND,
        "shards": shards,
        "hash_seed": hash_seed,
        "epochs": list(epochs),
        "gids": [list(shard_gids) for shard_gids in gids],
        "metadata": metadata or {},
    })


def _read_manifest(directory) -> dict:
    path = os.path.join(os.fspath(directory), MANIFEST_FILE)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"cannot read shard manifest {path}: {exc}") from exc
    if manifest.get("version") != _MANIFEST_VERSION \
            or manifest.get("kind") != _MANIFEST_KIND:
        raise IndexCorruptError(
            f"{path} is not a sharded-index manifest "
            f"(kind {manifest.get('kind')!r}, "
            f"version {manifest.get('version')!r})")
    if len(manifest.get("gids", [])) != manifest.get("shards"):
        raise IndexCorruptError(
            f"{path}: gid lists do not match the shard count")
    return manifest


class _AggregateIO:
    """A live read-only view summing per-shard physical I/O counters."""

    __slots__ = ("_shards",)

    def __init__(self, shards: list):
        self._shards = shards

    @property
    def page_reads(self) -> int:
        return sum(s.io_stats.page_reads for s in self._shards)

    @property
    def page_writes(self) -> int:
        return sum(s.io_stats.page_writes for s in self._shards)

    @property
    def read_seconds(self) -> float:
        return sum(s.io_stats.read_seconds for s in self._shards)


class _AggregateCache:
    """A live read-only view summing per-shard buffer-pool counters."""

    __slots__ = ("_shards",)

    def __init__(self, shards: list):
        self._shards = shards

    @property
    def hits(self) -> int:
        return sum(s.cache_stats.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.cache_stats.misses for s in self._shards)

    @property
    def prefetches(self) -> int:
        return sum(s.cache_stats.prefetches for s in self._shards)

    @property
    def retries(self) -> int:
        return sum(s.cache_stats.retries for s in self._shards)


class _ZeroShardStats:
    """Stats stand-in for a quarantined shard (all counters zero)."""

    page_reads = 0
    page_writes = 0
    read_seconds = 0.0
    hits = 0
    misses = 0
    prefetches = 0
    retries = 0


class QuarantinedShard:
    """Placeholder occupying a damaged shard's slot in the shard list.

    Produced by ``ShardedIndex.open(..., on_damage="quarantine")`` when
    the startup recovery scan finds a shard it cannot serve (unreadable
    ``maps.json``, record count disagreeing with the manifest, first
    record failing to decode).  It keeps the shard *numbering* intact —
    gid routing, the epoch vector and the health board all index by
    shard number — while answering like a shard that has nothing:
    lookups return no candidates, and any attempt to actually decode a
    record raises :class:`ShardUnavailableError` so the scatter-gather
    layer degrades the query with ``SHARD_FAILED`` instead of serving
    silently wrong bytes.
    """

    quarantined = True
    page_store = None
    decode_count = 0
    path_count = 0

    def __init__(self, directory, shard_no: int, reason: str):
        self.directory = os.fspath(directory)
        self.shard_no = shard_no
        self.reason = reason
        self._stats = _ZeroShardStats()

    def all_offsets(self) -> list:
        return []

    def offsets_with_sink(self, label, semantic: bool = True) -> list:
        return []

    def offsets_containing(self, label, semantic: bool = True) -> list:
        return []

    def path_at(self, offset: int):
        raise ShardUnavailableError(
            f"shard {self.shard_no} ({self.directory}) is quarantined: "
            f"{self.reason}", shard=self.shard_no)

    def close(self) -> None:
        pass

    def clear_cache(self) -> None:
        pass

    def warm_up(self) -> None:
        pass

    @property
    def io_stats(self):
        return self._stats

    @property
    def cache_stats(self):
        return self._stats

    def __repr__(self):
        return (f"<QuarantinedShard {self.shard_no} "
                f"({self.directory!r}): {self.reason}>")


def _probe_shard(shard: PathIndex, expected_records: int) -> str:
    """Recovery-scan validation of one opened shard; "" when healthy."""
    try:
        offsets = shard.all_offsets()
        if len(offsets) != expected_records:
            return (f"holds {len(offsets)} records but the manifest "
                    f"maps {expected_records} gids")
        if offsets:
            # Decode one record end-to-end (page read, checksum,
            # deserialise) so a torn log fails here, not mid-query.
            shard.path_at(offsets[0])
    except (StorageError, IndexCorruptError, OSError) as exc:
        return f"probe read failed: {exc}"
    return ""


class ShardedIndex:
    """N :class:`PathIndex` shards behind the one-index lookup surface.

    Lookups speak **global ids** (gids) where a :class:`PathIndex`
    speaks byte offsets: ``all_offsets`` / ``offsets_with_sink`` /
    ``offsets_containing`` return sorted gids and :meth:`path_at` takes
    one, so every consumer of the single-shard surface (clustering,
    the serving layer, ``sama inspect``) runs on a sharded index
    unchanged.  The scatter-gather fast path in
    :func:`repro.engine.clustering.build_clusters` additionally uses
    :meth:`locate` and :attr:`shards` to fan decode + alignment out
    with one task per shard.
    """

    is_sharded = True

    def __init__(self, directory, shards: list[PathIndex],
                 interner: LabelInterner, hash_seed: int,
                 epochs: list[int], gids: list[list[int]],
                 metadata: "dict | None" = None,
                 health: "ShardHealth | None" = None):
        self.directory = os.fspath(directory)
        self.shards = shards
        self.interner = interner
        self.hash_seed = hash_seed
        self._epochs = list(epochs)
        self.metadata = dict(metadata or {})
        # gid -> (shard, local offset); shard-local offset -> gid.
        total = sum(len(shard_gids) for shard_gids in gids)
        self._locate: list[tuple[int, int]] = [(-1, -1)] * total
        self._gid_of: list[dict[int, int]] = []
        for shard_no, (shard, shard_gids) in enumerate(zip(shards, gids)):
            mapping: dict = {}
            if getattr(shard, "quarantined", False):
                # The records are unreadable, so local offsets are
                # unknown; the gids still route here (offset -1) so a
                # candidate that lands on this shard raises
                # ShardUnavailableError instead of silently vanishing.
                for gid in shard_gids:
                    self._locate[gid] = (shard_no, -1)
                self._gid_of.append(mapping)
                continue
            offsets = shard.all_offsets()
            if len(offsets) != len(shard_gids):
                raise IndexCorruptError(
                    f"shard {shard_no} of {self.directory} holds "
                    f"{len(offsets)} records but the manifest maps "
                    f"{len(shard_gids)} gids")
            for offset, gid in zip(offsets, shard_gids):
                mapping[offset] = gid
                self._locate[gid] = (shard_no, offset)
            self._gid_of.append(mapping)
        self._io = _AggregateIO(shards)
        self._cache = _AggregateCache(shards)
        #: Per-shard circuit breakers; the scatter-gather layer consults
        #: this board before dispatch and reports outcomes back to it.
        self.health = health or ShardHealth(len(shards))
        for shard_no, shard in enumerate(shards):
            if getattr(shard, "quarantined", False):
                self.health.quarantine(shard_no, shard.reason)

    # -- opening ---------------------------------------------------------------

    @classmethod
    def open(cls, directory, thesaurus: "Thesaurus | None" = None,
             read_latency: float = 0.0,
             pool_capacity: int = 4096,
             read_ahead: int = DEFAULT_READ_AHEAD,
             on_damage: str = "raise",
             breaker_config: "BreakerConfig | None" = None
             ) -> "ShardedIndex":
        """Open a sharded index previously persisted under ``directory``.

        The global label dictionary is loaded from the first healthy
        shard (every shard persisted an identical copy) and shared
        across all shards, so dense ids agree globally.

        ``on_damage`` picks the recovery policy when a shard is found
        damaged (unreadable metadata, record count disagreeing with the
        manifest, first record failing a probe decode):

        - ``"raise"`` (default): propagate the corruption error — the
          index does not open.  Right for builds and offline tools,
          where partial data is a bug.
        - ``"quarantine"``: substitute a :class:`QuarantinedShard`,
          mark it quarantined on the :class:`ShardHealth` board, and
          open anyway — the serving path, where answering from the
          surviving shards beats refusing to start.  The sharded-level
          manifest itself has no fallback: without it there is no gid
          routing, so a damaged top-level manifest always raises.
        """
        if on_damage not in ("raise", "quarantine"):
            raise ValueError(f"on_damage must be 'raise' or 'quarantine', "
                             f"got {on_damage!r}")
        directory = os.fspath(directory)
        sweep_tmp_debris(directory)
        manifest = _read_manifest(directory)
        shard_count = manifest["shards"]
        gid_lists = manifest["gids"]
        quarantining = on_damage == "quarantine"
        interner: "LabelInterner | None" = None
        shards: list = []
        for shard_no in range(shard_count):
            location = shard_dir(directory, shard_no)
            try:
                shard = PathIndex.open(
                    location, thesaurus=thesaurus,
                    read_latency=read_latency, pool_capacity=pool_capacity,
                    read_ahead=read_ahead, interner=interner)
            except (IndexCorruptError, StorageError, OSError) as exc:
                if not quarantining:
                    raise
                shards.append(QuarantinedShard(location, shard_no, str(exc)))
                continue
            if quarantining:
                problem = _probe_shard(shard, len(gid_lists[shard_no]))
                if problem:
                    shard.close()
                    shards.append(QuarantinedShard(location, shard_no,
                                                   problem))
                    continue
            if interner is None:
                # First healthy shard: its labels.dict becomes the
                # shared global dictionary (all copies are identical).
                interner = shard.interner
            shards.append(shard)
        if interner is None:
            raise IndexCorruptError(
                f"every shard of {directory} is damaged; nothing to serve")
        return cls(directory, shards, interner,
                   hash_seed=manifest.get("hash_seed", 0),
                   epochs=manifest.get("epochs", [0] * shard_count),
                   gids=gid_lists,
                   metadata=manifest.get("metadata", {}),
                   health=ShardHealth(shard_count, breaker_config))

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- data version ----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def epoch(self) -> int:
        """Scalar data version: the sum of per-shard epochs (monotone)."""
        return sum(self._epochs)

    @property
    def epoch_vector(self) -> tuple:
        """Per-shard epochs — the serving cache's composite key part."""
        return tuple(self._epochs)

    # -- the PathIndex lookup surface (over gids) ------------------------------

    @property
    def path_count(self) -> int:
        return len(self._locate)

    def locate(self, gid: int) -> tuple[int, int]:
        """(shard number, shard-local offset) storing global id ``gid``."""
        return self._locate[gid]

    def path_at(self, gid: int) -> Path:
        shard_no, offset = self._locate[gid]
        return self.shards[shard_no].path_at(offset)

    def all_offsets(self) -> list[int]:
        """Every gid, ascending — global build-walk order."""
        return list(range(len(self._locate)))

    def all_paths(self) -> list[Path]:
        return [self.path_at(gid) for gid in self.all_offsets()]

    def _gather(self, per_shard: "list[list[int]]") -> list[int]:
        gids = []
        for shard_no, offsets in enumerate(per_shard):
            mapping = self._gid_of[shard_no]
            gids.extend(mapping[offset] for offset in offsets)
        gids.sort()
        return gids

    def offsets_with_sink(self, label: Term, semantic: bool = True) -> list[int]:
        """Gids of paths whose sink matches ``label`` (sorted)."""
        return self._gather([shard.offsets_with_sink(label, semantic)
                             for shard in self.shards])

    def offsets_containing(self, label: Term, semantic: bool = True) -> list[int]:
        """Gids of paths containing a label matching ``label`` (sorted)."""
        return self._gather([shard.offsets_containing(label, semantic)
                             for shard in self.shards])

    def paths_with_sink(self, label: Term, semantic: bool = True) -> list[Path]:
        return [self.path_at(g) for g in self.offsets_with_sink(label, semantic)]

    def paths_containing(self, label: Term, semantic: bool = True) -> list[Path]:
        return [self.path_at(g)
                for g in self.offsets_containing(label, semantic)]

    def group_by_shard(self, gids: "list[int]") -> "list[list[tuple[int, int]]]":
        """Partition ``gids`` into per-shard ``(gid, local offset)`` lists.

        Within each shard the input order (ascending gids) is kept, so
        a per-shard worker that scores its list and sorts by
        ``(score, gid)`` feeds a deterministic k-way merge.
        """
        groups: "list[list[tuple[int, int]]]" = \
            [[] for _ in range(self.shard_count)]
        locate = self._locate
        for gid in gids:
            shard_no, offset = locate[gid]
            groups[shard_no].append((gid, offset))
        return groups

    # -- cache control / stats -------------------------------------------------

    def clear_cache(self) -> None:
        for shard in self.shards:
            shard.clear_cache()

    def warm_up(self) -> None:
        for shard in self.shards:
            shard.warm_up()

    @property
    def decode_count(self) -> int:
        return sum(shard.decode_count for shard in self.shards)

    @property
    def io_stats(self):
        """Aggregate physical I/O over all shards (live view)."""
        return self._io

    @property
    def cache_stats(self):
        """Aggregate buffer-pool counters over all shards (live view)."""
        return self._cache

    def __repr__(self):
        return (f"<ShardedIndex {self.directory!r}: {self.shard_count} "
                f"shards, {self.path_count} paths, "
                f"epochs {self._epochs}>")


def build_sharded_index(graph: DataGraph, directory, shards: int,
                        limits: ExtractionLimits = INDEXER_LIMITS,
                        thesaurus: "Thesaurus | None" = None,
                        use_default_thesaurus: bool = True,
                        page_size: int = 4096,
                        hash_seed: int = 0) -> tuple[ShardedIndex, IndexStats]:
    """Build a sharded path index of ``graph`` under ``directory``.

    Runs the same three build steps as
    :func:`repro.index.builder.build_index` — hash labels, find
    sources/sinks, walk paths — but routes each path to
    ``shard_of(path) = signature_hash % shards`` while assigning gids
    in the exact walk order the unsharded builder uses, which is what
    makes sharded rankings bit-identical to unsharded ones.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if thesaurus is None and use_default_thesaurus:
        thesaurus = default_thesaurus()
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    stats = IndexStats(dataset=graph.name or "<anonymous>")
    total_started = time.perf_counter()

    # Step (i): hash all vertex and edge labels.
    step_started = time.perf_counter()
    labels: set[Term] = set(graph.node_labels())
    labels.update(graph.edge_labels())
    stats.label_count = len(labels)
    stats.step_seconds["hash_labels"] = time.perf_counter() - step_started

    # Step (ii): identify sources and sinks.
    step_started = time.perf_counter()
    sources = graph.sources()
    sinks = graph.sinks()
    roots = sources if sources else graph.hubs()
    stats.source_count = len(roots)
    stats.sink_count = len(sinks)
    stats.step_seconds["find_sources_sinks"] = time.perf_counter() - step_started

    # Step (iii): walk the paths in build order, routing each to its
    # owning shard.  One global interner backs every shard's writer, so
    # the persisted labels.dict is identical across shards.
    step_started = time.perf_counter()
    interner = LabelInterner()
    writers = [PathIndexWriter(shard_dir(directory, shard_no),
                               thesaurus=thesaurus, page_size=page_size,
                               interner=interner)
               for shard_no in range(shards)]
    gids: list[list[int]] = [[] for _ in range(shards)]
    budget = _Budget(limits, graph)
    gid = 0
    for root in roots:
        for path in _walk_from(graph, root, budget):
            owner = shard_of(path, interner, shards, hash_seed)
            writers[owner].add_path(path)
            gids[owner].append(gid)
            gid += 1
    stats.truncated = budget.truncated
    stats.step_seconds["compute_paths"] = time.perf_counter() - step_started

    stats.triple_count = graph.edge_count()
    stats.hv_count = graph.node_count()
    stats.path_count = budget.emitted
    stats.he_count = budget.emitted
    metadata = {
        "dataset": stats.dataset,
        "triples": stats.triple_count,
        "hv": stats.hv_count,
        "he": stats.he_count,
        "truncated": stats.truncated,
        "shards": shards,
    }
    opened = [writer.finish(metadata=dict(metadata, shard=shard_no))
              for shard_no, writer in enumerate(writers)]
    # The manifest is what makes the directory a sharded index; written
    # atomically last, so a crash mid-build leaves either no index or a
    # complete one.
    _write_manifest(directory, shards, hash_seed,
                    epochs=[0] * shards, gids=gids, metadata=metadata)
    stats.size_bytes = sum(writer.size_bytes for writer in writers)
    stats.build_seconds = time.perf_counter() - total_started
    index = ShardedIndex(directory, opened, interner, hash_seed,
                         epochs=[0] * shards, gids=gids, metadata=metadata)
    return index, stats


def reshard(directory, shards: int, output=None,
            hash_seed: "int | None" = None,
            thesaurus: "Thesaurus | None" = None) -> ShardedIndex:
    """Re-partition an existing index directory into ``shards`` shards.

    Reads the source index (sharded or single-directory) in global-id
    order — so gids, and therefore rankings, are preserved — and
    rewrites it as a sharded layout.  With ``output=None`` the new
    layout atomically replaces ``directory`` (staged build + directory
    swap, same crash contract as compaction); epochs restart at zero
    because the byte-level layout changed and nothing keyed to the old
    data version survives the swap.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    directory = os.fspath(directory)
    if thesaurus is None:
        thesaurus = default_thesaurus()
    if is_sharded_dir(directory):
        source = ShardedIndex.open(directory, thesaurus=thesaurus)
        if hash_seed is None:
            hash_seed = source.hash_seed
    else:
        source = PathIndex.open(directory, thesaurus=thesaurus)
        if hash_seed is None:
            hash_seed = 0
    in_place = output is None
    target = directory + ".resharding" if in_place else os.fspath(output)
    if os.path.exists(target):
        shutil.rmtree(target)
    os.makedirs(target)
    try:
        interner = LabelInterner()
        writers = [PathIndexWriter(shard_dir(target, shard_no),
                                   thesaurus=thesaurus, interner=interner)
                   for shard_no in range(shards)]
        gids: list[list[int]] = [[] for _ in range(shards)]
        metadata = dict(source.metadata, shards=shards)
        for gid, source_id in enumerate(source.all_offsets()):
            path = source.path_at(source_id)
            owner = shard_of(path, interner, shards, hash_seed)
            writers[owner].add_path(path)
            gids[owner].append(gid)
        opened = [writer.finish(metadata=dict(metadata, shard=shard_no))
                  for shard_no, writer in enumerate(writers)]
        for shard in opened:
            shard.close()
        _write_manifest(target, shards, hash_seed,
                        epochs=[0] * shards, gids=gids, metadata=metadata)
    finally:
        source.close()

    final = directory if in_place else target
    if in_place:
        staged = directory + ".pre-reshard"
        if os.path.exists(staged):
            shutil.rmtree(staged)
        os.rename(directory, staged)
        os.rename(target, directory)
        shutil.rmtree(staged)
    return ShardedIndex.open(final, thesaurus=thesaurus)
