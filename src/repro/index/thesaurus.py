"""A WordNet stand-in: synonym / hyponym / hypernym expansion.

The paper's prototype extracts "semantically similar entries such as
synonyms, hyponyms and hypernyms ... from WordNet" (§6.1) to widen
label matching.  WordNet itself is not available offline, so this
module implements the same interface over an explicit lexicon: a
synonym relation (symmetric, transitive within a group) and an is-a
hierarchy (hyponym → hypernym edges).

:func:`default_thesaurus` ships a compact English lexicon covering the
vocabularies of the benchmark datasets (universities, movies,
publications, government, commerce) so approximate matching has real
synonymy to exploit; applications can extend it or supply their own.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..rdf.terms import Literal, Term, URI

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_SPLIT_RE = re.compile(r"[^A-Za-z0-9]+")


def normalize(word: str) -> str:
    """Canonical lexicon key: lowercase, stripped."""
    return word.strip().lower()


def stem_candidates(word: str) -> set[str]:
    """Possible singular forms of ``word``, including itself.

    Deliberately naive (far short of Porter), but WordNet's
    morphological lookup plays the same role for the prototype, and
    only common English plurals matter for the benchmark vocabularies.
    The ``-ies`` suffix is genuinely ambiguous (queries → query but
    movies → movie), so both candidates are produced.
    """
    word = normalize(word)
    out = {word}
    if len(word) > 4 and word.endswith("ies"):
        out.add(word[:-3] + "y")    # queries -> query
        out.add(word[:-1])          # movies -> movie
    elif len(word) > 3 and word.endswith(("ches", "shes", "sses", "xes",
                                          "zes")):
        out.add(word[:-2])
    elif len(word) > 3 and word.endswith("s") and not word.endswith("ss"):
        out.add(word[:-1])
    return out


def stem(word: str) -> str:
    """The primary singular candidate of ``word`` (see stem_candidates)."""
    candidates = stem_candidates(word)
    candidates.discard(normalize(word))
    if not candidates:
        return normalize(word)
    # Prefer the consonant+y reading for -ies; shortest otherwise.
    return sorted(candidates, key=lambda w: (not w.endswith("y"), w))[0]


def tokenize_label(term: "Term | str") -> list[str]:
    """Split a term's lexical form into lowercase word tokens.

    URIs use their local name; camelCase, digits-letter boundaries and
    punctuation all split, so ``ub:FullProfessor`` tokenizes to
    ``['full', 'professor']`` and ``"Health Care"`` to
    ``['health', 'care']``.
    """
    if isinstance(term, URI):
        text = term.local_name
    elif isinstance(term, Literal):
        text = term.value
    elif isinstance(term, Term):
        text = term.value
    else:
        text = str(term)
    words = []
    for rough in _SPLIT_RE.split(text):
        if not rough:
            continue
        for word in _CAMEL_RE.split(rough):
            if word:
                words.append(word.lower())
    return words


class Thesaurus:
    """Synonym groups plus an is-a hierarchy over normalised words."""

    def __init__(self):
        self._group_of: dict[str, int] = {}
        self._groups: dict[int, set[str]] = {}
        self._next_group = 0
        self._hypernyms: dict[str, set[str]] = {}
        self._hyponyms: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------------

    def add_synonyms(self, words: Iterable[str]) -> None:
        """Declare the words mutually synonymous (merging groups)."""
        keys = [normalize(w) for w in words]
        keys = [k for k in keys if k]
        if len(keys) < 2:
            return
        touched = {self._group_of[k] for k in keys if k in self._group_of}
        if touched:
            target = min(touched)
        else:
            target = self._next_group
            self._next_group += 1
            self._groups[target] = set()
        for group_id in touched - {target}:
            for member in self._groups.pop(group_id):
                self._group_of[member] = target
                self._groups[target].add(member)
        for key in keys:
            self._group_of[key] = target
            self._groups[target].add(key)

    def add_hypernym(self, hyponym: str, hypernym: str) -> None:
        """Declare ``hyponym`` is-a ``hypernym`` (e.g. professor → faculty)."""
        child = normalize(hyponym)
        parent = normalize(hypernym)
        if not child or not parent or child == parent:
            return
        self._hypernyms.setdefault(child, set()).add(parent)
        self._hyponyms.setdefault(parent, set()).add(child)

    # -- lookup -------------------------------------------------------------------

    def synonyms(self, word: str) -> set[str]:
        """The synonym group of ``word`` (without the word itself)."""
        key = normalize(word)
        group_id = self._group_of.get(key)
        if group_id is None:
            return set()
        return self._groups[group_id] - {key}

    def hypernyms(self, word: str) -> set[str]:
        """Direct hypernyms (is-a parents) of ``word``."""
        return set(self._hypernyms.get(normalize(word), ()))

    def hyponyms(self, word: str) -> set[str]:
        """Direct hyponyms (is-a children) of ``word``."""
        return set(self._hyponyms.get(normalize(word), ()))

    def expand(self, word: str, hierarchy: bool = True) -> set[str]:
        """``word`` plus synonyms, plus (optionally) direct is-a neighbours.

        Expansion also applies synonym closure to the hierarchy
        neighbours, mirroring WordNet's synset-level pointers, and
        always includes the singular stem (WordNet's morphological
        lookup equivalent), so ``databases`` expands to ``database``.
        """
        key = normalize(word)
        if not key:
            return set()
        expanded = {key} | self.synonyms(key)
        for stemmed in stem_candidates(key):
            if stemmed != key:
                expanded.add(stemmed)
                expanded |= self.synonyms(stemmed)
        if hierarchy:
            neighbours = set()
            for member in list(expanded):
                neighbours |= self.hypernyms(member)
                neighbours |= self.hyponyms(member)
            for neighbour in list(neighbours):
                neighbours |= self.synonyms(neighbour)
            expanded |= neighbours
        return expanded

    def related(self, word_a: str, word_b: str, hierarchy: bool = True) -> bool:
        """True when the two words are synonyms or is-a neighbours."""
        key_b = normalize(word_b)
        if normalize(word_a) == key_b:
            return True
        return key_b in self.expand(word_a, hierarchy=hierarchy)

    def __len__(self):
        return len(self._group_of) + len(self._hypernyms)


def default_thesaurus() -> Thesaurus:
    """The built-in lexicon for the benchmark vocabularies."""
    thesaurus = Thesaurus()
    synonym_groups = [
        # people & roles
        ("person", "human", "individual"),
        ("teacher", "professor", "instructor", "lecturer"),
        ("student", "pupil", "learner"),
        ("author", "writer"),
        ("doctor", "physician"),
        ("chair", "head", "chairperson"),
        ("employee", "worker", "staff"),
        # gender labels of the GovTrack example
        ("male", "man"),
        ("female", "woman"),
        # academia (LUBM / UOBM / DBLP)
        ("university", "college"),
        ("course", "class", "lecture"),
        ("publication", "paper", "article"),
        ("department", "dept", "division"),
        ("research", "study"),
        ("degree", "diploma"),
        ("advisor", "supervisor", "mentor"),
        # government (GovTrack)
        ("bill", "act", "law"),
        ("amendment", "revision"),
        ("sponsor", "backer", "supporter"),
        ("subject", "topic", "theme"),
        ("senate", "chamber"),
        # movies (IMDB / LinkedMDB)
        ("movie", "film", "picture"),
        ("actor", "performer"),
        ("director", "filmmaker"),
        ("genre", "category", "kind"),
        # commerce (Berlin / BSBM)
        ("product", "item", "good"),
        ("producer", "manufacturer", "maker"),
        ("vendor", "seller", "retailer"),
        ("review", "evaluation", "critique"),
        ("offer", "deal"),
        ("price", "cost"),
        # biology (KEGG)
        ("gene", "locus"),
        ("pathway", "route"),
        ("enzyme", "catalyst"),
        ("compound", "chemical", "substance"),
        # misc
        ("name", "title", "label"),
        ("email", "mail"),
        ("healthcare", "health"),
    ]
    for group in synonym_groups:
        thesaurus.add_synonyms(group)
    hypernym_pairs = [
        ("professor", "faculty"),
        ("lecturer", "faculty"),
        ("faculty", "employee"),
        ("student", "person"),
        ("employee", "person"),
        ("professor", "person"),
        ("senator", "politician"),
        ("politician", "person"),
        ("actor", "person"),
        ("director", "person"),
        ("author", "person"),
        ("university", "organization"),
        ("department", "organization"),
        ("company", "organization"),
        ("amendment", "document"),
        ("bill", "document"),
        ("publication", "document"),
        ("movie", "work"),
        ("course", "work"),
        ("gene", "sequence"),
        ("enzyme", "protein"),
    ]
    for child, parent in hypernym_pairs:
        thesaurus.add_hypernym(child, parent)
    return thesaurus
