"""Observability: the metrics registry, pipeline spans, slow-query log.

The repo's ROADMAP aims at a production-scale service; this package is
how that service is *seen*.  Three pieces:

- :mod:`repro.obs.registry` — a process-wide, thread-safe
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket
  histograms, rendered in the Prometheus text exposition format
  (served at ``GET /metrics``).  Hot-path stats objects feed it
  through scrape-time *collectors*, so instrumentation costs nothing
  per page read.
- :mod:`repro.obs.trace` — ``with span("cluster"):`` stage timing
  threaded through ``SamaEngine.query`` and friends; an explicit
  :func:`start_trace` captures a per-query breakdown (``sama
  profile``, the slow-query log).
- :mod:`repro.obs.slowlog` — a JSON-lines :class:`SlowQueryLog` for
  requests over a configurable latency threshold.

``SAMA_OBS=off`` disables inline instrumentation process-wide (the
default registry becomes a no-op :class:`NullRegistry`);
:func:`configure` toggles the same switch programmatically, which is
how ``benchmarks/bench_obs_overhead.py`` measures the instrumented
arm against the dark one in a single process.
"""

from .registry import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry, NullRegistry, Sample, configure,
                       enabled, get_registry, parse_prometheus)
from .slowlog import SlowQueryLog
from .trace import (STAGE_METRIC, SpanRecord, Trace, current_trace, span,
                    start_trace)

__all__ = [
    "Counter", "DEFAULT_LATENCY_BUCKETS", "Gauge", "Histogram",
    "MetricsRegistry", "NullRegistry", "STAGE_METRIC", "Sample",
    "SlowQueryLog", "SpanRecord", "Trace", "configure", "current_trace",
    "enabled", "get_registry", "parse_prometheus", "span", "start_trace",
]
