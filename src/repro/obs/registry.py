"""The process-wide metrics registry (counters, gauges, histograms).

One :class:`MetricsRegistry` per process is the single sink every
subsystem reports into: the engine's per-stage latency histograms, the
serving layer's request counters, the storage layer's buffer-pool and
decode counters.  Two reporting styles feed it:

- **Inline instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` objects obtained from :meth:`MetricsRegistry.
  counter` etc.  Instruments are memoised by ``(name, labels)``, so
  call sites can re-request them freely; each carries its own lock and
  is safe to update from any thread.
- **Collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that project *existing*
  lightweight stats objects (``ServingStats``, ``CacheStats``,
  ``IoStats``) into :class:`Sample` values at scrape time.  Hot paths
  keep their plain ``+= 1`` dataclass counters; the registry reads
  them only when ``/metrics`` is scraped, so instrumentation adds
  nothing to the per-page-read cost.

Rendering follows the Prometheus text exposition format (``# HELP`` /
``# TYPE`` once per family, cumulative ``_bucket{le=...}`` lines plus
``_sum``/``_count`` for histograms); :func:`parse_prometheus` is the
matching strict parser used by the CI smoke gate.

``SAMA_OBS=off`` (or ``0``/``false``) swaps the process default for a
:class:`NullRegistry` whose instruments discard every update — the
uninstrumented arm of ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os
import re
import threading
import weakref
from bisect import bisect_left
from typing import Callable, Iterable, NamedTuple

#: Default histogram boundaries, in seconds: 1 ms .. 10 s, roughly
#: logarithmic — wide enough for a cold-cache cluster stage, fine
#: enough to separate a cache hit from a miss.
DEFAULT_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                           0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Sample(NamedTuple):
    """One scrape-time data point emitted by a collector."""

    name: str
    kind: str                      # "counter" or "gauge"
    help: str
    value: float
    labels: "tuple[tuple[str, str], ...]" = ()


def _labels_key(labels: "dict[str, str] | None") -> "tuple[tuple[str, str], ...]":
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: "tuple[tuple[str, str], ...]",
                   extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value (requests, hits, bytes)."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "",
                 labels: "tuple[tuple[str, str], ...]" = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (in-flight requests, epoch)."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "",
                 labels: "tuple[tuple[str, str], ...]" = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Observations bucketed under fixed boundaries (latencies).

    Buckets are stored per-interval and rendered cumulatively with the
    closing ``+Inf`` bucket, ``_sum`` and ``_count`` Prometheus
    expects.
    """

    __slots__ = ("name", "help", "labels", "buckets", "_lock", "_counts",
                 "_sum", "_count")

    def __init__(self, name: str, help: str = "",
                 buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
                 labels: "tuple[tuple[str, str], ...]" = ()):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} has duplicate buckets")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)   # last slot = > max bound
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> "tuple[list[int], float, int]":
        """(cumulative bucket counts incl. +Inf, sum, count) atomically."""
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative = []
        running = 0
        for bucket_count in counts:
            running += bucket_count
            cumulative.append(running)
        return cumulative, total, count


_KINDS = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Thread-safe home of every instrument plus scrape-time collectors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: "dict[tuple[str, tuple], object]" = {}
        self._families: "dict[str, tuple[type, str]]" = {}
        self._collectors: "list[tuple[Callable, weakref.ref | None]]" = []

    # -- instruments -------------------------------------------------------

    def counter(self, name: str, help: str = "",
                labels: "dict[str, str] | None" = None) -> Counter:
        return self._instrument(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: "dict[str, str] | None" = None) -> Gauge:
        return self._instrument(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
                  labels: "dict[str, str] | None" = None) -> Histogram:
        return self._instrument(Histogram, name, help, labels,
                                buckets=buckets)

    def _instrument(self, cls, name, help, labels, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{_KINDS[type(existing)]}, not {_KINDS[cls]}")
                return existing
            family = self._families.get(name)
            if family is not None and family[0] is not cls:
                raise ValueError(
                    f"metric family {name!r} already registered as "
                    f"{_KINDS[family[0]]}, not {_KINDS[cls]}")
            instrument = cls(name, help=help, labels=key[1], **kwargs)
            self._instruments[key] = instrument
            if family is None:
                self._families[name] = (cls, help)
            return instrument

    # -- collectors --------------------------------------------------------

    def register_collector(self, collector: "Callable[[], Iterable[Sample]]",
                           owner: object = None) -> None:
        """Add a scrape-time sample source.

        ``owner``, when given, ties the collector's lifetime to another
        object: once the owner is garbage-collected the collector is
        silently dropped on the next scrape, so a closed-but-never-
        unregistered engine cannot keep stale samples alive.
        """
        ref = weakref.ref(owner) if owner is not None else None
        with self._lock:
            self._collectors.append((collector, ref))

    def unregister_collector(self, collector: Callable) -> None:
        with self._lock:
            self._collectors = [(fn, ref) for fn, ref in self._collectors
                                if fn is not collector]

    # -- scraping ----------------------------------------------------------

    def _live_collectors(self) -> "list[Callable]":
        with self._lock:
            alive = [(fn, ref) for fn, ref in self._collectors
                     if ref is None or ref() is not None]
            self._collectors = alive
            return [fn for fn, _ref in alive]

    def _collected_samples(self) -> "dict[tuple, Sample]":
        """Collector output, summed over identical (name, labels) keys.

        Two live serving engines reporting the same counter family
        yield one process-total series, keeping the exposition free of
        duplicate sample lines.
        """
        merged: "dict[tuple, Sample]" = {}
        for collector in self._live_collectors():
            for sample in collector():
                key = (sample.name, sample.labels)
                previous = merged.get(key)
                if previous is None:
                    merged[key] = sample
                else:
                    merged[key] = previous._replace(
                        value=previous.value + sample.value)
        return merged

    def snapshot(self) -> "dict[str, float]":
        """Flat scalar view (``/stats`` merge): histograms as _sum/_count."""
        flat: "dict[str, float]" = {}
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            suffix = _render_labels(instrument.labels)
            if isinstance(instrument, Histogram):
                _buckets, total, count = instrument.snapshot()
                flat[f"{instrument.name}_sum{suffix}"] = total
                flat[f"{instrument.name}_count{suffix}"] = count
            else:
                flat[f"{instrument.name}{suffix}"] = instrument.value
        for sample in self._collected_samples().values():
            flat[f"{sample.name}{_render_labels(sample.labels)}"] = sample.value
        return flat

    def render(self) -> str:
        """The Prometheus text exposition of everything registered."""
        with self._lock:
            instruments = sorted(
                self._instruments.values(),
                key=lambda inst: (inst.name, inst.labels))
        lines: "list[str]" = []
        seen_families: "set[str]" = set()

        def header(name: str, kind: str, help: str) -> None:
            if name in seen_families:
                return
            seen_families.add(name)
            if help:
                lines.append(f"# HELP {name} {_escape_help(help)}")
            lines.append(f"# TYPE {name} {kind}")

        for instrument in instruments:
            if isinstance(instrument, Histogram):
                header(instrument.name, "histogram", instrument.help)
                cumulative, total, count = instrument.snapshot()
                bounds = [_format_value(b) for b in instrument.buckets]
                bounds.append("+Inf")
                for bound, bucket_count in zip(bounds, cumulative):
                    label_text = _render_labels(instrument.labels,
                                                (("le", bound),))
                    lines.append(f"{instrument.name}_bucket{label_text} "
                                 f"{bucket_count}")
                suffix = _render_labels(instrument.labels)
                lines.append(f"{instrument.name}_sum{suffix} "
                             f"{_format_value(total)}")
                lines.append(f"{instrument.name}_count{suffix} {count}")
            else:
                header(instrument.name, _KINDS[type(instrument)],
                       instrument.help)
                suffix = _render_labels(instrument.labels)
                lines.append(f"{instrument.name}{suffix} "
                             f"{_format_value(instrument.value)}")

        collected = sorted(self._collected_samples().values())
        for sample in collected:
            header(sample.name, sample.kind, sample.help)
            suffix = _render_labels(sample.labels)
            lines.append(f"{sample.name}{suffix} "
                         f"{_format_value(sample.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """Accepts every update, stores nothing (the ``SAMA_OBS=off`` arm)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """A registry whose instruments are shared no-ops."""

    def counter(self, name, help="", labels=None):
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None):
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS,
                  labels=None):
        return _NULL_INSTRUMENT

    def register_collector(self, collector, owner=None):
        pass

    def unregister_collector(self, collector):
        pass

    def snapshot(self):
        return {}

    def render(self):
        return "# observability disabled (SAMA_OBS=off)\n"


# -- process-wide state ------------------------------------------------------

def _env_enabled() -> bool:
    return os.environ.get("SAMA_OBS", "").strip().lower() not in (
        "off", "0", "false", "no")


_enabled = _env_enabled()
_default: "MetricsRegistry | NullRegistry" = (
    MetricsRegistry() if _enabled else NullRegistry())
_state_lock = threading.Lock()


def enabled() -> bool:
    """Whether inline instrumentation (spans, histograms) is live."""
    return _enabled


def get_registry() -> "MetricsRegistry | NullRegistry":
    """The process-wide default registry."""
    return _default


def configure(enabled: "bool | None" = None,
              registry: "MetricsRegistry | NullRegistry | None" = None
              ) -> "tuple[bool, MetricsRegistry | NullRegistry]":
    """Swap the process defaults; returns the previous ``(enabled,
    registry)`` pair so benchmarks and tests can restore them.

    ``configure(enabled=False)`` installs a :class:`NullRegistry`
    (unless an explicit ``registry`` is also given);
    ``configure(enabled=True)`` installs a fresh
    :class:`MetricsRegistry` likewise.
    """
    global _enabled, _default
    with _state_lock:
        previous = (_enabled, _default)
        if enabled is not None:
            _enabled = bool(enabled)
            if registry is None:
                registry = (MetricsRegistry() if _enabled
                            else NullRegistry())
        if registry is not None:
            _default = registry
        return previous


# -- exposition-format validation --------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)(?:\s+(?P<timestamp>-?\d+))?$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> "dict[str, float]":
    """Strictly parse Prometheus text exposition; raises ``ValueError``.

    Returns ``{name{labels}: value}`` for every sample line.  Used by
    the tests and the ``obs-smoke`` CI gate to assert ``/metrics``
    stays machine-readable.
    """
    samples: "dict[str, float]" = {}
    types: "dict[str, str]" = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {line_no}: malformed TYPE: {line!r}")
            if parts[2] in types:
                raise ValueError(
                    f"line {line_no}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            if len(line.split(None, 3)) < 3:
                raise ValueError(f"line {line_no}: malformed HELP: {line!r}")
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample: {line!r}")
        label_text = match.group("labels")
        if label_text:
            consumed = _LABEL_PAIR_RE.sub("", label_text)
            if consumed.strip(", "):
                raise ValueError(
                    f"line {line_no}: malformed labels: {label_text!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {line_no}: bad value {match.group('value')!r}"
            ) from exc
        key = match.group("name")
        if label_text:
            key += "{" + label_text + "}"
        if key in samples:
            raise ValueError(f"line {line_no}: duplicate sample {key!r}")
        samples[key] = value
    return samples
