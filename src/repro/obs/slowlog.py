"""The structured slow-query log: JSON lines above a latency threshold.

One line per offending request, machine-parseable::

    {"ts": 1754500000.123, "latency_ms": 812.4, "query": "...", "k": 10,
     "epoch": 3, "cached": false, "degraded": false,
     "stages_ms": {"prepare": 12.1, "cluster": 655.0, "search": 140.2}}

The log is append-only and thread-safe; each line is flushed as it is
written so an operator tailing the file sees slow queries live.  The
threshold and destination come from
:class:`~repro.serving.service.ServingConfig` (``slow_query_ms`` /
``slow_query_log``); with no path configured, lines go to ``stderr``.
"""

from __future__ import annotations

import json
import sys
import threading
import time


class SlowQueryLog:
    """Append-only JSON-lines sink for requests over ``threshold_ms``."""

    def __init__(self, threshold_ms: float, path: "str | None" = None,
                 stream=None):
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        self.threshold_ms = threshold_ms
        self.path = path
        self._stream = stream
        self._lock = threading.Lock()
        self._handle = None
        self.logged = 0

    def _sink(self):
        if self._stream is not None:
            return self._stream
        if self.path is None:
            return sys.stderr
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def note(self, *, latency_ms: float, **fields) -> bool:
        """Log one request if it crossed the threshold; True when logged."""
        if latency_ms < self.threshold_ms:
            return False
        record = {"ts": round(time.time(), 3),
                  "latency_ms": round(latency_ms, 3)}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            sink = self._sink()
            sink.write(line + "\n")
            sink.flush()
            self.logged += 1
        return True

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self):
        target = self.path or ("<stream>" if self._stream else "stderr")
        return (f"<SlowQueryLog: >{self.threshold_ms:g} ms -> {target}, "
                f"{self.logged} logged>")
