"""Lightweight spans over the §5 pipeline stages.

A *span* times one named stage::

    with span("cluster"):
        clusters = build_clusters(...)

Every span observes the process-wide ``sama_stage_seconds`` histogram
(labelled by stage) unless observability is off, and — independently
of that switch — records into the thread's active :class:`Trace` when
one was opened with :func:`start_trace`.  ``sama profile`` opens a
trace around a whole query to print the per-stage breakdown; the
serving layer opens one per request when the slow-query log is armed,
so a slow request's log line says *where* the time went.

The taxonomy (DESIGN.md §9): ``prepare`` (validation + decomposition,
with ``extract`` nested inside it), ``cluster``, ``search``, and
``forest`` for the diagnostic Fig. 4 rendering.  Spans nest; each
record keeps its depth, times are *inclusive* (``extract`` is part of
``prepare``'s time), and :meth:`Trace.total_seconds` sums only the
top-level spans so nothing is double-counted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from . import registry as _registry

#: Help text of the per-stage histogram family.
STAGE_HELP = "Wall-clock seconds spent per pipeline stage"
STAGE_METRIC = "sama_stage_seconds"

_active = threading.local()


@dataclass
class SpanRecord:
    """One finished span inside a trace."""

    name: str
    seconds: float
    depth: int


class Trace:
    """The ordered spans observed on one thread between start/stop."""

    def __init__(self):
        self.records: "list[SpanRecord]" = []

    def add(self, name: str, seconds: float, depth: int) -> None:
        self.records.append(SpanRecord(name, seconds, depth))

    @property
    def total_seconds(self) -> float:
        """Summed top-level span time (nested spans not double-counted)."""
        return sum(r.seconds for r in self.records if r.depth == 0)

    def breakdown(self) -> "list[tuple[str, int, float]]":
        """``(name, calls, inclusive_seconds)`` in first-seen order."""
        order: "list[str]" = []
        calls: "dict[str, int]" = {}
        seconds: "dict[str, float]" = {}
        for record in self.records:
            if record.name not in calls:
                order.append(record.name)
                calls[record.name] = 0
                seconds[record.name] = 0.0
            calls[record.name] += 1
            seconds[record.name] += record.seconds
        return [(name, calls[name], seconds[name]) for name in order]

    def stage_ms(self) -> "dict[str, float]":
        """``{stage: inclusive milliseconds}`` (slow-query log shape)."""
        return {name: round(total * 1000.0, 3)
                for name, _calls, total in self.breakdown()}


def current_trace() -> "Trace | None":
    return getattr(_active, "trace", None)


class _TraceCtx:
    __slots__ = ("trace", "_previous", "_previous_depth")

    def __init__(self):
        self.trace = Trace()

    def __enter__(self) -> Trace:
        self._previous = getattr(_active, "trace", None)
        self._previous_depth = getattr(_active, "depth", 0)
        _active.trace = self.trace
        _active.depth = 0
        return self.trace

    def __exit__(self, *exc) -> bool:
        _active.trace = self._previous
        _active.depth = self._previous_depth
        return False


def start_trace() -> _TraceCtx:
    """Capture every span on this thread into a fresh :class:`Trace`."""
    return _TraceCtx()


# Memoised per-stage histograms: span() runs a few times per query, but
# there is no reason to re-derive the (name, labels) lookup each time.
_stage_histograms: "dict[tuple[int, str], object]" = {}


def _stage_histogram(name: str):
    registry = _registry.get_registry()
    key = (id(registry), name)
    histogram = _stage_histograms.get(key)
    if histogram is None:
        histogram = registry.histogram(STAGE_METRIC, STAGE_HELP,
                                       labels={"stage": name})
        _stage_histograms[key] = histogram
        # Registries are swapped wholesale by configure(); drop cache
        # entries for dead registries so the dict cannot grow unbounded.
        for stale in [k for k in _stage_histograms if k[0] != id(registry)]:
            _stage_histograms.pop(stale, None)
    return histogram


class _SpanCtx:
    __slots__ = ("name", "_trace", "_started", "_depth", "_live")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "_SpanCtx":
        self._trace = getattr(_active, "trace", None)
        self._live = _registry.enabled() or self._trace is not None
        if not self._live:
            return self
        self._depth = getattr(_active, "depth", 0)
        _active.depth = self._depth + 1
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if not self._live:
            return False
        elapsed = time.perf_counter() - self._started
        _active.depth = self._depth
        if _registry.enabled():
            _stage_histogram(self.name).observe(elapsed)
        if self._trace is not None:
            self._trace.add(self.name, elapsed, self._depth)
        return False


def span(name: str) -> _SpanCtx:
    """Time one pipeline stage (see module docstring)."""
    return _SpanCtx(name)
