"""Shared worker-pool plumbing for the engine's parallel stages.

Both path extraction (the paper's "independently concurrent" BFS, §3.2)
and clustering (per-query-path candidate alignment) can fan work out to
a thread pool.  Creating a :class:`~concurrent.futures.ThreadPoolExecutor`
per call is wasteful — thread startup dominates small workloads — so
this module owns one lazily-created, module-level executor sized from
``SAMA_WORKERS`` (falling back to ``os.cpu_count()``), shared by every
caller in the process.

Setting ``SAMA_WORKERS=1`` (or 0) disables parallelism entirely:
:func:`shared_executor` then returns ``None`` and callers take their
serial paths.  Callers may also pass their own executor explicitly,
which always wins over the shared one.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ThreadPoolExecutor

_lock = threading.Lock()
_executor: "ThreadPoolExecutor | None" = None
_executor_workers = 0


def worker_count() -> int:
    """The configured worker count: ``SAMA_WORKERS`` or ``os.cpu_count()``.

    A value of 1 (or less) means "serial": the shared executor is not
    created and parallel stages fall back to their single-threaded code
    paths.  Invalid values in the environment are treated as unset.
    """
    raw = os.environ.get("SAMA_WORKERS", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


def shared_executor(workers: "int | None" = None) -> "ThreadPoolExecutor | None":
    """The process-wide executor, or ``None`` when running serially.

    ``workers`` overrides the environment-derived count for this call;
    the pool is (re)created when the effective count grows beyond what
    the current pool was sized for.  The pool's threads are daemonic
    idle workers — there is no per-query creation cost.
    """
    global _executor, _executor_workers
    count = worker_count() if workers is None else max(0, workers)
    if count <= 1:
        return None
    with _lock:
        if _executor is None or _executor_workers < count:
            if _executor is not None:
                _executor.shutdown(wait=False)
            _executor = ThreadPoolExecutor(
                max_workers=count, thread_name_prefix="sama-worker")
            _executor_workers = count
        return _executor


def _shutdown() -> None:  # pragma: no cover - interpreter teardown
    global _executor
    with _lock:
        if _executor is not None:
            _executor.shutdown(wait=False)
            _executor = None


atexit.register(_shutdown)


def chunked(items, chunk_size: int):
    """Split ``items`` (a sequence) into consecutive chunks."""
    return [items[start:start + chunk_size]
            for start in range(0, len(items), chunk_size)]
