"""Execution resources for the engine's parallel stages.

Two kinds of parallelism live here:

- the process-wide **thread pool** (:func:`shared_executor`) used by
  path extraction, clustering's chunked alignment, and thread-mode
  scatter-gather dispatch.  Threads are the right tool when the work
  overlaps I/O (page reads, simulated storage latency) — the GIL only
  serializes the pure-Python parts;

- the **per-shard process pool** (:class:`ProcessShardPool`) behind
  ``EngineConfig(worker_mode="procs")``: long-lived, spawn-safe worker
  processes, one per shard, each holding its shard's
  :class:`~repro.index.columnar.ColumnarView` so the CPU-bound λ scan
  runs outside the coordinator's GIL and without per-query decode.
  See DESIGN.md §11 for the threads-vs-procs decision table.

Setting ``SAMA_WORKERS=1`` (or 0) disables thread parallelism
entirely: :func:`shared_executor` then returns ``None`` and callers
take their serial paths.  Callers may also pass their own executor
explicitly, which always wins over the shared one.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_mod
import threading
import time
import warnings
from array import array
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

_lock = threading.Lock()
_executor: "ThreadPoolExecutor | None" = None
_executor_workers = 0
#: Pools replaced by a regrow, kept alive until interpreter exit:
#: callers from before the regrow may still hold them and submit
#: follow-up work mid-query (see ``shared_executor``).
_retired_executors: "list[ThreadPoolExecutor]" = []

#: Invalid ``SAMA_WORKERS`` values already warned about (warn once per
#: distinct bad value, not once per query).
_warned_worker_values: "set[str]" = set()

#: Recognised ``worker_mode`` / ``SAMA_WORKER_MODE`` values.
WORKER_MODES = ("threads", "procs")
_warned_mode_values: "set[str]" = set()


def worker_count(explicit: "int | None" = None) -> int:
    """The effective worker count for thread-parallel stages.

    Precedence: an ``explicit`` argument (what
    ``EngineConfig(workers=...)`` passes through) always wins; next the
    ``SAMA_WORKERS`` environment variable; finally ``os.cpu_count()``.
    A value of 1 (or less) means "serial": the shared executor is not
    created and parallel stages fall back to their single-threaded code
    paths.

    A non-integer ``SAMA_WORKERS`` is ignored with a one-time
    :class:`RuntimeWarning` naming the bad value — silently treating it
    as unset hid typos like ``SAMA_WORKERS=four`` behind cpu-count
    behaviour.
    """
    if explicit is not None:
        return max(0, explicit)
    raw = os.environ.get("SAMA_WORKERS", "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            if raw not in _warned_worker_values:
                _warned_worker_values.add(raw)
                warnings.warn(
                    f"ignoring invalid SAMA_WORKERS={raw!r} (not an "
                    f"integer); falling back to cpu count",
                    RuntimeWarning, stacklevel=2)
    return os.cpu_count() or 1


def worker_mode(explicit: "str | None" = None) -> str:
    """Resolve the shard execution mode: ``"threads"`` or ``"procs"``.

    Precedence mirrors :func:`worker_count`: an explicit
    ``EngineConfig(worker_mode=...)`` wins, then ``SAMA_WORKER_MODE``,
    then the ``"threads"`` default.  An invalid explicit value raises;
    an invalid environment value warns once and falls back to threads
    (a typo in a deployment environment should degrade, not take the
    server down).
    """
    if explicit is not None:
        mode = explicit.strip().lower()
        if mode not in WORKER_MODES:
            raise ValueError(f"worker_mode must be one of {WORKER_MODES}, "
                             f"got {explicit!r}")
        return mode
    raw = os.environ.get("SAMA_WORKER_MODE", "").strip()
    if raw:
        mode = raw.lower()
        if mode in WORKER_MODES:
            return mode
        if raw not in _warned_mode_values:
            _warned_mode_values.add(raw)
            warnings.warn(
                f"ignoring invalid SAMA_WORKER_MODE={raw!r} "
                f"(expected one of {WORKER_MODES}); using threads",
                RuntimeWarning, stacklevel=2)
    return "threads"


def shared_executor(workers: "int | None" = None) -> "ThreadPoolExecutor | None":
    """The process-wide executor, or ``None`` when running serially.

    ``workers`` overrides the environment-derived count for this call;
    the pool is (re)created when the effective count grows beyond what
    the current pool was sized for.  The pool's threads are daemonic
    idle workers — there is no per-query creation cost.

    A regrow *retires* the old pool instead of shutting it down: a
    caller that grabbed the executor before the regrow may still hold
    futures from it and submit follow-up work (hedge dispatches, the
    next chunk of a cluster) mid-query, and ``shutdown()`` would turn
    those submits into ``RuntimeError``.  Retired pools idle at zero
    cost once drained and are reaped at interpreter exit.
    """
    global _executor, _executor_workers
    count = worker_count(workers)
    if count <= 1:
        return None
    with _lock:
        if _executor is None or _executor_workers < count:
            if _executor is not None:
                _retired_executors.append(_executor)
            _executor = ThreadPoolExecutor(
                max_workers=count, thread_name_prefix="sama-worker")
            _executor_workers = count
        return _executor


def _shutdown() -> None:  # pragma: no cover - interpreter teardown
    global _executor
    with _lock:
        pools = list(_retired_executors)
        _retired_executors.clear()
        if _executor is not None:
            pools.append(_executor)
            _executor = None
    for pool in pools:
        pool.shutdown(wait=False)


atexit.register(_shutdown)


def chunked(items, chunk_size: int):
    """Split ``items`` (a sequence) into consecutive chunks."""
    return [items[start:start + chunk_size]
            for start in range(0, len(items), chunk_size)]


# -- process-pool execution mode ------------------------------------------------

#: Seconds granted beyond a task's budget slice before the worker's
#: response is declared overdue (mirrors the scatter layer's
#: ``_SHARD_DEADLINE_GRACE_S``).
_RESPONSE_GRACE_S = 0.25

#: Poll interval while waiting on a worker's result queue — short
#: enough that a SIGKILLed worker is noticed promptly, long enough not
#: to burn the dispatch thread.
_LIVENESS_POLL_S = 0.1


@dataclass(frozen=True)
class ShardTask:
    """The pickle-friendly work envelope sent to one shard worker.

    Everything in here crosses the process boundary: flat arrays,
    plain ints/floats, and the Term/Path value objects (which pickle
    through their constructors — see ``Term.__reduce__``).  ``gids``
    and ``offsets`` are the shard's candidates in ascending gid order,
    exactly what the coordinator's ``group_by_shard`` produced — two
    ``array`` columns rather than a tuple of pairs, because pickling
    an array is one buffer copy while a 40k-pair tuple costs a Python
    object walk on both sides of the queue.
    """

    task_id: int
    gids: object                 # array('q'): global path ids
    offsets: object              # array('q'): shard-local offsets
    query_path: object           # repro.paths.model.Path
    anchor: object               # trim anchor Term, or None
    weights: object              # repro.scoring.weights.ScoringWeights
    remaining_ms: "float | None"  # budget slice; None = no deadline
    #: Score one columnar scan per refined equivalence class and copy
    #: the verdict to the class's other candidates (repro.quotient).
    #: Workers derive classes from their own in-RAM view, so the flag
    #: needs no sidecar file and can never be stale.
    quotient: bool = False

    @property
    def pairs(self):
        """The ``(gid, offset)`` view the scorer iterates."""
        return zip(self.gids, self.offsets)


def _shard_worker_main(shard_directory, thesaurus, matcher_level,
                       tasks, results):  # pragma: no cover - child process
    """Entry point of one shard worker process (top-level: spawn-safe).

    Opens the shard read-only, projects it into a
    :class:`~repro.index.columnar.ColumnarView` once, signals
    readiness, then serves :class:`ShardTask` envelopes until the
    ``None`` sentinel arrives.  Every shard persists the same global
    label dictionary, so the ids this worker scores in agree with every
    other worker's and with the coordinator.
    """
    from .index.columnar import (ColumnarView, encode_query, make_id_matcher,
                                 score_pairs)
    from .index.labels import SemanticMatcher
    from .index.pathindex import PathIndex
    from .paths.alignment import exact_match

    from .quotient.store import ShardQuotient

    index = PathIndex.open(shard_directory, thesaurus=thesaurus)
    view = ColumnarView.build(index)
    index.clear_cache()          # the columns hold the working set now
    if matcher_level == "exact":
        matcher = exact_match
    else:
        matcher = SemanticMatcher(thesaurus, level=matcher_level)
    ids_match = make_id_matcher(index.interner, matcher)
    # Built lazily on the first quotient-flagged task; derived from the
    # same view the scorer reads, so it can never disagree with it.
    shard_quotient = None
    results.put(("ready", os.getpid(), None))
    while True:
        task = tasks.get()
        if task is None:
            break
        try:
            query = encode_query(task.query_path, index.interner,
                                 anchor=task.anchor)
            if task.quotient:
                if shard_quotient is None:
                    row_offsets = [0] * len(view)
                    for offset, row in view.row_of.items():
                        row_offsets[row] = offset
                    shard_quotient = ShardQuotient.from_view(
                        view, row_offsets, 0)
                scored, tripped = _score_quotient(
                    view, shard_quotient, task.pairs, query,
                    task.weights, ids_match, task.remaining_ms)
            else:
                scored, tripped = score_pairs(
                    view, task.pairs, query, task.weights, ids_match,
                    remaining_ms=task.remaining_ms, with_starts=True)
            # Ship each kept candidate's trimmed node-id slice along
            # with its row: the coordinator's search joins clusters on
            # these ids (χ operands, candidate buckets) without ever
            # decoding the paths.  Flat array + per-row lengths in
            # ``plens`` — one compact buffer instead of many tuples.
            flat_ids = array("i")
            for _score, _gid, plen, start in scored:
                flat_ids.extend(view.node_ids[start:start + plen])
            payload = (array("d", (item[0] for item in scored)),
                       array("q", (item[1] for item in scored)),
                       array("i", (item[2] for item in scored)),
                       flat_ids,
                       tripped)
            results.put((task.task_id, payload, None))
        except Exception as exc:
            results.put((task.task_id, None,
                         f"{type(exc).__name__}: {exc}"))
    index.close()


def _score_quotient(view, quotient, pairs, query, weights, ids_match,
                    remaining_ms: "float | None"):
    """Worker-side class compression: one columnar scan per refined class.

    The id-space replica of the coordinator's refine key
    (:mod:`repro.quotient.resolve`): the constants are the
    non-negative ids of the encoded query plus the trim anchor, a
    slot's feature is the subset of constants it ``ids_match``-es, and
    candidates of one class with equal per-slot features provably
    receive bit-identical ``(λ, trimmed length)`` from
    :func:`~repro.index.columnar.score_pairs` — so only the first of
    each refined class is scanned and the verdict is copied to the
    rest, each shipped with its own node-column start.  A class whose
    representative is dropped by the anchor trim (or lost to the
    deadline) contributes no rows, mirroring the coordinator's serial
    quotient path.
    """
    from .index.columnar import score_pairs

    constants = sorted(
        {label for label in query.nodes if label >= 0}
        | {label for label in query.edges if label >= 0}
        | ({query.anchor_id} if query.anchor_id is not None else set()))
    features: "dict[int, frozenset]" = {}

    def feature(param: int) -> frozenset:
        found = features.get(param)
        if found is None:
            found = features[param] = frozenset(
                constant for constant in constants
                if ids_match(param, constant))
        return found

    row_of = quotient.row_of
    class_ids = quotient.class_ids
    patterns = quotient.patterns
    params_list = quotient.params
    pair_list = list(pairs)
    keys = []                    # refine key per pair, pair order
    rep_pairs = []               # first-of-class (gid, offset) pairs
    rep_key_of = {}              # rep gid -> its refine key
    seen = set()
    for gid, offset in pair_list:
        row = row_of[offset]
        pattern = patterns[class_ids[row]]
        key = (pattern.tobytes(),
               tuple(feature(param) for param in params_list[row]))
        keys.append(key)
        if key not in seen:
            seen.add(key)
            rep_pairs.append((gid, offset))
            rep_key_of[gid] = key
    scored, tripped = score_pairs(
        view, rep_pairs, query, weights, ids_match,
        remaining_ms=remaining_ms, with_starts=True)
    verdicts = {}                # refine key -> (λ, trimmed length)
    for score, gid, plen, _start in scored:
        verdicts[rep_key_of[gid]] = (score, plen)
    node_offs = view.node_offs
    results = []
    for (gid, offset), key in zip(pair_list, keys):
        verdict = verdicts.get(key)
        if verdict is None:
            continue
        score, plen = verdict
        results.append((score, gid, plen, node_offs[row_of[offset]]))
    results.sort(key=lambda item: (item[0], item[1]))
    return results, tripped


class _ShardWorker:
    """Coordinator-side handle of one worker process and its queues."""

    __slots__ = ("shard_no", "process", "tasks", "results", "ready",
                 "next_task_id", "lock")

    def __init__(self, shard_no, process, tasks, results):
        self.shard_no = shard_no
        self.process = process
        self.tasks = tasks
        self.results = results
        self.ready = False
        self.next_task_id = 0
        #: Serialises request/response per worker: the process handles
        #: one task at a time anyway, and exclusive queue access means
        #: no dispatch thread can steal another's response.
        self.lock = threading.Lock()


class ProcessShardPool:
    """Long-lived per-shard worker processes for scatter-gather scoring.

    Created once per engine (``worker_mode="procs"`` over a sharded
    index) and reused across queries.  Workers are spawned — never
    forked — so they are safe under any coordinator threading, and each
    opens its shard's index itself rather than inheriting open file
    handles.

    Fault contract: a worker that dies (crash, SIGKILL, OOM) or whose
    response overruns its budget slice surfaces as
    :class:`~repro.resilience.errors.ShardUnavailableError` — a storage
    -level fault the scatter layer already maps to ``SHARD_FAILED``
    degradation plus breaker accounting — never as a hang.  The dead
    worker is respawned lazily on the shard's next dispatch (counted in
    ``sama_worker_restarts_total``), so one crash costs one degraded
    query while the breaker's cooldown, not a permanent hole in the
    fleet.
    """

    def __init__(self, directory, shard_count: int, thesaurus=None,
                 matcher_level: str = "semantic",
                 ready_timeout_s: float = 60.0):
        from .obs import get_registry
        self.directory = directory
        self.shard_count = shard_count
        self.thesaurus = thesaurus
        self.matcher_level = matcher_level
        self.ready_timeout_s = ready_timeout_s
        self.restarts = 0
        self._context = multiprocessing.get_context("spawn")
        self._workers: "list[_ShardWorker | None]" = [None] * shard_count
        self._lock = threading.Lock()
        self._closed = False
        #: Dispatch threads wrap worker round-trips in futures so the
        #: scatter layer's hedging, deadlines, and breaker logic work
        #: identically for both execution modes.  Sized above the shard
        #: count so hedge fallbacks never queue behind blocked waits.
        self._dispatch = ThreadPoolExecutor(
            max_workers=shard_count + 2, thread_name_prefix="sama-shard-io")
        registry = get_registry()
        self._dispatch_hist = registry.histogram(
            "sama_worker_dispatch_seconds",
            "Time to enqueue one shard task to its worker process")
        self._result_hist = registry.histogram(
            "sama_worker_result_seconds",
            "Dispatch-to-gathered-result time per shard task")
        self._merge_hist = registry.histogram(
            "sama_worker_merge_seconds",
            "Coordinator-side k-way merge time per procs-mode scatter")
        self._restart_counter = registry.counter(
            "sama_worker_restarts_total",
            "Shard worker processes respawned after death or overrun")

    # -- lifecycle ---------------------------------------------------------

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The dispatch-thread executor scatter-gather submits to."""
        return self._dispatch

    def warm(self) -> None:
        """Spawn every worker now and wait until all are ready.

        Concentrates the spawn + column-build cost at engine open (or
        server startup) instead of the first query.
        """
        with self._lock:
            workers = [self._spawn_locked(shard) for shard
                       in range(self.shard_count)]
        for worker in workers:
            self._await_ready(worker)

    def close(self) -> None:
        """Stop every worker and release the dispatch threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = [w for w in self._workers if w is not None]
            self._workers = [None] * self.shard_count
        for worker in workers:
            try:
                worker.tasks.put_nowait(None)
            except (ValueError, OSError, queue_mod.Full):
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            for pipe in (worker.tasks, worker.results):
                pipe.cancel_join_thread()
                pipe.close()
        self._dispatch.shutdown(wait=False)

    def worker_pids(self) -> "dict[int, int]":
        """Live worker pids by shard (diagnostics and chaos tests)."""
        with self._lock:
            return {worker.shard_no: worker.process.pid
                    for worker in self._workers
                    if worker is not None and worker.process.is_alive()}

    # -- scoring -----------------------------------------------------------

    def run_shard(self, shard_no: int, pairs, query_path, anchor,
                  weights, remaining_ms: "float | None",
                  quotient: bool = False):
        """Score one shard's candidate slice in its worker process.

        Returns the same ``(results, tripped)`` pair as the in-process
        shard task: ``results`` as ``(score, gid, prefix_length,
        node label ids)`` rows sorted by ``(score, gid)``.  Runs on a
        dispatch thread; worker death or an overdue response raises
        :class:`~repro.resilience.errors.ShardUnavailableError`.
        ``quotient`` asks the worker to score one columnar scan per
        refined equivalence class (bit-identical rows, fewer scans).
        """
        from .resilience.errors import ShardUnavailableError
        with self._lock:
            if self._closed:
                raise ShardUnavailableError(
                    f"shard {shard_no}: worker pool closed", shard=shard_no)
            previous = self._workers[shard_no]
            if previous is not None and not previous.process.is_alive():
                # Died between queries (crash, OOM kill, operator).
                # Respawn for the *next* dispatch but fail this one:
                # the shard's candidates are lost right now, and the
                # failure must reach the breaker — a silent heal would
                # hide flapping workers from the health board.
                exitcode = previous.process.exitcode
                self._spawn_locked(shard_no)
                raise ShardUnavailableError(
                    f"shard {shard_no}: worker died (exit {exitcode})",
                    shard=shard_no)
            worker = self._spawn_locked(shard_no)
        gid_column = array("q")
        offset_column = array("q")
        for gid, offset in pairs:
            gid_column.append(gid)
            offset_column.append(offset)
        with worker.lock:
            self._await_ready(worker)
            task = ShardTask(
                task_id=worker.next_task_id, gids=gid_column,
                offsets=offset_column, query_path=query_path, anchor=anchor,
                weights=weights, remaining_ms=remaining_ms,
                quotient=quotient)
            worker.next_task_id += 1
            started = time.monotonic()
            worker.tasks.put(task)
            self._dispatch_hist.observe(time.monotonic() - started)
            cap = (None if remaining_ms is None
                   else remaining_ms / 1000.0 + _RESPONSE_GRACE_S)
            payload = self._gather(worker, task.task_id, cap)
            self._result_hist.observe(time.monotonic() - started)
        scores, gids, plens, flat_ids, tripped = payload
        rows = []
        position = 0
        for score, gid, plen in zip(scores, gids, plens):
            bound = position + plen
            # Array slices, not tuples: a C-level copy per row, and
            # everything downstream (frozenset, iteration) takes any
            # sequence.  The merge key is (score, gid), so the slice
            # is never compared.
            rows.append((score, gid, plen, flat_ids[position:bound]))
            position = bound
        return rows, tripped

    def observe_merge(self, seconds: float) -> None:
        """Record one scatter's coordinator-side merge time."""
        self._merge_hist.observe(seconds)

    # -- internals ---------------------------------------------------------

    def _spawn_locked(self, shard_no: int) -> _ShardWorker:
        worker = self._workers[shard_no]
        if worker is not None and worker.process.is_alive():
            return worker
        if worker is not None:
            self.restarts += 1
            self._restart_counter.inc()
        from .index.sharded import shard_dir
        tasks = self._context.Queue()
        results = self._context.Queue()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(shard_dir(self.directory, shard_no), self.thesaurus,
                  self.matcher_level, tasks, results),
            name=f"sama-shard-{shard_no}", daemon=True)
        process.start()
        worker = _ShardWorker(shard_no, process, tasks, results)
        self._workers[shard_no] = worker
        return worker

    def _await_ready(self, worker: _ShardWorker) -> None:
        from .resilience.errors import ShardUnavailableError
        if worker.ready:
            return
        deadline = time.monotonic() + self.ready_timeout_s
        while True:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                self._retire(worker, kill=True)
                raise ShardUnavailableError(
                    f"shard {worker.shard_no}: worker not ready after "
                    f"{self.ready_timeout_s:g}s", shard=worker.shard_no)
            try:
                kind, _pid, _err = worker.results.get(
                    timeout=min(timeout, _LIVENESS_POLL_S))
            except queue_mod.Empty:
                if not worker.process.is_alive():
                    self._retire(worker, kill=False)
                    raise ShardUnavailableError(
                        f"shard {worker.shard_no}: worker died during "
                        f"startup (exit {worker.process.exitcode})",
                        shard=worker.shard_no)
                continue
            if kind == "ready":
                worker.ready = True
                return

    def _gather(self, worker: _ShardWorker, task_id: int,
                cap: "float | None"):
        from .resilience.errors import ShardUnavailableError
        deadline = None if cap is None else time.monotonic() + cap
        while True:
            timeout = _LIVENESS_POLL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Wedged or far beyond its slice: kill it so the
                    # stale response can never mix into a later query,
                    # and let the next dispatch respawn.
                    self._retire(worker, kill=True)
                    raise ShardUnavailableError(
                        f"shard {worker.shard_no}: worker response "
                        f"overdue", shard=worker.shard_no)
                timeout = min(timeout, remaining)
            try:
                got_id, payload, error = worker.results.get(timeout=timeout)
            except queue_mod.Empty:
                if not worker.process.is_alive():
                    self._retire(worker, kill=False)
                    raise ShardUnavailableError(
                        f"shard {worker.shard_no}: worker died (exit "
                        f"{worker.process.exitcode})", shard=worker.shard_no)
                continue
            if got_id != task_id:
                continue         # response from an abandoned prior task
            if error is not None:
                raise ShardUnavailableError(
                    f"shard {worker.shard_no}: worker error: {error}",
                    shard=worker.shard_no)
            return payload

    def _retire(self, worker: _ShardWorker, kill: bool) -> None:
        """Drop a dead or wedged worker; the next dispatch respawns."""
        worker.ready = False
        if kill and worker.process.is_alive():
            worker.process.terminate()
        with self._lock:
            if self._workers[worker.shard_no] is worker:
                self._workers[worker.shard_no] = None
                self.restarts += 1
                self._restart_counter.inc()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        live = len(self.worker_pids())
        return (f"<ProcessShardPool {self.directory!r}: "
                f"{live}/{self.shard_count} workers live>")
