"""Path machinery: extraction, alignment, and intersection analysis.

Everything in §3.2–§4.3 of the paper lives here: the path model
(Definition 5), source/sink/hub analysis and BFS path enumeration, the
linear-time greedy alignment together with an optimal DP reference, and
the χ intersection function with the intersection query graph.
"""

from .alignment import (Alignment, AlignmentCounts, EditOp, LabelMatcher,
                        align, align_optimal, exact_match)
from .extraction import (DEFAULT_LIMITS, ExtractionLimits,
                         PathExplosionError, extract_paths, iter_paths,
                         query_paths)
from .intersection import IntersectionGraph, chi
from .model import Path, path_of
from .substitution import BindingConflict, EMPTY_SUBSTITUTION, Substitution

__all__ = [
    "Alignment", "AlignmentCounts", "BindingConflict", "DEFAULT_LIMITS",
    "EMPTY_SUBSTITUTION", "EditOp", "ExtractionLimits", "IntersectionGraph",
    "LabelMatcher", "Path", "PathExplosionError", "Substitution", "align",
    "align_optimal", "chi", "exact_match", "extract_paths", "iter_paths",
    "path_of", "query_paths",
]
