"""Path alignment: computing τ∘φ between a data path and a query path (§4.3).

Given a query path ``q`` and a data path ``p``, an alignment is a
substitution φ of q's variables plus a transformation τ (insertions,
deletions, label mismatches) such that ``τ(φ(q)) = p``.  The paper
computes alignments "by proceeding with a scan contrary to the
direction of the edges" — a backward walk from the sink — and states
the cost is ``O(|p| + |q|)``.

:func:`align` implements that linear-time greedy scan.  Both paths are
anchored at their sink ends; the walk then consumes ``(edge, node)``
pairs backwards.  Whenever the data path is longer than the query path
the surplus pairs must be inserted into q (they are what τ adds); the
greedy rule spends that insertion budget at the first position where
the edge labels conflict, and any budget left when the query side is
exhausted is spent on the data path's source-side remainder.  Query
variables substitute for any constant at zero cost.

:func:`align_optimal` is a dynamic-programming reference (O(|p|·|q|))
that provably minimises the weighted cost; the test suite uses it to
bound how far the greedy scan can drift, and the engine can be switched
to it for small workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from ..rdf.terms import Term, Variable
from .model import Path
from .substitution import BindingConflict, Substitution

#: Decides whether a data-side constant satisfies a query-side constant.
#: The default is label equality; the index layer substitutes a
#: thesaurus-aware matcher (synonyms/hyponyms/hypernyms, §6.1).
LabelMatcher = Callable[[Term, Term], bool]


def exact_match(data_label: Term, query_label: Term) -> bool:
    """The default matcher: plain label equality."""
    return data_label == query_label


class EditOp(NamedTuple):
    """One step of an alignment transcript.

    ``kind`` is one of ``match-node``, ``bind``, ``mismatch-node``,
    ``insert-node``, ``delete-node`` and the ``-edge`` variants.
    ``data`` / ``query`` carry the labels involved (``None`` where a
    side does not participate).
    """

    kind: str
    data: "Term | None"
    query: "Term | None"


@dataclass(frozen=True)
class AlignmentCounts:
    """The four counters of Equation 1, plus the zero-weight deletions.

    ``node_mismatches`` is n⁻_N (nodes of p whose label is not in q),
    ``node_insertions`` is n↑_N (nodes τ inserts into q), and likewise
    for edges.  Deletions — query elements with no data counterpart —
    carry weight 0 in the paper (ω(deletion) = 0 in the Theorem 1
    proof) but are still counted so callers can inspect them.
    """

    node_mismatches: int = 0
    node_insertions: int = 0
    edge_mismatches: int = 0
    edge_insertions: int = 0
    node_deletions: int = 0
    edge_deletions: int = 0

    @property
    def is_exact(self) -> bool:
        """True when the alignment is a pure substitution (τ empty)."""
        return self == AlignmentCounts()

    def __add__(self, other: "AlignmentCounts") -> "AlignmentCounts":
        return AlignmentCounts(
            self.node_mismatches + other.node_mismatches,
            self.node_insertions + other.node_insertions,
            self.edge_mismatches + other.edge_mismatches,
            self.edge_insertions + other.edge_insertions,
            self.node_deletions + other.node_deletions,
            self.edge_deletions + other.edge_deletions,
        )


@dataclass(frozen=True)
class Alignment:
    """The result of aligning a data path against a query path."""

    data_path: Path
    query_path: Path
    counts: AlignmentCounts
    substitution: Substitution
    ops: tuple[EditOp, ...] = field(default=(), repr=False)

    @property
    def is_exact(self) -> bool:
        """True when p is obtainable from q by substitution alone."""
        return self.counts.is_exact

    def explain(self) -> str:
        """A human-readable transcript, for debugging and examples."""
        lines = [f"align  p = {self.data_path}",
                 f"  over q = {self.query_path}"]
        for op in self.ops:
            if op.kind == "bind":
                lines.append(f"    φ: {op.query} := {op.data}")
            elif op.kind.startswith("match"):
                lines.append(f"    {op.kind}: {op.data}")
            elif op.kind.startswith("mismatch"):
                lines.append(f"    {op.kind}: {op.data} vs {op.query}")
            elif op.kind.startswith("insert"):
                lines.append(f"    τ {op.kind}: {op.data}")
            else:
                lines.append(f"    τ {op.kind}: {op.query}")
        return "\n".join(lines)


class _Scanner:
    """Mutable state of one greedy backward scan.

    With ``record_ops=False`` the transcript is skipped: counts and the
    substitution are still exact (scores and bindings are unaffected),
    but no :class:`EditOp` objects are built.  Clustering aligns every
    retrieved candidate and only ever reads counts + substitution, so
    the transcript would be allocated millions of times and read never
    — the engine's hot path runs with recording off, while ``explain``
    paths keep the default.
    """

    def __init__(self, matcher: LabelMatcher, record_ops: bool = True):
        self.matcher = matcher
        self.record_ops = record_ops
        self.ops: list[EditOp] = []
        self.substitution = Substitution()
        self.node_mismatches = 0
        self.node_insertions = 0
        self.edge_mismatches = 0
        self.edge_insertions = 0
        self.node_deletions = 0
        self.edge_deletions = 0

    def compare_node(self, data_label: Term, query_label: Term) -> None:
        if isinstance(query_label, Variable):
            try:
                self.substitution = self.substitution.bind(query_label, data_label)
                if self.record_ops:
                    self.ops.append(EditOp("bind", data_label, query_label))
            except BindingConflict:
                # A variable repeated in one query path that would need
                # two different constants: counted as a node mismatch.
                self.node_mismatches += 1
                if self.record_ops:
                    self.ops.append(EditOp("mismatch-node", data_label,
                                           query_label))
            return
        if self.matcher(data_label, query_label):
            if self.record_ops:
                self.ops.append(EditOp("match-node", data_label, query_label))
        else:
            self.node_mismatches += 1
            if self.record_ops:
                self.ops.append(EditOp("mismatch-node", data_label, query_label))

    def compare_edge(self, data_label: Term, query_label: Term) -> None:
        if isinstance(query_label, Variable):
            try:
                self.substitution = self.substitution.bind(query_label, data_label)
                if self.record_ops:
                    self.ops.append(EditOp("bind", data_label, query_label))
            except BindingConflict:
                self.edge_mismatches += 1
                if self.record_ops:
                    self.ops.append(EditOp("mismatch-edge", data_label,
                                           query_label))
            return
        if self.matcher(data_label, query_label):
            if self.record_ops:
                self.ops.append(EditOp("match-edge", data_label, query_label))
        else:
            self.edge_mismatches += 1
            if self.record_ops:
                self.ops.append(EditOp("mismatch-edge", data_label, query_label))

    def edge_compatible(self, data_label: Term, query_label: Term) -> bool:
        if isinstance(query_label, Variable):
            return True
        return self.matcher(data_label, query_label)

    def insert_pair(self, edge_label: Term, node_label: Term) -> None:
        self.edge_insertions += 1
        self.node_insertions += 1
        if self.record_ops:
            self.ops.append(EditOp("insert-edge", edge_label, None))
            self.ops.append(EditOp("insert-node", node_label, None))

    def delete_pair(self, edge_label: Term, node_label: Term) -> None:
        self.edge_deletions += 1
        self.node_deletions += 1
        if self.record_ops:
            self.ops.append(EditOp("delete-edge", None, edge_label))
            self.ops.append(EditOp("delete-node", None, node_label))

    def counts(self) -> AlignmentCounts:
        return AlignmentCounts(
            node_mismatches=self.node_mismatches,
            node_insertions=self.node_insertions,
            edge_mismatches=self.edge_mismatches,
            edge_insertions=self.edge_insertions,
            node_deletions=self.node_deletions,
            edge_deletions=self.edge_deletions,
        )


def align(data_path: Path, query_path: Path,
          matcher: LabelMatcher = exact_match,
          transcript: bool = True) -> Alignment:
    """Greedy linear-time alignment (the paper's §4.3 scan).

    Runs in ``O(|p| + |q|)``: every iteration of the loop consumes at
    least one ``(edge, node)`` pair from one of the two paths.

    ``transcript=False`` skips recording the :class:`EditOp` sequence
    (``ops`` comes back empty); counts, score, and substitution are
    identical.  The clustering hot path uses this — it scores millions
    of candidates and reads the transcript of none of them.
    """
    scanner = _Scanner(matcher, record_ops=transcript)
    # Anchor the sinks: both paths end at their sink by construction.
    scanner.compare_node(data_path.sink, query_path.sink)

    p_edges, p_nodes = data_path.edges, data_path.nodes
    q_edges, q_nodes = query_path.edges, query_path.nodes
    pi = len(p_edges) - 1
    qi = len(q_edges) - 1
    budget = max(0, (pi + 1) - (qi + 1))

    while pi >= 0 and qi >= 0:
        p_edge, p_node = p_edges[pi], p_nodes[pi]
        q_edge = q_edges[qi]
        if budget > 0 and not scanner.edge_compatible(p_edge, q_edge):
            scanner.insert_pair(p_edge, p_node)
            pi -= 1
            budget -= 1
            continue
        scanner.compare_edge(p_edge, q_edge)
        scanner.compare_node(p_node, q_nodes[qi])
        pi -= 1
        qi -= 1
    while pi >= 0:
        # Data-side remainder at the source end: τ must insert it.
        scanner.insert_pair(p_edges[pi], p_nodes[pi])
        pi -= 1
    while qi >= 0:
        # Query-side remainder: deletions, weight 0 per the paper.
        scanner.delete_pair(q_edges[qi], q_nodes[qi])
        qi -= 1

    return Alignment(data_path=data_path, query_path=query_path,
                     counts=scanner.counts(),
                     substitution=scanner.substitution,
                     ops=tuple(reversed(scanner.ops)))


def align_optimal(data_path: Path, query_path: Path, weights,
                  matcher: LabelMatcher = exact_match) -> Alignment:
    """Minimum-cost alignment by dynamic programming (O(|p|·|q|)).

    ``weights`` is a :class:`~repro.scoring.weights.ScoringWeights`; the
    DP minimises the λ cost of Equation 1 exactly, with deletions at
    the configured (default zero) deletion weights.  Sink nodes are
    anchored like the greedy scan so both algorithms solve the same
    problem.
    """
    p_pairs = [(data_path.edges[i], data_path.nodes[i])
               for i in range(len(data_path.edges) - 1, -1, -1)]
    q_pairs = [(query_path.edges[i], query_path.nodes[i])
               for i in range(len(query_path.edges) - 1, -1, -1)]
    m, n = len(p_pairs), len(q_pairs)
    insert_cost = weights.node_insertion + weights.edge_insertion
    delete_cost = weights.node_deletion + weights.edge_deletion

    def pair_cost(p_pair, q_pair) -> float:
        p_edge, p_node = p_pair
        q_edge, q_node = q_pair
        cost = 0.0
        if not isinstance(q_edge, Variable) and not matcher(p_edge, q_edge):
            cost += weights.edge_mismatch
        if not isinstance(q_node, Variable) and not matcher(p_node, q_node):
            cost += weights.node_mismatch
        return cost

    # dp[i][j] = min cost aligning first i pairs of p against first j of q.
    infinity = float("inf")
    dp = [[infinity] * (n + 1) for _ in range(m + 1)]
    choice = [[""] * (n + 1) for _ in range(m + 1)]
    dp[0][0] = 0.0
    for i in range(m + 1):
        for j in range(n + 1):
            base = dp[i][j]
            if base == infinity:
                continue
            if i < m and base + insert_cost < dp[i + 1][j]:
                dp[i + 1][j] = base + insert_cost
                choice[i + 1][j] = "insert"
            if j < n and base + delete_cost < dp[i][j + 1]:
                dp[i][j + 1] = base + delete_cost
                choice[i][j + 1] = "delete"
            if i < m and j < n:
                step = base + pair_cost(p_pairs[i], q_pairs[j])
                if step < dp[i + 1][j + 1]:
                    dp[i + 1][j + 1] = step
                    choice[i + 1][j + 1] = "substitute"

    # Reconstruct the op sequence (sink-to-source order while walking
    # back, re-reversed at the end like the greedy scan).
    scanner = _Scanner(matcher)
    scanner.compare_node(data_path.sink, query_path.sink)
    steps = []
    i, j = m, n
    while i > 0 or j > 0:
        move = choice[i][j]
        steps.append(move)
        if move == "insert":
            i -= 1
        elif move == "delete":
            j -= 1
        else:
            i -= 1
            j -= 1
    # ``steps`` was collected walking back from (m, n); reverse it so it
    # replays sink-to-source, matching the pair lists' orientation.
    steps.reverse()
    i = j = 0
    for move in steps:
        if move == "insert":
            scanner.insert_pair(*p_pairs[i])
            i += 1
        elif move == "delete":
            scanner.delete_pair(*q_pairs[j])
            j += 1
        else:
            p_edge, p_node = p_pairs[i]
            q_edge, q_node = q_pairs[j]
            scanner.compare_edge(p_edge, q_edge)
            scanner.compare_node(p_node, q_node)
            i += 1
            j += 1

    return Alignment(data_path=data_path, query_path=query_path,
                     counts=scanner.counts(),
                     substitution=scanner.substitution,
                     ops=tuple(reversed(scanner.ops)))
