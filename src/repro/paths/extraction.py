"""Path extraction: decomposing a graph into source-to-sink paths (§3.2, §5).

The engine decomposes both the query graph and the data graph into the
set of all paths from sources to sinks.  Extraction is a breadth-first
traversal started independently from every source (the paper runs these
"independently concurrent"; we expose an optional thread pool for the
same structure).  Graphs without sources promote hub nodes — those
maximising out-degree minus in-degree — to traversal roots.

Cycles are handled by never revisiting a node within one partial path;
a walk that can no longer move (every successor already on the path)
ends there, so extraction always terminates.  Guards on path length and
path count keep pathological graphs (dense DAGs have exponentially many
paths) at bay; hitting a guard raises :class:`PathExplosionError` so
truncation is never silent.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..parallel import shared_executor
from ..rdf.graph import DataGraph
from .model import Path

#: Roots below which ``parallel=True`` extraction stays serial: pool
#: dispatch costs more than walking a handful of roots inline (the
#: crossover is measured by ``benchmarks/bench_hotpath.py``).
PARALLEL_MIN_ROOTS = 8


class PathExplosionError(RuntimeError):
    """Raised when extraction exceeds the configured path/length budget."""


@dataclass(frozen=True)
class ExtractionLimits:
    """Safety guards for path enumeration.

    ``max_length`` bounds the number of nodes per path; ``max_paths``
    bounds the total number of extracted paths.  ``on_limit`` selects
    whether hitting a guard raises (``'raise'``, default) or truncates
    (``'truncate'`` — used by the index builder, which logs the event
    in its statistics instead).
    """

    max_length: int = 64
    max_paths: int = 2_000_000
    on_limit: str = "raise"

    def __post_init__(self):
        if self.max_length < 1:
            raise ValueError("max_length must be >= 1")
        if self.max_paths < 1:
            raise ValueError("max_paths must be >= 1")
        if self.on_limit not in ("raise", "truncate"):
            raise ValueError("on_limit must be 'raise' or 'truncate'")


DEFAULT_LIMITS = ExtractionLimits()


def extract_paths(graph: DataGraph,
                  limits: ExtractionLimits = DEFAULT_LIMITS,
                  parallel: bool = False) -> list[Path]:
    """All source-to-sink paths of ``graph``.

    Roots are the graph's sources, or its hubs when it has none
    (§3.2).  An isolated node (source and sink at once) yields the
    single-node path containing just its label.

    With ``parallel=True`` the per-root traversals run on the shared
    module-level worker pool (sized from ``SAMA_WORKERS`` /
    ``os.cpu_count()`` — a pool used to be created per call, with
    unbounded default workers), mirroring the paper's concurrent BFS;
    results are identical and deterministically ordered by root id
    either way.  Small inputs (< :data:`PARALLEL_MIN_ROOTS` roots) skip
    the pool entirely: dispatch overhead dominates below that.
    """
    roots = graph.path_roots()
    if not roots:
        return []
    budget = _Budget(limits, graph)
    pool = shared_executor() if (parallel
                                 and len(roots) >= PARALLEL_MIN_ROOTS) else None
    if pool is not None:
        chunks = pool.map(lambda r: list(_walk_from(graph, r, budget)), roots)
        results = [p for chunk in chunks for p in chunk]
    else:
        results = [p for root in roots for p in _walk_from(graph, root, budget)]
    return results


def iter_paths(graph: DataGraph,
               limits: ExtractionLimits = DEFAULT_LIMITS) -> Iterator[Path]:
    """Lazily yield source-to-sink paths (single-threaded)."""
    budget = _Budget(limits, graph)
    for root in graph.path_roots():
        yield from _walk_from(graph, root, budget)


class _Budget:
    """Shared mutable counters enforcing :class:`ExtractionLimits`."""

    __slots__ = ("limits", "emitted", "truncated", "graph_name")

    def __init__(self, limits: ExtractionLimits, graph: DataGraph):
        self.limits = limits
        self.emitted = 0
        self.truncated = False
        self.graph_name = graph.name or "<anonymous>"

    def charge_path(self) -> bool:
        """Account for one emitted path; False means stop extracting."""
        if self.emitted >= self.limits.max_paths:
            if self.limits.on_limit == "raise":
                raise PathExplosionError(
                    f"more than {self.limits.max_paths} paths in graph "
                    f"{self.graph_name}; raise ExtractionLimits.max_paths or "
                    f"use on_limit='truncate'")
            self.truncated = True
            return False
        self.emitted += 1
        return True

    def cut_for_length(self, node_count: int, can_extend: bool) -> bool:
        """True when a partial path must stop at the length cap."""
        if node_count < self.limits.max_length or not can_extend:
            return False
        if self.limits.on_limit == "raise":
            raise PathExplosionError(
                f"a path in graph {self.graph_name} exceeds "
                f"{self.limits.max_length} nodes; raise "
                f"ExtractionLimits.max_length or use on_limit='truncate'")
        self.truncated = True
        return True


def _walk_from(graph: DataGraph, root: int, budget: _Budget) -> Iterator[Path]:
    """BFS enumeration of complete paths starting at ``root``.

    The frontier holds partial paths as (node-id tuple, edge-label
    tuple); a partial path is complete when its tip has no outgoing
    edge, no unvisited successor, or the length guard fires.
    """
    frontier: deque[tuple[tuple[int, ...], tuple]] = deque()
    frontier.append(((root,), ()))
    while frontier:
        node_ids, edge_labels = frontier.popleft()
        tip = node_ids[-1]
        on_path = set(node_ids)
        # Cycle cut: never revisit a node within one partial path.
        extensions = [(label, dst) for label, dst in graph.out_edges(tip)
                      if dst not in on_path]
        extended = False
        if not budget.cut_for_length(len(node_ids), bool(extensions)):
            for edge_label, dst in extensions:
                frontier.append((node_ids + (dst,), edge_labels + (edge_label,)))
                extended = True
        if not extended:
            if not budget.charge_path():
                return
            yield Path([graph.label_of(n) for n in node_ids], edge_labels,
                       node_ids=node_ids)


def query_paths(query: DataGraph,
                limits: ExtractionLimits = DEFAULT_LIMITS) -> list[Path]:
    """The paths ``PQ`` of a query graph, in stable (root id) order.

    Identical to :func:`extract_paths`; named separately because the
    engine treats the two path sets differently downstream.
    """
    return extract_paths(query, limits=limits)
