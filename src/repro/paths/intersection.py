"""The χ function and the intersection query graph (IG) of §5.

``χ(p1, p2)`` is the set of node labels two paths share.  The
*intersection query graph* has one node per query path and an edge
between two query paths whenever they share at least one node — e.g. in
the running example ``q1`` and ``q2`` share ``?v2`` and ``Health Care``
while ``q2`` and ``q3`` share ``?v3`` (Fig. 2).  The engine uses the IG
to know which pairs of retrieved data paths must be checked for
conformity (ψ) when combining them into answers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from ..rdf.terms import Term
from .model import Path


def chi(path_a: Path, path_b: Path) -> frozenset[Term]:
    """The set of node labels in common between two paths (χ).

    Variables are labels too: two query paths sharing ``?v2`` intersect
    on it, which is exactly how Fig. 2 counts.
    """
    return path_a.node_label_set() & path_b.node_label_set()


class IntersectionGraph:
    """The IG over an ordered family of paths.

    Paths are addressed by their index in the input sequence, so the
    same structure serves both query paths and candidate combinations.
    Precomputes all pairwise χ sets once: clustering and search consult
    them repeatedly.
    """

    def __init__(self, paths: Sequence[Path]):
        self.paths = list(paths)
        self._common: dict[tuple[int, int], frozenset[Term]] = {}
        self._adjacent: dict[int, set[int]] = {i: set() for i in range(len(self.paths))}
        for i, j in combinations(range(len(self.paths)), 2):
            shared = chi(self.paths[i], self.paths[j])
            if shared:
                self._common[(i, j)] = shared
                self._adjacent[i].add(j)
                self._adjacent[j].add(i)

    def __len__(self) -> int:
        return len(self.paths)

    def has_edge(self, i: int, j: int) -> bool:
        """True when paths ``i`` and ``j`` share at least one node."""
        return self._key(i, j) in self._common

    def common(self, i: int, j: int) -> frozenset[Term]:
        """``χ(paths[i], paths[j])`` (empty set when disjoint)."""
        return self._common.get(self._key(i, j), frozenset())

    def neighbors(self, i: int) -> set[int]:
        """Indices of paths intersecting path ``i``."""
        return set(self._adjacent[i])

    def edges(self) -> Iterator[tuple[int, int, frozenset[Term]]]:
        """All IG edges as ``(i, j, shared labels)`` with ``i < j``."""
        for (i, j), shared in sorted(self._common.items()):
            yield i, j, shared

    def edge_count(self) -> int:
        return len(self._common)

    def is_connected(self) -> bool:
        """True when the IG is a single connected component.

        A disconnected IG means the query asks independent questions;
        the engine still answers but conformity cannot tie the parts
        together.
        """
        if len(self.paths) <= 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacent[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.paths)

    @staticmethod
    def _key(i: int, j: int) -> tuple[int, int]:
        return (i, j) if i <= j else (j, i)

    def __repr__(self):
        return (f"<IntersectionGraph: {len(self.paths)} paths, "
                f"{self.edge_count()} intersections>")
