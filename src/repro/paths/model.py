"""The path model (Definition 5).

A path is an alternating sequence of node and edge labels
``ln1 - le1 - ln2 - ... - le(k-1) - lnk`` running from a source to a
sink.  Following the paper, the *length* of a path is its number of
nodes, and the *position* of a node is its 0-based index from the start
(the paper's example gives ``pz`` length 4 with node ``A1589`` at
position 2 counting from 1; we use 0-based indices internally and the
docstrings say so wherever it matters).

Data paths additionally remember the underlying node identifiers of the
graph they were extracted from, so answers can be materialised back
into subgraphs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..rdf.terms import Term, Variable, coerce_term


class Path:
    """An immutable source-to-sink path of labels.

    Parameters
    ----------
    nodes:
        The node labels, in order from source to sink (at least one).
    edges:
        The edge labels; must number exactly ``len(nodes) - 1``.
    node_ids:
        Optional graph node identifiers matching ``nodes`` — present on
        paths extracted from a :class:`~repro.rdf.graph.DataGraph`,
        absent on synthetic paths.
    """

    __slots__ = ("nodes", "edges", "node_ids", "_hash", "_label_set",
                 "_label_ids", "_label_id_set")

    def __init__(self, nodes: Sequence, edges: Sequence,
                 node_ids: "Sequence[int] | None" = None):
        nodes = tuple(coerce_term(n) for n in nodes)
        edges = tuple(coerce_term(e) for e in edges)
        if not nodes:
            raise ValueError("a path needs at least one node")
        if len(edges) != len(nodes) - 1:
            raise ValueError(f"a path of {len(nodes)} nodes needs "
                             f"{len(nodes) - 1} edges, got {len(edges)}")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "node_ids",
                           tuple(node_ids) if node_ids is not None else None)
        object.__setattr__(self, "_hash", None)
        # Memoised by node_label_set(); χ is called on every conformity
        # check, so the set must not be rebuilt per call.
        object.__setattr__(self, "_label_set", None)
        # Dense interned node-label ids (attach_label_ids) and their
        # frozenset, the fast-path operands of χ/ψ — absent (None) on
        # paths that never went through a LabelInterner.
        object.__setattr__(self, "_label_ids", None)
        object.__setattr__(self, "_label_id_set", None)

    def __setattr__(self, name, value):  # pragma: no cover - guard rail
        raise AttributeError("Path is immutable")

    def __reduce__(self):
        # Pickle through :meth:`from_terms`: the default slot-state
        # protocol restores via ``setattr`` and hits the immutability
        # guard.  Cached label ids are interner-specific and deliberately
        # not shipped — the receiving side re-derives them against its
        # own interner.
        return (Path.from_terms, (self.nodes, self.edges, self.node_ids))

    @classmethod
    def from_terms(cls, nodes: "tuple[Term, ...]", edges: "tuple[Term, ...]",
                   node_ids: "tuple[int, ...] | None" = None) -> "Path":
        """Construct from already-validated Term tuples.

        The record-decode fast path: callers guarantee ``nodes`` and
        ``edges`` are Term tuples of consistent lengths (the codec
        enforced that when the record was written), so per-element
        coercion and the length checks are skipped.
        """
        path = object.__new__(cls)
        set_slot = object.__setattr__
        set_slot(path, "nodes", nodes)
        set_slot(path, "edges", edges)
        set_slot(path, "node_ids", node_ids)
        set_slot(path, "_hash", None)
        set_slot(path, "_label_set", None)
        set_slot(path, "_label_ids", None)
        set_slot(path, "_label_id_set", None)
        return path

    # -- identity ---------------------------------------------------------

    def __eq__(self, other):
        return (isinstance(other, Path)
                and self.nodes == other.nodes
                and self.edges == other.edges)

    def __hash__(self):
        # Lazy: hashing every term eagerly would dominate record decode,
        # and most decoded paths are never used as dict keys.
        cached = self._hash
        if cached is None:
            cached = hash((self.nodes, self.edges))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self):
        return f"Path({self.text()!r})"

    # -- paper vocabulary ---------------------------------------------------

    @property
    def length(self) -> int:
        """Number of nodes (the paper's notion of path length)."""
        return len(self.nodes)

    @property
    def source(self) -> Term:
        """Label of the first node."""
        return self.nodes[0]

    @property
    def sink(self) -> Term:
        """Label of the last node."""
        return self.nodes[-1]

    def position_of(self, label) -> int:
        """0-based position of the first node carrying ``label``.

        Raises ``ValueError`` when the label does not occur.
        """
        label = coerce_term(label)
        for index, node in enumerate(self.nodes):
            if node == label:
                return index
        raise ValueError(f"{label!r} does not occur in {self!r}")

    # -- structure ----------------------------------------------------------

    def elements(self) -> Iterator[tuple[str, Term]]:
        """Interleaved ``('node'|'edge', label)`` pairs, source to sink."""
        for index, node in enumerate(self.nodes):
            yield ("node", node)
            if index < len(self.edges):
                yield ("edge", self.edges[index])

    def pairs(self) -> Iterator[tuple[Term, Term]]:
        """``(edge label, node label)`` pairs walking source → sink.

        Pair ``i`` is the edge leaving node ``i`` together with node
        ``i+1``; the source node itself is not part of any pair.  This
        is the unit the backward alignment scan works in.
        """
        for index, edge in enumerate(self.edges):
            yield (edge, self.nodes[index + 1])

    def reversed_pairs(self) -> Iterator[tuple[Term, Term]]:
        """``(edge, node)`` pairs walking sink → source.

        Pair ``i`` (0-based from the sink) is the edge entering the node
        at distance ``i`` from the sink together with the node *before*
        it — the orientation of the paper's "scan contrary to the
        direction of the edges" (§4.3).
        """
        for index in range(len(self.edges) - 1, -1, -1):
            yield (self.edges[index], self.nodes[index])

    def node_label_set(self) -> frozenset[Term]:
        """The set of node labels (the operand of the χ function)."""
        if self._label_set is None:
            object.__setattr__(self, "_label_set", frozenset(self.nodes))
        return self._label_set

    # -- dense-id fast path -------------------------------------------------

    def attach_label_ids(self, label_ids) -> None:
        """Attach interned node-label ids (an ``array('i')``-compatible
        sequence aligned with ``nodes``).

        Interning is injective, so any set computed over the ids has the
        same cardinality as the corresponding label set — which is what
        lets χ/ψ intersect small int-sets instead of hashing Terms.
        Attaching twice is a no-op (the ids are a pure function of the
        labels for a given interner).
        """
        if self._label_ids is None:
            if len(label_ids) != len(self.nodes):
                raise ValueError(
                    f"need one label id per node: {len(label_ids)} ids "
                    f"for {len(self.nodes)} nodes")
            object.__setattr__(self, "_label_ids", label_ids)

    @property
    def label_ids(self):
        """The attached interned node-label ids, or ``None``."""
        return self._label_ids

    def node_label_id_set(self) -> "frozenset[int] | None":
        """Cached frozenset of interned node-label ids (``None`` when no
        ids were attached) — the int-set operand of the χ fast path."""
        if self._label_id_set is None:
            if self._label_ids is None:
                return None
            object.__setattr__(self, "_label_id_set",
                               frozenset(self._label_ids))
        return self._label_id_set

    def variables(self) -> set[Variable]:
        """Variables occurring as node or edge labels (query paths)."""
        found = {n for n in self.nodes if isinstance(n, Variable)}
        found.update(e for e in self.edges if isinstance(e, Variable))
        return found

    @property
    def is_ground(self) -> bool:
        """True when the path mentions no variables (data paths)."""
        return not self.variables()

    def triples(self) -> Iterator[tuple[Term, Term, Term]]:
        """The path as ``(subject, predicate, object)`` label triples."""
        for index, edge in enumerate(self.edges):
            yield (self.nodes[index], edge, self.nodes[index + 1])

    def prefix(self, node_count: int) -> "Path":
        """The sub-path over the first ``node_count`` nodes."""
        if not 1 <= node_count <= self.length:
            raise ValueError(f"node_count must be in [1, {self.length}]")
        ids = self.node_ids[:node_count] if self.node_ids else None
        clipped = Path(self.nodes[:node_count], self.edges[:node_count - 1], ids)
        if self._label_ids is not None:
            # Interned ids slice with the nodes, so prefix-trimmed
            # candidates stay on the int-set fast path for free.
            clipped.attach_label_ids(self._label_ids[:node_count])
        return clipped

    # -- rendering ------------------------------------------------------------

    def text(self, separator: str = "-") -> str:
        """The paper's inline notation, e.g. ``CB-sponsor-A0056-...``.

        URIs are shortened to their local names for readability.
        """
        parts = []
        for kind, label in self.elements():
            parts.append(_short(label))
        return separator.join(parts)

    def __str__(self):
        return self.text()


def _short(label: Term) -> str:
    from ..rdf.terms import URI
    if isinstance(label, URI):
        return label.local_name
    return str(label)


def path_of(*labels, node_ids=None) -> Path:
    """Build a path from an interleaved label sequence.

    ``path_of(n1, e1, n2, e2, n3)`` — the literal transliteration of the
    paper's ``n1-e1-n2-e2-n3`` notation.  Strings are coerced to terms.
    """
    if len(labels) % 2 == 0:
        raise ValueError("an interleaved path needs an odd number of labels")
    return Path(labels[0::2], labels[1::2], node_ids=node_ids)
