"""Variable substitutions (the φ of Definition 3).

A substitution maps query variables to constants.  Alignments produce
one substitution per query path; combining paths into an answer merges
the per-path substitutions, and a merge conflict (the same variable
bound to two different constants) is how the engine detects that two
candidate paths disagree.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..rdf.terms import Term, Variable


class BindingConflict(ValueError):
    """Raised when a merge would bind one variable to two constants."""

    def __init__(self, variable: Variable, existing: Term, incoming: Term):
        super().__init__(f"{variable} already bound to {existing!r}, "
                         f"cannot rebind to {incoming!r}")
        self.variable = variable
        self.existing = existing
        self.incoming = incoming


class Substitution(Mapping[Variable, Term]):
    """An immutable-by-convention mapping from variables to constants."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: "Mapping[Variable, Term] | None" = None):
        self._bindings: dict[Variable, Term] = dict(bindings or {})

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, variable: Variable) -> Term:
        return self._bindings[variable]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self):
        inner = ", ".join(f"{v}={t}" for v, t in sorted(
            self._bindings.items(), key=lambda item: item[0].value))
        return f"Substitution({inner})"

    def __eq__(self, other):
        if isinstance(other, Substitution):
            return self._bindings == other._bindings
        if isinstance(other, Mapping):
            return self._bindings == dict(other)
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self._bindings.items()))

    # -- construction ---------------------------------------------------------

    def bind(self, variable: Variable, value: Term) -> "Substitution":
        """A new substitution with ``variable`` bound to ``value``.

        Raises :class:`BindingConflict` if the variable is already
        bound to a different constant; rebinding to the same constant
        is a no-op.
        """
        existing = self._bindings.get(variable)
        if existing is not None:
            if existing == value:
                return self
            raise BindingConflict(variable, existing, value)
        merged = dict(self._bindings)
        merged[variable] = value
        return Substitution(merged)

    def merge(self, other: "Mapping[Variable, Term]") -> "Substitution":
        """The union of two substitutions.

        Raises :class:`BindingConflict` on disagreement.
        """
        result = self
        for variable, value in other.items():
            result = result.bind(variable, value)
        return result

    def compatible_with(self, other: "Mapping[Variable, Term]") -> bool:
        """True when :meth:`merge` would succeed."""
        for variable, value in other.items():
            existing = self._bindings.get(variable)
            if existing is not None and existing != value:
                return False
        return True

    def apply(self, term: Term) -> Term:
        """Resolve ``term`` if it is a bound variable, else return it."""
        if isinstance(term, Variable):
            return self._bindings.get(term, term)
        return term


EMPTY_SUBSTITUTION = Substitution()
