"""repro.quotient — bisimulation-quotient path compression.

See :mod:`repro.quotient.store` for the per-shard persisted
``quotient.bin`` artifacts (label-equality-pattern classes, built
offline by ``sama index quotient`` or ``sama index build``) and
:mod:`repro.quotient.resolve` for the query-time refine-key machinery
the engine wires into ``build_clusters`` so one alignment per refined
class serves every member — rankings bit-identical to per-path
scoring.
"""

from .resolve import (DROPPED, QuotientContext, QuotientIndex,
                      QuotientResolver)
from .store import (QUOTIENT_FILE, QuotientFormatError, ShardQuotient,
                    build_quotients, invalidate_quotients,
                    load_quotients, load_shard_quotient, quotient_path)

__all__ = [
    "DROPPED",
    "QUOTIENT_FILE",
    "QuotientContext",
    "QuotientFormatError",
    "QuotientIndex",
    "QuotientResolver",
    "ShardQuotient",
    "build_quotients",
    "invalidate_quotients",
    "load_quotients",
    "load_shard_quotient",
    "quotient_path",
]
