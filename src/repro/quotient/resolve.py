"""Query-time class resolution: score one path per refined class.

The persisted quotient (:mod:`repro.quotient.store`) groups paths by
label-*equality pattern*; whether two members of a class score the
same λ against a *particular* query additionally depends on how their
concrete slot fillers compare to that query's constants.  The resolver
closes that gap with a **refine key** per candidate:

.. code-block:: text

    key = (class pattern, (feature(param) for each slot filler))
    feature(p) = { query constant c : ids_match(p, c) }

where the constants are the interned ids of every constant node and
edge of the query path plus the trim anchor.  Two candidates with
equal refine keys are indistinguishable to the greedy sink-anchored
scan (:func:`repro.paths.alignment.align` and its id-space replica
:func:`repro.index.columnar.score_pairs`):

- at every *compared* position the scan's verdict is
  ``ids_match(data id, query constant)`` — equal features ⇒ equal
  verdicts position by position (positions map to slots identically
  because the patterns are equal);
- at repeated-*variable* positions the scan compares the candidate's
  own ids against each other — determined by the pattern alone;
- the §4.3 anchor trim scans node positions sink-first for the first
  anchor match — the anchor is one of the constants, so equal
  features ⇒ the same trim position (or the same drop);
- the insertion-budget rule spends on the same verdicts, so the
  traversal itself is branch-identical.

Branch-identical scans produce the *same integer counts*, and λ is a
weighted sum of those integers evaluated in one fixed order — so the
scores are bit-identical floats, not merely close.  The engine
therefore aligns one representative per refine key and copies
``(λ, trimmed length)`` to the other members; members re-enter the
pipeline as :class:`~repro.engine.clustering.LazyClusterEntry` rows
carrying their own concrete node ids (reconstructed from their slot
fillers), so everything downstream — ψ/χ set intersections, candidate
buckets, final answers — sees the member's true labels.  Rankings are
asserted bit-identical to unquotiented scoring across shard counts,
worker modes and two-stage modes by ``benchmarks/bench_quotient.py``.

The bit-identity claim is for unbudgeted, fault-free queries — the
same caveat two-stage retrieval documents: a deadline that trips
mid-cluster keeps whatever was scored, and with quotients a lost
representative loses its members too.  Budget *charging* is untouched
(every retrieved candidate is charged, member or not), so
``max_candidates`` trips at identical points either way.
"""

from __future__ import annotations

from ..index.columnar import make_id_matcher
from ..obs import get_registry
from ..rdf.terms import Variable
from .store import load_quotients

#: Refine-key verdict for a class whose representative was dropped by
#: the anchor trim: every member is dropped too.
DROPPED = object()


class QuotientIndex:
    """Gid-space view over per-shard quotients (``None`` holes allowed)."""

    __slots__ = ("quotients", "_locate")

    def __init__(self, quotients, locate):
        self.quotients = quotients
        self._locate = locate

    @classmethod
    def for_index(cls, index) -> "QuotientIndex | None":
        """Load the persisted quotients of ``index``; ``None`` when no
        shard has a usable one (absent, stale epoch, corrupt)."""
        quotients = load_quotients(index)
        if quotients is None:
            return None
        locate = getattr(index, "locate", None)
        if locate is None:
            locate = lambda gid: (0, gid)
        return cls(quotients, locate)

    def lookup(self, gid: int):
        """``(shard quotient, row)`` for ``gid``, or ``None`` when its
        shard has no quotient (→ the path scores exhaustively)."""
        shard_no, offset = self._locate(gid)
        quotient = self.quotients[shard_no]
        if quotient is None:
            return None
        row = quotient.row_of.get(offset)
        if row is None:
            return None
        return quotient, row

    @property
    def path_count(self) -> int:
        return sum(len(quotient) for quotient in self.quotients
                   if quotient is not None)

    @property
    def class_count(self) -> int:
        return sum(quotient.class_count for quotient in self.quotients
                   if quotient is not None)

    @property
    def compression_ratio(self) -> float:
        """Stored paths per equality-pattern class (≥ 1.0)."""
        classes = self.class_count
        return self.path_count / classes if classes else 1.0


class QuotientContext:
    """Refine-key machinery for one ``(query path, anchor)`` pair.

    Created by :meth:`QuotientResolver.context` once per cluster and
    shared across that cluster's shard tasks — the key is
    content-defined (classes span shards), so two shards computing the
    key of pattern-equal rows agree.
    """

    __slots__ = ("_lookup", "_ids_match", "_constants", "_features",
                 "members", "reps")

    def __init__(self, lookup, ids_match, constants: tuple):
        self._lookup = lookup
        self._ids_match = ids_match
        self._constants = constants
        #: param id -> frozenset of matched query constants, memoised
        #: across every candidate of the cluster.
        self._features: "dict[int, frozenset]" = {}
        self.members = 0
        self.reps = 0

    def key_of(self, gid: int):
        """The candidate's refine key, or ``None`` when its shard has
        no usable quotient (→ score it exhaustively)."""
        found = self._lookup(gid)
        if found is None:
            return None
        quotient, row = found
        pattern = quotient.patterns[quotient.class_ids[row]]
        features = self._features
        feats = []
        for param in quotient.params[row]:
            feature = features.get(param)
            if feature is None:
                ids_match = self._ids_match
                feature = frozenset(
                    constant for constant in self._constants
                    if ids_match(param, constant))
                features[param] = feature
            feats.append(feature)
        return (pattern.tobytes(), tuple(feats))

    def member_node_ids(self, gid: int, plen: int):
        """The member's own first ``plen`` node label ids (its concrete
        slot fillers — downstream ψ/χ must see real labels, never the
        representative's)."""
        quotient, row = self._lookup(gid)
        return quotient.member_node_ids(row, plen)


class QuotientResolver:
    """The engine-held factory of per-cluster :class:`QuotientContext`.

    Holds what outlives queries: the gid-space quotient view and the
    memoised id matcher (verdicts depend only on the two labels, like
    :func:`~repro.index.columnar.make_id_matcher` documents).
    """

    __slots__ = ("quotients", "_intern", "_ids_match", "_members_total",
                 "_reps_total")

    def __init__(self, index, quotient_index: QuotientIndex, matcher):
        self.quotients = quotient_index
        interner = index.interner
        self._intern = interner.intern
        self._ids_match = make_id_matcher(interner, matcher)
        registry = get_registry()
        self._members_total = registry.counter(
            "sama_quotient_members_total",
            "Candidates scored by copying their class representative")
        self._reps_total = registry.counter(
            "sama_quotient_reps_total",
            "Class representatives aligned exactly on behalf of a "
            "refined equivalence class")

    def context(self, query_path, trim_to_anchor: bool,
                anchor) -> QuotientContext:
        """A fresh refine-key context for one cluster.

        The constant set is everything the scan may compare a data
        label against: the query path's constant nodes and edges, plus
        the trim anchor (an anchor is always one of the path's
        constants, but intern it explicitly rather than assume so).
        """
        intern = self._intern
        constants = set()
        for term in query_path.nodes:
            if not isinstance(term, Variable):
                constants.add(intern(term))
        for term in query_path.edges:
            if not isinstance(term, Variable):
                constants.add(intern(term))
        if trim_to_anchor and anchor is not None:
            constants.add(intern(anchor))
        return QuotientContext(self.quotients.lookup, self._ids_match,
                               tuple(sorted(constants)))

    def observe(self, context: QuotientContext) -> None:
        """Fold one finished cluster's savings into the counters."""
        if context.members:
            self._members_total.inc(context.members)
        if context.reps:
            self._reps_total.inc(context.reps)
