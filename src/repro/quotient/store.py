"""Per-shard quotient files: build, persist, validate, invalidate.

Each index directory (or each ``shard-NN/`` of a sharded index) may
carry a ``quotient.bin`` collapsing its stored paths into
**label-equality-pattern equivalence classes** — the bisimulation
quotient of ROADMAP item 3, specialised to the path space λ actually
sees.

Two paths are in the same class when their interleaved label sequences
``(n0, e0, n1, e1, ..., n_{k-1})`` are *equal up to a renaming of
labels*: walk the sequence assigning each distinct label id the next
slot number on first occurrence (nodes and edges share one namespace,
because one query variable can bind at both positions), and compare
the resulting slot sequences.  ``Student17 memberOf Dept3`` and
``Student42 memberOf Dept9`` collapse into the class ``0 1 2``;
``X knows X`` (``0 1 0``) stays apart from ``X knows Y`` (``0 1 2``).

Why this is the right granularity: λ never does arithmetic on labels —
it only *compares* them (against query constants through the matcher,
and against each other at repeated-variable positions).  Class members
therefore differ, as far as any query is concerned, only in *which*
concrete ids fill the slots.  At query time the resolver
(:mod:`repro.quotient.resolve`) refines each class by the matcher
verdicts of its slot fillers against the query's constants; paths that
agree on that refinement provably receive bit-identical λ scores and
trim lengths, so the engine scores one representative and copies the
result to the rest (see ``resolve.py`` for the full argument).

On disk, one class record per distinct slot pattern plus one row per
stored path carrying its class id and its concrete slot fillers
(``params``) — the multiplicity of a class is its row count and the
compact gid list is the rows pointing at it.  The file is written via
:func:`repro.storage.atomic.atomic_write_bytes` and carries the shard
**epoch** at build time, exactly like ``sketch.bin``: loaders treat a
missing, corrupt, or stale-epoch file as *no quotient* and fall back
to scoring every path exhaustively, and
:func:`invalidate_quotients` deletes the files eagerly after rewrites
that renumber offsets (compaction, resharding).
"""

from __future__ import annotations

import os
import struct
from array import array

from ..sketch.store import _shard_surfaces
from ..storage.atomic import atomic_write_bytes

#: File name of a shard's persisted quotient, next to its paths.log.
QUOTIENT_FILE = "quotient.bin"

_MAGIC = b"QTN1"
_VERSION = 1
#: magic, version, reserved, epoch, class count, row count
_HEADER = struct.Struct("<4sHHqQQ")
#: per class: interleaved pattern length (2 * path length - 1)
_CLASS = struct.Struct("<H")
#: per row: storage offset, class id
_ROW = struct.Struct("<QI")


class QuotientFormatError(Exception):
    """A quotient file that is not a valid QTN1 artifact."""


def quotient_path(directory: str) -> str:
    return os.path.join(directory, QUOTIENT_FILE)


def _pattern_of(sequence) -> "tuple[array, array]":
    """Canonical ``(pattern, params)`` of one interleaved id sequence.

    ``pattern[j]`` is the first-occurrence slot of the label at
    position ``j``; ``params`` lists the distinct ids in slot order,
    so ``params[pattern[j]]`` recovers the original sequence.
    """
    slots: "dict[int, int]" = {}
    pattern = array("H")
    params = array("i")
    for label_id in sequence:
        slot = slots.get(label_id)
        if slot is None:
            slot = slots[label_id] = len(params)
            params.append(label_id)
        pattern.append(slot)
    return pattern, params


class ShardQuotient:
    """One shard's equality-pattern classes and per-path slot fillers.

    Rows are addressed by ``row_of[storage offset]`` — the same
    offset space shard tasks and sketches use.  ``patterns[c]`` is the
    interleaved slot sequence of class ``c``; ``params[r]`` the row's
    distinct label ids in slot order; ``class_ids[r]`` its class.
    """

    __slots__ = ("epoch", "offsets", "class_ids", "params", "patterns",
                 "row_of")

    def __init__(self, epoch: int, offsets, class_ids, params, patterns):
        self.epoch = epoch
        self.offsets = offsets
        self.class_ids = class_ids
        self.params = params
        self.patterns = patterns
        self.row_of = {offset: row for row, offset in enumerate(offsets)}

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def class_count(self) -> int:
        return len(self.patterns)

    def member_node_ids(self, row: int, plen: int) -> array:
        """The first ``plen`` node label ids of row ``row``,
        reconstructed from its class pattern and slot fillers (node
        ``i`` sits at interleaved position ``2 * i``)."""
        pattern = self.patterns[self.class_ids[row]]
        params = self.params[row]
        return array("i", (params[pattern[2 * i]] for i in range(plen)))

    @classmethod
    def from_view(cls, view, offsets, epoch: int) -> "ShardQuotient":
        """Quotient the rows of a built
        :class:`~repro.index.columnar.ColumnarView` (``offsets`` in the
        view's row order) — shared by the offline build and the procs
        workers, which derive their classes from the in-RAM view."""
        node_ids = view.node_ids
        node_offs = view.node_offs
        edge_ids = view.edge_ids
        class_of: "dict[bytes, int]" = {}
        patterns: "list[array]" = []
        class_ids = array("I")
        params_list: "list[array]" = []
        for row in range(len(offsets)):
            start = node_offs[row]
            plen = node_offs[row + 1] - start
            edge_start = start - row
            sequence = []
            for position in range(plen):
                sequence.append(node_ids[start + position])
                if position + 1 < plen:
                    sequence.append(edge_ids[edge_start + position])
            pattern, params = _pattern_of(sequence)
            key = pattern.tobytes()
            class_id = class_of.get(key)
            if class_id is None:
                class_id = class_of[key] = len(patterns)
                patterns.append(pattern)
            class_ids.append(class_id)
            params_list.append(params)
        return cls(epoch, list(offsets), class_ids, params_list, patterns)

    @classmethod
    def from_index(cls, index, epoch: int) -> "ShardQuotient":
        """Quotient every stored path of one open (shard) index."""
        from ..index.columnar import ColumnarView

        view = ColumnarView.build(index)
        return cls.from_view(view, list(index.all_offsets()), epoch)

    def save(self, path: str) -> None:
        chunks = [_HEADER.pack(_MAGIC, _VERSION, 0, self.epoch,
                               len(self.patterns), len(self.offsets))]
        for pattern in self.patterns:
            chunks.append(_CLASS.pack(len(pattern)))
            chunks.append(pattern.tobytes())
        for row, offset in enumerate(self.offsets):
            params = self.params[row]
            chunks.append(_ROW.pack(offset, self.class_ids[row]))
            chunks.append(params.tobytes())
        atomic_write_bytes(path, b"".join(chunks))

    @classmethod
    def load(cls, path: str) -> "ShardQuotient":
        """Parse a quotient file; raises :class:`QuotientFormatError`
        when the bytes are not a well-formed QTN1 artifact (the caller
        maps that, like a missing file, to exhaustive scoring)."""
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < _HEADER.size:
            raise QuotientFormatError(f"{path}: truncated header")
        magic, version, _reserved, epoch, classes, rows = \
            _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise QuotientFormatError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise QuotientFormatError(
                f"{path}: unsupported version {version}")
        cursor = _HEADER.size
        patterns: "list[array]" = []
        #: Distinct slots per class — how many params each row carries.
        widths = array("H")
        for _ in range(classes):
            if cursor + _CLASS.size > len(blob):
                raise QuotientFormatError(f"{path}: truncated class header")
            (length,) = _CLASS.unpack_from(blob, cursor)
            cursor += _CLASS.size
            if not length % 2:
                raise QuotientFormatError(
                    f"{path}: even pattern length {length}")
            if cursor + 2 * length > len(blob):
                raise QuotientFormatError(f"{path}: truncated class body")
            pattern = array("H")
            pattern.frombytes(blob[cursor:cursor + 2 * length])
            cursor += 2 * length
            width = max(pattern) + 1
            if sorted(set(pattern)) != list(range(width)):
                raise QuotientFormatError(
                    f"{path}: non-canonical slot pattern")
            patterns.append(pattern)
            widths.append(width)
        offsets = []
        class_ids = array("I")
        params_list: "list[array]" = []
        for _ in range(rows):
            if cursor + _ROW.size > len(blob):
                raise QuotientFormatError(f"{path}: truncated row header")
            offset, class_id = _ROW.unpack_from(blob, cursor)
            cursor += _ROW.size
            if class_id >= classes:
                raise QuotientFormatError(
                    f"{path}: row class {class_id} out of range")
            width = widths[class_id]
            if cursor + 4 * width > len(blob):
                raise QuotientFormatError(f"{path}: truncated row body")
            params = array("i")
            params.frombytes(blob[cursor:cursor + 4 * width])
            cursor += 4 * width
            offsets.append(offset)
            class_ids.append(class_id)
            params_list.append(params)
        if cursor != len(blob):
            raise QuotientFormatError(f"{path}: trailing bytes after rows")
        return cls(epoch, offsets, class_ids, params_list, patterns)


def build_quotients(index) -> "list[str]":
    """Build and persist a quotient file per (healthy) shard of
    ``index``; returns the written paths.  Works for a plain
    :class:`~repro.index.pathindex.PathIndex` and a
    :class:`~repro.index.sharded.ShardedIndex`; each file is keyed by
    its shard's current epoch so later compaction or incremental
    rounds orphan it."""
    written = []
    for directory, shard_no, epoch in _shard_surfaces(index):
        source = index if shard_no is None else index.shards[shard_no]
        quotient = ShardQuotient.from_index(source, epoch)
        target = quotient_path(directory)
        quotient.save(target)
        written.append(target)
    return written


def load_shard_quotient(directory: str, expected_epoch: int,
                        ) -> "ShardQuotient | None":
    """Load one shard's quotient, or ``None`` when it is absent,
    corrupt, or built against a different epoch (stale ⇒ score every
    path exhaustively)."""
    path = quotient_path(directory)
    try:
        quotient = ShardQuotient.load(path)
    except FileNotFoundError:
        return None
    except (QuotientFormatError, OSError):
        return None
    if quotient.epoch != expected_epoch:
        return None
    return quotient


def load_quotients(index) -> "list[ShardQuotient | None] | None":
    """Load every shard quotient of ``index``, aligned with its shards.

    Returns ``None`` when no shard has a usable quotient at all;
    otherwise a list with ``None`` holes for shards that must score
    exhaustively (quarantined, stale, missing)."""
    from ..index.sharded import ShardedIndex

    if isinstance(index, ShardedIndex):
        slots: "list[ShardQuotient | None]" = [None] * index.shard_count
        for directory, shard_no, epoch in _shard_surfaces(index):
            slots[shard_no] = load_shard_quotient(directory, epoch)
    else:
        slots = [None]
        for directory, _shard_no, epoch in _shard_surfaces(index):
            slots[0] = load_shard_quotient(directory, epoch)
    if not any(slot is not None for slot in slots):
        return None
    return slots


def invalidate_quotients(directory: str) -> int:
    """Delete persisted quotients under ``directory`` (top level and
    any ``shard-NN/``); returns how many files were removed.  Called
    after rewrites that renumber offsets — compaction, resharding —
    where waiting for the epoch check would leave dead bytes on
    disk."""
    removed = 0
    candidates = [quotient_path(directory)]
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        entries = []
    for entry in entries:
        if entry.startswith("shard-"):
            candidates.append(quotient_path(os.path.join(directory, entry)))
    for path in candidates:
        try:
            os.remove(path)
        except FileNotFoundError:
            continue
        except OSError:
            continue
        removed += 1
    return removed
