"""RDF substrate: terms, triples, graphs, and parsers.

This package implements everything the paper assumes from the RDF
stack: the labelled-directed-graph data model (Definitions 1–2), the
N-Triples and Turtle wire formats, and a SPARQL basic-graph-pattern
front-end that turns query text into :class:`QueryGraph` instances.
"""

from .graph import DataGraph, Edge, QueryGraph
from .namespaces import FOAF, GOV, Namespace, OWL, RDF, RDFS, UB, XSD
from .terms import (BlankNode, Literal, Term, URI, Variable, coerce_term)
from .triples import Triple, triples_of
from .sparql import SelectQuery, SparqlSyntaxError, parse_select, query_graph

__all__ = [
    "BlankNode", "DataGraph", "Edge", "FOAF", "GOV", "Literal", "Namespace",
    "OWL", "QueryGraph", "RDF", "RDFS", "SelectQuery", "SparqlSyntaxError",
    "Term", "Triple", "UB", "URI", "Variable", "XSD", "coerce_term",
    "parse_select", "query_graph", "triples_of",
]
