"""A small shared tokenizer for the SPARQL and Turtle front-ends.

Produces a flat token stream; the grammar lives in the parsers.  Tokens
carry their source position for error messages.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

# Token kinds
IRI = "IRI"                # <...>
PNAME = "PNAME"            # prefix:local or prefix:
VAR = "VAR"                # ?name or $name
STRING = "STRING"          # "..." with escapes resolved
LANGTAG = "LANGTAG"        # @en
DTYPE_SEP = "DTYPE_SEP"    # ^^
NUMBER = "NUMBER"          # 42, 3.14, -1
KEYWORD = "KEYWORD"        # bare words: SELECT, WHERE, PREFIX, a, true...
PUNCT = "PUNCT"            # { } ( ) . ; , *
EOF = "EOF"

_PUNCT_CHARS = "{}().;,*[]"

_STRING_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int

    def __str__(self):
        return f"{self.kind}({self.value!r}) at {self.line}:{self.column}"


class LexError(ValueError):
    """Raised on characters the tokenizer cannot interpret.

    Carries the 1-based source position when known, so parsers can
    re-raise with precise line/column context.
    """

    def __init__(self, message: str, line: "int | None" = None,
                 column: "int | None" = None):
        super().__init__(message)
        self.line = line
        self.column = column


def tokenize(text: str) -> Iterator[Token]:
    """Tokenize SPARQL/Turtle source into a flat token stream."""
    line = 1
    column = 1
    pos = 0
    length = len(text)

    def advance(count: int = 1) -> None:
        nonlocal pos, line, column
        for _ in range(count):
            if pos < length and text[pos] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            pos += 1

    while pos < length:
        char = text[pos]
        if char in " \t\r\n":
            advance()
            continue
        if char == "#":
            while pos < length and text[pos] != "\n":
                advance()
            continue
        start_line, start_col = line, column
        if char == "<":
            end = text.find(">", pos + 1)
            if end == -1:
                raise LexError(f"unterminated IRI at {start_line}:{start_col}",
                               start_line, start_col)
            value = text[pos + 1:end]
            advance(end - pos + 1)
            yield Token(IRI, value, start_line, start_col)
            continue
        if char in "?$":
            end = pos + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == pos + 1:
                raise LexError(
                    f"empty variable name at {start_line}:{start_col}",
                    start_line, start_col)
            value = text[pos + 1:end]
            advance(end - pos)
            yield Token(VAR, value, start_line, start_col)
            continue
        if char in "\"'":
            try:
                value, consumed = _read_string(text, pos)
            except LexError as exc:
                if exc.line is None:
                    raise LexError(str(exc), start_line, start_col) from None
                raise
            advance(consumed)
            yield Token(STRING, value, start_line, start_col)
            continue
        if char == "@":
            end = pos + 1
            while end < length and (text[end].isalnum() or text[end] == "-"):
                end += 1
            value = text[pos + 1:end]
            advance(end - pos)
            # @prefix / @base are Turtle keywords, not language tags.
            if value in ("prefix", "base"):
                yield Token(KEYWORD, "@" + value, start_line, start_col)
            else:
                yield Token(LANGTAG, value, start_line, start_col)
            continue
        if text.startswith("^^", pos):
            advance(2)
            yield Token(DTYPE_SEP, "^^", start_line, start_col)
            continue
        if char in _PUNCT_CHARS:
            # Disambiguate '.' as punctuation vs decimal point: a '.'
            # directly followed by a digit belongs to a number only when
            # preceded by digits, which the NUMBER branch consumes first.
            advance()
            yield Token(PUNCT, char, start_line, start_col)
            continue
        if char.isdigit() or (char == "-" and pos + 1 < length
                              and text[pos + 1].isdigit()):
            end = pos + 1
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot
                                        and end + 1 < length
                                        and text[end + 1].isdigit())):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            value = text[pos:end]
            advance(end - pos)
            yield Token(NUMBER, value, start_line, start_col)
            continue
        if char.isalpha() or char == "_":
            end = pos + 1
            while end < length and (text[end].isalnum() or text[end] in "_-."):
                end += 1
            word = text[pos:end]
            # Trailing dots are statement terminators, not name parts.
            while word.endswith("."):
                word = word[:-1]
                end -= 1
            advance(end - pos)
            if end < length and text[end] == ":":
                # prefixed name: prefix ':' local
                advance()  # ':'
                local_end = pos
                while local_end < length and (text[local_end].isalnum()
                                              or text[local_end] in "_-."):
                    local_end += 1
                local = text[pos:local_end]
                while local.endswith("."):
                    local = local[:-1]
                    local_end -= 1
                advance(local_end - pos)
                yield Token(PNAME, f"{word}:{local}", start_line, start_col)
            else:
                yield Token(KEYWORD, word, start_line, start_col)
            continue
        if char == ":":
            # default-prefix name  :local
            advance()
            local_end = pos
            while local_end < length and (text[local_end].isalnum()
                                          or text[local_end] in "_-."):
                local_end += 1
            local = text[pos:local_end]
            while local.endswith("."):
                local = local[:-1]
                local_end -= 1
            advance(local_end - pos)
            yield Token(PNAME, f":{local}", start_line, start_col)
            continue
        raise LexError(
            f"unexpected character {char!r} at {start_line}:{start_col}",
            start_line, start_col)
    yield Token(EOF, "", line, column)


def _read_string(text: str, pos: int) -> tuple[str, int]:
    """Read a quoted string starting at ``pos``; returns (value, chars)."""
    quote = text[pos]
    out = []
    cursor = pos + 1
    while cursor < len(text):
        char = text[cursor]
        if char == quote:
            return "".join(out), cursor - pos + 1
        if char == "\\":
            cursor += 1
            if cursor >= len(text):
                break
            esc = text[cursor]
            if esc in _STRING_ESCAPES:
                out.append(_STRING_ESCAPES[esc])
                cursor += 1
                continue
            if esc in "uU":
                width = 4 if esc == "u" else 8
                digits = text[cursor + 1:cursor + 1 + width]
                if len(digits) != width:
                    raise LexError("truncated unicode escape in string")
                out.append(chr(int(digits, 16)))
                cursor += 1 + width
                continue
            raise LexError(f"unknown string escape \\{esc}")
        out.append(char)
        cursor += 1
    raise LexError("unterminated string literal")
