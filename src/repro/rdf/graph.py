"""Labelled directed graphs over RDF terms (Definitions 1 and 2).

A :class:`DataGraph` is the quadruple ``<N, E, LN, LE>`` of the paper: a
set of nodes, a set of directed edges, and labelling functions mapping
nodes to ``U ∪ L`` and edges to ``U``.  Nodes carry integer identities
separate from their labels because an RDF graph rendered as a picture
(e.g. Fig. 1 of the paper, with two distinct ``Term 10/21/94`` nodes)
may label several nodes identically.

A :class:`QueryGraph` is a data graph whose labels may additionally be
variables (Definition 2).

Construction is triple-oriented: :meth:`DataGraph.add_triple` merges
nodes by label (standard RDF semantics — one node per URI), while
:meth:`DataGraph.add_node` always mints a fresh node for callers that
need label-duplicated nodes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from .terms import Literal, Term, URI, Variable, coerce_term
from .triples import Triple


class Edge(NamedTuple):
    """A directed labelled edge between two node identifiers."""

    src: int
    label: Term
    dst: int


class DataGraph:
    """A labelled directed graph ``G = <N, E, LN, LE>``.

    Nodes are integer identifiers; ``label_of`` realises the labelling
    function ``LN``.  Edges are ``(src, label, dst)`` triples of ids and
    an edge label, realising ``E`` and ``LE`` together.  Parallel edges
    with distinct labels are allowed; a duplicate ``(src, label, dst)``
    is ignored (RDF set semantics).
    """

    #: Class of graph — used in error messages and by ``is_query``.
    _allow_variables = False

    def __init__(self, name: str = ""):
        self.name = name
        self._labels: dict[int, Term] = {}
        self._out: dict[int, list[tuple[Term, int]]] = {}
        self._in: dict[int, list[tuple[Term, int]]] = {}
        self._edge_set: set[Edge] = set()
        # One node per (merged) label; literals can opt out of merging.
        self._node_by_label: dict[Term, int] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, label: "Term | str") -> int:
        """Mint a fresh node with ``label`` and return its identifier.

        Unlike :meth:`node_for`, this never reuses an existing node, so
        it can create several nodes sharing one label.
        """
        label = coerce_term(label)
        self._check_label(label, "node")
        node = self._next_id
        self._next_id += 1
        self._labels[node] = label
        self._out[node] = []
        self._in[node] = []
        # First node with a label becomes the canonical one for merging.
        self._node_by_label.setdefault(label, node)
        return node

    def node_for(self, label: "Term | str") -> int:
        """Return the node labelled ``label``, creating it if absent.

        This is the merging entry point used by :meth:`add_triple`: all
        triples mentioning one URI resolve to one node.
        """
        label = coerce_term(label)
        existing = self._node_by_label.get(label)
        if existing is not None:
            return existing
        return self.add_node(label)

    def add_edge(self, src: int, label: "Term | str", dst: int) -> Edge:
        """Add the directed edge ``src --label--> dst`` (idempotent)."""
        label = coerce_term(label)
        self._check_label(label, "edge")
        if isinstance(label, Literal):
            raise ValueError("edge labels must be URIs (ΣE = U), not literals")
        for node in (src, dst):
            if node not in self._labels:
                raise KeyError(f"unknown node id {node}")
        edge = Edge(src, label, dst)
        if edge not in self._edge_set:
            self._edge_set.add(edge)
            self._out[src].append((label, dst))
            self._in[dst].append((label, src))
        return edge

    def add_triple(self, subject, predicate, object) -> Edge:
        """Add one RDF triple, merging subject/object nodes by label."""
        triple = Triple.of(subject, predicate, object)
        src = self.node_for(triple.subject)
        dst = self.node_for(triple.object)
        return self.add_edge(src, triple.predicate, dst)

    def add_triples(self, rows: Iterable) -> None:
        """Add many triples; each row is a ``Triple`` or a 3-tuple."""
        for row in rows:
            self.add_triple(*row)

    @classmethod
    def from_triples(cls, rows: Iterable, name: str = "") -> "DataGraph":
        """Build a graph from an iterable of triples or 3-tuples."""
        graph = cls(name=name)
        graph.add_triples(rows)
        return graph

    def _check_label(self, label: Term, kind: str) -> None:
        if isinstance(label, Variable) and not self._allow_variables:
            raise ValueError(
                f"variables are not allowed as {kind} labels in a data graph; "
                f"use QueryGraph for {label!r}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def is_query(self) -> bool:
        """True for :class:`QueryGraph` instances."""
        return self._allow_variables

    def nodes(self) -> Iterator[int]:
        """Iterate over node identifiers."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in insertion order per source node."""
        for src, adjacency in self._out.items():
            for label, dst in adjacency:
                yield Edge(src, label, dst)

    def triples(self) -> Iterator[Triple]:
        """Iterate over the graph as label-level triples."""
        for edge in self.edges():
            yield Triple(self._labels[edge.src], edge.label, self._labels[edge.dst])

    def label_of(self, node: int) -> Term:
        """The labelling function ``LN``."""
        return self._labels[node]

    def out_edges(self, node: int) -> list[tuple[Term, int]]:
        """Outgoing ``(edge label, destination)`` pairs of ``node``."""
        return self._out[node]

    def in_edges(self, node: int) -> list[tuple[Term, int]]:
        """Incoming ``(edge label, source)`` pairs of ``node``."""
        return self._in[node]

    def out_degree(self, node: int) -> int:
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        return len(self._in[node])

    def node_count(self) -> int:
        return len(self._labels)

    def edge_count(self) -> int:
        return len(self._edge_set)

    def __len__(self) -> int:
        return self.edge_count()

    def __contains__(self, item) -> bool:
        if isinstance(item, Edge):
            return item in self._edge_set
        if isinstance(item, int):
            return item in self._labels
        if isinstance(item, Triple):
            return any(t == item for t in self.triples())
        if isinstance(item, Term):
            return item in self._node_by_label
        return False

    def nodes_labelled(self, label: "Term | str") -> list[int]:
        """All node ids carrying ``label`` (possibly several)."""
        label = coerce_term(label)
        return [n for n, l in self._labels.items() if l == label]

    def node_labels(self) -> set[Term]:
        """The set of labels in use on nodes."""
        return set(self._labels.values())

    def edge_labels(self) -> set[Term]:
        """The set of labels in use on edges."""
        return {edge.label for edge in self._edge_set}

    def variables(self) -> set[Variable]:
        """All variables used as node or edge labels (empty for data)."""
        found = {l for l in self._labels.values() if isinstance(l, Variable)}
        found.update(e.label for e in self._edge_set if isinstance(e.label, Variable))
        return found

    # ------------------------------------------------------------------
    # Topology used by path extraction (§3.2)
    # ------------------------------------------------------------------

    def sources(self) -> list[int]:
        """Nodes with no incoming edges, in id order."""
        return sorted(n for n in self._labels if not self._in[n])

    def sinks(self) -> list[int]:
        """Nodes with no outgoing edges, in id order."""
        return sorted(n for n in self._labels if not self._out[n])

    def hubs(self) -> list[int]:
        """Nodes maximising ``out-degree − in-degree`` (§3.2 hub rule).

        Used to seed path extraction when the graph has no sources.
        Nodes with no outgoing edges can never start a path and are
        excluded.
        """
        candidates = [n for n in self._labels if self._out[n]]
        if not candidates:
            return []
        best = max(len(self._out[n]) - len(self._in[n]) for n in candidates)
        return sorted(n for n in candidates
                      if len(self._out[n]) - len(self._in[n]) == best)

    def path_roots(self) -> list[int]:
        """Sources, or hubs when the graph is source-free."""
        roots = self.sources()
        return roots if roots else self.hubs()

    # ------------------------------------------------------------------
    # Subgraphs and copies
    # ------------------------------------------------------------------

    def subgraph(self, node_ids: Iterable[int]) -> "DataGraph":
        """The induced subgraph over ``node_ids`` (same class as self)."""
        keep = set(node_ids)
        sub = type(self)(name=f"{self.name}/sub")
        mapping = {}
        for node in sorted(keep):
            mapping[node] = sub.add_node(self._labels[node])
        for edge in self._edge_set:
            if edge.src in keep and edge.dst in keep:
                sub.add_edge(mapping[edge.src], edge.label, mapping[edge.dst])
        return sub

    def copy(self) -> "DataGraph":
        """A structural copy preserving node identifiers.

        Node ids are dense integers minted from 0, so re-adding the
        labels in id order reproduces the same identifiers.
        """
        clone = type(self)(name=self.name)
        for node in sorted(self._labels):
            clone.add_node(self._labels[node])
        for edge in self._edge_set:
            clone.add_edge(edge.src, edge.label, edge.dst)
        return clone

    def __repr__(self):
        kind = type(self).__name__
        tag = f" {self.name!r}" if self.name else ""
        return (f"<{kind}{tag}: {self.node_count()} nodes, "
                f"{self.edge_count()} edges>")


class QueryGraph(DataGraph):
    """A data graph whose node and edge labels may be variables.

    This realises Definition 2: ``ΣN = U ∪ L ∪ VAR`` and
    ``ΣE = U ∪ VAR``.
    """

    _allow_variables = True

    def _check_label(self, label: Term, kind: str) -> None:
        # Variables are fine everywhere in a query graph.
        return

    def constants(self) -> set[Term]:
        """All non-variable node labels (anchors for clustering)."""
        return {l for l in self._labels.values() if not l.is_variable}
