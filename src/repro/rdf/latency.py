"""An access-accounted view of a data graph (simulated disk residency).

The paper's experimental premise is that "the graph cannot fit in
memory and ... can only be stored on disk" (§6.1): Sama's advantage in
Fig. 6 comes from reading its path index instead of traversing the
graph at query time.  Our reimplemented baselines hold the graph in
memory, which would hide exactly the cost the figure measures — so the
timing harness hands them this wrapper instead: every adjacency access
(the unit a disk-resident graph store pays for) is counted and,
optionally, charged a simulated latency.

Accounting can be suspended (``with graph.offline():``) for the
offline phases — DOGMA builds its distance index ahead of time, like
Sama builds its path index — so only query-time traversal is billed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .graph import DataGraph


class AccessAccountedGraph:
    """Duck-typed :class:`DataGraph` view with adjacency accounting.

    Only the traversal surface (``out_edges`` / ``in_edges``) is
    charged; pure metadata (labels, node enumeration) is free, like a
    catalogue held in memory by any reasonable store.
    """

    def __init__(self, graph: DataGraph, access_latency: float = 0.0):
        self._graph = graph
        self.access_latency = access_latency
        self.accesses = 0
        self._accounting = True
        self._latency_debt = 0.0

    # -- charged traversal -----------------------------------------------

    def _charge(self) -> None:
        if not self._accounting:
            return
        self.accesses += 1
        if self.access_latency:
            # time.sleep cannot express microseconds (the OS rounds up
            # to ~60-100 µs), so latency accumulates as debt and is
            # paid in millisecond instalments — totals stay accurate.
            self._latency_debt += self.access_latency
            if self._latency_debt >= 0.001:
                time.sleep(self._latency_debt)
                self._latency_debt = 0.0

    def out_edges(self, node: int):
        self._charge()
        return self._graph.out_edges(node)

    def in_edges(self, node: int):
        self._charge()
        return self._graph.in_edges(node)

    # -- free metadata -----------------------------------------------------

    def nodes(self):
        return self._graph.nodes()

    def edges(self):
        return self._graph.edges()

    def label_of(self, node: int):
        return self._graph.label_of(node)

    def node_count(self) -> int:
        return self._graph.node_count()

    def edge_count(self) -> int:
        return self._graph.edge_count()

    def out_degree(self, node: int) -> int:
        return self._graph.out_degree(node)

    def in_degree(self, node: int) -> int:
        return self._graph.in_degree(node)

    def sources(self):
        return self._graph.sources()

    def sinks(self):
        return self._graph.sinks()

    def hubs(self):
        return self._graph.hubs()

    def path_roots(self):
        return self._graph.path_roots()

    def node_for(self, label):
        return self._graph.node_for(label)

    def nodes_labelled(self, label):
        return self._graph.nodes_labelled(label)

    def triples(self):
        return self._graph.triples()

    @property
    def name(self):
        return self._graph.name

    def __repr__(self):
        return (f"<AccessAccountedGraph over {self._graph!r}: "
                f"{self.accesses} accesses>")

    # -- accounting control --------------------------------------------------

    @contextmanager
    def offline(self):
        """Suspend accounting (index construction, ground truth, ...)."""
        previous = self._accounting
        self._accounting = False
        try:
            yield self
        finally:
            self._accounting = previous

    def reset(self) -> None:
        self.accesses = 0
        self._latency_debt = 0.0
