"""Namespace helpers for building URIs tersely.

A :class:`Namespace` is a URI prefix that mints full :class:`~repro.rdf.terms.URI`
terms via attribute or item access::

    GOV = Namespace("http://example.org/gov/")
    GOV.sponsor            # URI('http://example.org/gov/sponsor')
    GOV["Carla Bunes"]     # URI('http://example.org/gov/Carla%20Bunes')
"""

from __future__ import annotations

from urllib.parse import quote

from .terms import URI


class Namespace:
    """A URI prefix that can be extended into full URIs."""

    __slots__ = ("prefix",)

    def __init__(self, prefix: str):
        self.prefix = prefix

    def term(self, local: str) -> URI:
        """Mint the URI for ``local`` under this namespace.

        Spaces and other reserved characters in ``local`` are
        percent-encoded so the result is a syntactically valid IRI.
        """
        return URI(self.prefix + quote(local, safe=""))

    def __getattr__(self, local: str) -> URI:
        if local.startswith("__"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> URI:
        return self.term(local)

    def __contains__(self, uri) -> bool:
        return isinstance(uri, URI) and uri.value.startswith(self.prefix)

    def __repr__(self):
        return f"Namespace({self.prefix!r})"

    def __eq__(self, other):
        return isinstance(other, Namespace) and self.prefix == other.prefix

    def __hash__(self):
        return hash(("Namespace", self.prefix))


#: Standard RDF namespaces used by parsers and dataset generators.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: The namespace used for the GovTrack running example of the paper (Fig. 1).
GOV = Namespace("http://example.org/govtrack/")

#: LUBM's university benchmark ontology namespace.
UB = Namespace("http://swat.cse.lehigh.edu/onto/univ-bench.owl#")
