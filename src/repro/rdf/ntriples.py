"""N-Triples parsing and serialisation (W3C line-based RDF syntax).

Implemented from scratch (no rdflib in this environment).  The parser
covers the full N-Triples grammar used by the benchmark datasets:
IRIREF, blank node labels, plain / language-tagged / datatyped literals,
``\\u``/``\\U`` escapes, comments and blank lines.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, TextIO

from .terms import BlankNode, Literal, Term, URI
from .triples import Triple


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input; carries the line number."""

    def __init__(self, message: str, lineno: int):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_STRING_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


class _LineParser:
    """A cursor over one N-Triples line."""

    def __init__(self, line: str, lineno: int):
        self.line = line
        self.pos = 0
        self.lineno = lineno

    def error(self, message: str) -> NTriplesError:
        return NTriplesError(f"{message} (at column {self.pos})", self.lineno)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t\r\n":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.line)

    def peek(self) -> str:
        return self.line[self.pos] if self.pos < len(self.line) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    # -- term productions ------------------------------------------------

    def parse_subject(self) -> Term:
        char = self.peek()
        if char == "<":
            return self.parse_iri()
        if char == "_":
            return self.parse_blank()
        raise self.error("subject must be an IRI or blank node")

    def parse_predicate(self) -> URI:
        if self.peek() != "<":
            raise self.error("predicate must be an IRI")
        return self.parse_iri()

    def parse_object(self) -> Term:
        char = self.peek()
        if char == "<":
            return self.parse_iri()
        if char == "_":
            return self.parse_blank()
        if char == '"':
            return self.parse_literal()
        raise self.error("object must be an IRI, blank node or literal")

    def parse_iri(self) -> URI:
        self.expect("<")
        start = self.pos
        out = []
        while True:
            if self.at_end():
                raise self.error("unterminated IRI")
            char = self.line[self.pos]
            if char == ">":
                self.pos += 1
                return URI("".join(out))
            if char == "\\":
                out.append(self._unicode_escape())
                continue
            if char in ' "{}|^`' or ord(char) <= 0x20:
                raise self.error(f"illegal character {char!r} in IRI "
                                 f"starting at column {start}")
            out.append(char)
            self.pos += 1

    def parse_blank(self) -> BlankNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while (not self.at_end()
               and (self.line[self.pos].isalnum()
                    or self.line[self.pos] in "_-.")):
            self.pos += 1
        label = self.line[start:self.pos].rstrip(".")
        self.pos -= len(self.line[start:self.pos]) - len(label)
        if not label:
            raise self.error("empty blank node label")
        return BlankNode(label)

    def parse_literal(self) -> Literal:
        self.expect('"')
        out = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            char = self.line[self.pos]
            if char == '"':
                self.pos += 1
                break
            if char == "\\":
                self.pos += 1
                if self.at_end():
                    raise self.error("dangling escape")
                esc = self.line[self.pos]
                if esc in _STRING_ESCAPES:
                    out.append(_STRING_ESCAPES[esc])
                    self.pos += 1
                elif esc in "uU":
                    self.pos -= 1
                    out.append(self._unicode_escape())
                else:
                    raise self.error(f"unknown escape \\{esc}")
                continue
            out.append(char)
            self.pos += 1
        value = "".join(out)
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while (not self.at_end()
                   and (self.line[self.pos].isalnum() or self.line[self.pos] == "-")):
                self.pos += 1
            tag = self.line[start:self.pos]
            if not tag:
                raise self.error("empty language tag")
            return Literal(value, language=tag)
        if self.line[self.pos:self.pos + 2] == "^^":
            self.pos += 2
            return Literal(value, datatype=self.parse_iri())
        return Literal(value)

    def _unicode_escape(self) -> str:
        self.expect("\\")
        kind = self.peek()
        if kind not in "uU":
            raise self.error(f"unknown escape \\{kind}")
        self.pos += 1
        width = 4 if kind == "u" else 8
        digits = self.line[self.pos:self.pos + width]
        if len(digits) != width:
            raise self.error(f"truncated \\{kind} escape")
        try:
            code = int(digits, 16)
        except ValueError:
            raise self.error(f"invalid \\{kind} escape {digits!r}") from None
        self.pos += width
        return chr(code)


def parse_term(text: str) -> Term:
    """Parse a single term from its N-Triples / SPARQL surface form.

    Accepts ``<iri>``, ``_:label``, quoted literals (with optional
    language tag or datatype) and ``?variable`` — the forms produced by
    ``Term.n3()`` — so it is the inverse used when label maps are
    loaded back from disk.
    """
    from .terms import Variable

    stripped = text.strip()
    if stripped.startswith("?"):
        return Variable(stripped)
    parser = _LineParser(stripped, 1)
    if stripped.startswith("<"):
        term = parser.parse_iri()
    elif stripped.startswith("_"):
        term = parser.parse_blank()
    elif stripped.startswith('"'):
        term = parser.parse_literal()
    else:
        raise NTriplesError(f"cannot parse term {text!r}", 1)
    parser.skip_whitespace()
    if not parser.at_end():
        raise NTriplesError(f"trailing content in term {text!r}", 1)
    return term


def parse_line(line: str, lineno: int = 1) -> Triple | None:
    """Parse one N-Triples line; returns ``None`` for blanks/comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parser = _LineParser(line, lineno)
    parser.skip_whitespace()
    subject = parser.parse_subject()
    parser.skip_whitespace()
    predicate = parser.parse_predicate()
    parser.skip_whitespace()
    obj = parser.parse_object()
    parser.skip_whitespace()
    parser.expect(".")
    parser.skip_whitespace()
    if not parser.at_end() and not parser.line[parser.pos:].lstrip().startswith("#"):
        raise parser.error("trailing content after '.'")
    return Triple(subject, predicate, obj)


def parse(source: "str | TextIO") -> Iterator[Triple]:
    """Parse N-Triples from a string or text stream, yielding triples."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    for lineno, line in enumerate(stream, start=1):
        triple = parse_line(line, lineno)
        if triple is not None:
            yield triple


def parse_file(path) -> Iterator[Triple]:
    """Parse an ``.nt`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        yield from parse(handle)


def serialize(triples: Iterable[Triple]) -> str:
    """Serialise triples to an N-Triples document string."""
    return "".join(t.n3() + "\n" for t in triples)


def write_file(triples: Iterable[Triple], path) -> int:
    """Write triples to an ``.nt`` file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3() + "\n")
            count += 1
    return count
