"""A SPARQL basic-graph-pattern front-end producing query graphs.

The paper's workload is "12 queries in SPARQL of different complexities"
(§6.2), all conjunctive basic graph patterns.  This module parses that
subset::

    PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
    SELECT ?x ?y WHERE {
        ?x ub:advisor ?y ;
           ub:takesCourse ?c .
        ?y ub:teacherOf ?c .
        ?c ub:name "Course12" .
    }

Supported: ``PREFIX``/``BASE``, ``SELECT`` with projection or ``*``,
``DISTINCT``/``REDUCED``, ``WHERE`` blocks with ``.``-separated triple
patterns, ``;`` (same subject) and ``,`` (same subject+predicate)
abbreviations, the ``a`` keyword, IRIs, prefixed names, variables,
plain/typed/tagged literals and numbers.  Anything outside the BGP
fragment (OPTIONAL, FILTER, UNION...) raises :class:`SparqlSyntaxError`
— approximate matching subsumes most of what FILTER relaxation would
give, and the paper's engine is BGP-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import _lexer
from ._lexer import Token
from ..resilience.errors import ParseError
from .graph import QueryGraph
from .namespaces import RDF, XSD
from .terms import BlankNode, Literal, Term, URI, Variable
from .triples import Triple

_UNSUPPORTED = {"OPTIONAL", "FILTER", "UNION", "GRAPH", "MINUS", "SERVICE",
                "BIND", "VALUES", "CONSTRUCT", "ASK", "DESCRIBE"}


class SparqlSyntaxError(ParseError):
    """Raised when the query text falls outside the supported fragment.

    A :class:`~repro.resilience.errors.ParseError` (and therefore still
    a ``ValueError``): front-ends can render ``exc.one_line()`` with
    the 1-based line/column when the parser knows it.
    """


def _syntax_error(message: str,
                  token: "Token | None" = None) -> SparqlSyntaxError:
    if token is not None:
        return SparqlSyntaxError(message, line=token.line,
                                 column=token.column)
    return SparqlSyntaxError(message)


@dataclass
class SelectQuery:
    """A parsed ``SELECT`` query: projection + basic graph pattern."""

    variables: list[Variable]
    patterns: list[Triple]
    distinct: bool = False
    prefixes: dict[str, str] = field(default_factory=dict)

    @property
    def select_all(self) -> bool:
        """True when the projection was ``SELECT *``."""
        return not self.variables

    def graph(self, name: str = "") -> QueryGraph:
        """Materialise the BGP as a :class:`QueryGraph` (Definition 2)."""
        query = QueryGraph(name=name)
        for pattern in self.patterns:
            pattern.validate_pattern()
            query.add_triple(*pattern)
        return query

    def all_variables(self) -> set[Variable]:
        """Every variable mentioned in the pattern."""
        found: set[Variable] = set()
        for pattern in self.patterns:
            found.update(pattern.variables())
        return found


class _TokenCursor:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != _lexer.EOF:
            self._pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind != kind:
            return None
        if value is not None and token.value.upper() != value.upper():
            return None
        return self.next()

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value or kind
            raise _syntax_error(f"expected {want}, found {self.peek()}",
                                self.peek())
        return token


class _Parser:
    def __init__(self, text: str):
        try:
            tokens = list(_lexer.tokenize(text))
        except _lexer.LexError as exc:
            raise SparqlSyntaxError(str(exc), line=exc.line,
                                    column=exc.column) from exc
        self.cursor = _TokenCursor(tokens)
        self.prefixes: dict[str, str] = {}
        self.base = ""
        self._blank_counter = 0

    # -- entry -----------------------------------------------------------

    def parse(self) -> SelectQuery:
        self._parse_prologue()
        self.cursor.expect(_lexer.KEYWORD, "SELECT")
        distinct = bool(self.cursor.accept(_lexer.KEYWORD, "DISTINCT")
                        or self.cursor.accept(_lexer.KEYWORD, "REDUCED"))
        variables = self._parse_projection()
        self.cursor.expect(_lexer.KEYWORD, "WHERE")
        patterns = self._parse_group()
        self._parse_trailing_modifiers()
        self.cursor.expect(_lexer.EOF)
        if not patterns:
            raise SparqlSyntaxError("empty WHERE block")
        return SelectQuery(variables=variables, patterns=patterns,
                           distinct=distinct, prefixes=dict(self.prefixes))

    def _parse_prologue(self) -> None:
        while True:
            if self.cursor.accept(_lexer.KEYWORD, "PREFIX"):
                name = self.cursor.expect(_lexer.PNAME).value
                prefix = name.split(":", 1)[0]
                iri = self.cursor.expect(_lexer.IRI).value
                self.prefixes[prefix] = iri
            elif self.cursor.accept(_lexer.KEYWORD, "BASE"):
                self.base = self.cursor.expect(_lexer.IRI).value
            else:
                return

    def _parse_projection(self) -> list[Variable]:
        if self.cursor.accept(_lexer.PUNCT, "*"):
            return []
        variables = []
        while True:
            token = self.cursor.accept(_lexer.VAR)
            if token is None:
                break
            variables.append(Variable(token.value))
        if not variables:
            raise _syntax_error("SELECT needs at least one variable or *",
                                self.cursor.peek())
        return variables

    def _parse_trailing_modifiers(self) -> None:
        # LIMIT / OFFSET are accepted and ignored: the engine's own top-k
        # parameter supersedes them.
        while True:
            if (self.cursor.accept(_lexer.KEYWORD, "LIMIT")
                    or self.cursor.accept(_lexer.KEYWORD, "OFFSET")):
                self.cursor.expect(_lexer.NUMBER)
                continue
            return

    # -- graph pattern -----------------------------------------------------

    def _parse_group(self) -> list[Triple]:
        self.cursor.expect(_lexer.PUNCT, "{")
        patterns: list[Triple] = []
        while not self.cursor.accept(_lexer.PUNCT, "}"):
            token = self.cursor.peek()
            if token.kind == _lexer.KEYWORD and token.value.upper() in _UNSUPPORTED:
                raise _syntax_error(
                    f"{token.value.upper()} is outside the BGP fragment the "
                    f"paper's engine evaluates", token)
            patterns.extend(self._parse_triples_block())
            # Optional '.' separators between blocks.
            while self.cursor.accept(_lexer.PUNCT, "."):
                pass
        return patterns

    def _parse_triples_block(self) -> list[Triple]:
        subject = self._parse_term(position="subject")
        patterns = []
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(position="object")
                patterns.append(Triple(subject, predicate, obj))
                if not self.cursor.accept(_lexer.PUNCT, ","):
                    break
            if not self.cursor.accept(_lexer.PUNCT, ";"):
                break
            # A dangling ';' before '.' or '}' is tolerated (common in
            # hand-written queries).
            nxt = self.cursor.peek()
            if nxt.kind == _lexer.PUNCT and nxt.value in ".}":
                break
        return patterns

    def _parse_verb(self) -> Term:
        if self.cursor.accept(_lexer.KEYWORD, "a"):
            return RDF.type
        token = self.cursor.peek()
        if token.kind in (_lexer.IRI, _lexer.PNAME, _lexer.VAR):
            return self._parse_term(position="predicate")
        raise _syntax_error(f"expected predicate, found {token}", token)

    def _parse_term(self, position: str) -> Term:
        token = self.cursor.next()
        if token.kind == _lexer.IRI:
            return URI(self.base + token.value if self.base
                       and "://" not in token.value else token.value)
        if token.kind == _lexer.PNAME:
            return self._expand_pname(token)
        if token.kind == _lexer.VAR:
            return Variable(token.value)
        if token.kind == _lexer.STRING:
            return self._finish_literal(token.value)
        if token.kind == _lexer.NUMBER:
            datatype = XSD.decimal if "." in token.value else XSD.integer
            return Literal(token.value, datatype=datatype)
        if token.kind == _lexer.KEYWORD and token.value in ("true", "false"):
            return Literal(token.value, datatype=XSD.boolean)
        if token.kind == _lexer.PUNCT and token.value == "[":
            self.cursor.expect(_lexer.PUNCT, "]")
            self._blank_counter += 1
            return BlankNode(f"anon{self._blank_counter}")
        raise _syntax_error(f"expected {position}, found {token}", token)

    def _finish_literal(self, value: str) -> Literal:
        lang = self.cursor.accept(_lexer.LANGTAG)
        if lang:
            return Literal(value, language=lang.value)
        if self.cursor.accept(_lexer.DTYPE_SEP):
            token = self.cursor.next()
            if token.kind == _lexer.IRI:
                return Literal(value, datatype=URI(token.value))
            if token.kind == _lexer.PNAME:
                return Literal(value, datatype=self._expand_pname(token))
            raise _syntax_error(f"expected datatype IRI, found {token}", token)
        return Literal(value)

    def _expand_pname(self, token: Token) -> URI:
        prefix, _, local = token.value.partition(":")
        if prefix not in self.prefixes:
            raise _syntax_error(f"undeclared prefix {prefix!r}: {token}",
                                token)
        return URI(self.prefixes[prefix] + local)


def parse_select(text: str) -> SelectQuery:
    """Parse a SPARQL ``SELECT`` query in the supported BGP fragment."""
    return _Parser(text).parse()


def query_graph(text: str, name: str = "") -> QueryGraph:
    """Parse SPARQL text directly into a :class:`QueryGraph`."""
    return parse_select(text).graph(name=name)
