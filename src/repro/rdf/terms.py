"""RDF term model: URIs, literals, blank nodes, and query variables.

The paper (Definition 1 and 2) works with node labels drawn from
``U ∪ L`` for data graphs and ``U ∪ L ∪ VAR`` for query graphs, and edge
labels drawn from ``U`` (``U ∪ VAR`` for queries).  This module provides
those label alphabets as small immutable term classes.

Terms are hashable value objects: two ``URI`` instances with the same
string compare equal, which is what makes them usable as graph node keys
and index keys throughout the library.
"""

from __future__ import annotations

from typing import Union


class Term:
    """Base class for every RDF term.

    Terms are immutable and compare by ``(type, lexical value)``.  The
    ``value`` slot always carries the lexical form as a ``str``.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"term value must be str, got {type(value).__name__}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, val):  # pragma: no cover - guard rail
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __reduce__(self):
        # Rebuild through the constructor: pickle's default slot-state
        # protocol restores via ``setattr`` and trips the immutability
        # guard above.  Subclasses with extra slots override this.
        return (type(self), (self.value,))

    def __eq__(self, other):
        return type(self) is type(other) and self.value == other.value

    def __hash__(self):
        return hash((type(self).__name__, self.value))

    def __lt__(self, other):
        if not isinstance(other, Term):
            return NotImplemented
        return (type(self).__name__, self.value) < (type(other).__name__, other.value)

    def __repr__(self):
        return f"{type(self).__name__}({self.value!r})"

    def __str__(self):
        return self.value

    @property
    def is_variable(self) -> bool:
        """True when the term is a query variable."""
        return isinstance(self, Variable)

    @property
    def is_constant(self) -> bool:
        """True for URIs, literals, and blank nodes (anything bindable)."""
        return not self.is_variable

    def n3(self) -> str:
        """Render the term in N-Triples / SPARQL surface syntax."""
        raise NotImplementedError


class URI(Term):
    """A resource identifier (an element of the set ``U`` in the paper).

    The lexical value is the full IRI string, e.g.
    ``http://example.org/gov/CarlaBunes``.
    """

    __slots__ = ()

    def n3(self) -> str:
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment or last path segment — the human-readable part."""
        value = self.value
        for sep in ("#", "/", ":"):
            if sep in value:
                tail = value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return value


class Literal(Term):
    """An RDF literal value (an element of the set ``L``).

    Only plain literals (optionally language-tagged or datatyped) are
    modelled; the label alphabet of the paper does not distinguish
    further.
    """

    __slots__ = ("language", "datatype")

    def __init__(self, value: str, language: str | None = None,
                 datatype: "URI | None" = None):
        super().__init__(value)
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot carry both language and datatype")
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "datatype", datatype)

    def __eq__(self, other):
        return (type(self) is type(other)
                and self.value == other.value
                and self.language == other.language
                and self.datatype == other.datatype)

    def __hash__(self):
        return hash(("Literal", self.value, self.language, self.datatype))

    def __reduce__(self):
        return (Literal, (self.value, self.language, self.datatype))

    def __repr__(self):
        extras = []
        if self.language:
            extras.append(f"language={self.language!r}")
        if self.datatype:
            extras.append(f"datatype={self.datatype!r}")
        suffix = (", " + ", ".join(extras)) if extras else ""
        return f"Literal({self.value!r}{suffix})"

    def n3(self) -> str:
        escaped = (self.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t"))
        body = f'"{escaped}"'
        if self.language:
            return f"{body}@{self.language}"
        if self.datatype:
            return f"{body}^^{self.datatype.n3()}"
        return body


class BlankNode(Term):
    """An anonymous resource; the value is the local blank-node label."""

    __slots__ = ()

    def n3(self) -> str:
        return f"_:{self.value}"


class Variable(Term):
    """A query variable (an element of ``VAR``), written ``?name``.

    The stored ``value`` never includes the leading ``?``.
    """

    __slots__ = ()

    def __init__(self, value: str):
        if value.startswith("?"):
            value = value[1:]
        if not value:
            raise ValueError("variable name must be non-empty")
        super().__init__(value)

    def n3(self) -> str:
        return f"?{self.value}"

    def __str__(self):
        return f"?{self.value}"


#: Anything usable as a node label in a data graph (``ΣN = U ∪ L``).
DataNodeLabel = Union[URI, Literal, BlankNode]

#: Anything usable as a node label in a query graph (``U ∪ L ∪ VAR``).
QueryNodeLabel = Union[URI, Literal, BlankNode, Variable]


def coerce_term(value: "Term | str") -> Term:
    """Coerce a plain string into a term using lightweight conventions.

    Strings that start with ``?`` become :class:`Variable`, strings that
    look like IRIs (contain ``://`` or start with ``urn:``) become
    :class:`URI`, strings prefixed ``_:`` become :class:`BlankNode`, and
    everything else becomes a :class:`Literal`.  Existing terms pass
    through unchanged.  This keeps example code and tests readable
    without a full parser in the way.
    """
    if isinstance(value, Term):
        return value
    if not isinstance(value, str):
        raise TypeError(f"cannot coerce {type(value).__name__} to an RDF term")
    if value.startswith("?"):
        return Variable(value)
    if value.startswith("_:"):
        return BlankNode(value[2:])
    if "://" in value or value.startswith("urn:"):
        return URI(value)
    return Literal(value)
