"""RDF triples (statements).

A triple ``(subject, predicate, object)`` is the unit in which RDF data
is exchanged; :class:`~repro.rdf.graph.DataGraph` is built from them.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from .terms import BlankNode, Literal, Term, URI, Variable, coerce_term


class Triple(NamedTuple):
    """One RDF statement.

    ``subject`` and ``object`` may be any node label (URI, literal or
    blank node — or a variable when the triple belongs to a query
    pattern); ``predicate`` is a URI (or variable in query patterns).
    """

    subject: Term
    predicate: Term
    object: Term

    @classmethod
    def of(cls, subject, predicate, object) -> "Triple":
        """Build a triple, coercing plain strings via :func:`coerce_term`."""
        return cls(coerce_term(subject), coerce_term(predicate), coerce_term(object))

    def n3(self) -> str:
        """Render the triple as one N-Triples line (without newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    @property
    def is_ground(self) -> bool:
        """True when no component is a variable."""
        return not (self.subject.is_variable
                    or self.predicate.is_variable
                    or self.object.is_variable)

    def validate_data(self) -> None:
        """Raise ``ValueError`` if the triple is not valid RDF data.

        Valid data triples have a URI/blank subject, a URI predicate and
        any constant object — the shape accepted by Definition 1.
        """
        if not isinstance(self.subject, (URI, BlankNode)):
            raise ValueError(f"data triple subject must be URI or blank node, "
                             f"got {self.subject!r}")
        if not isinstance(self.predicate, URI):
            raise ValueError(f"data triple predicate must be URI, "
                             f"got {self.predicate!r}")
        if not isinstance(self.object, (URI, BlankNode, Literal)):
            raise ValueError(f"data triple object must be URI, blank node or "
                             f"literal, got {self.object!r}")

    def validate_pattern(self) -> None:
        """Raise ``ValueError`` if the triple is not a valid query pattern.

        Query patterns additionally allow variables in every position
        (Definition 2), but literals still cannot be subjects.
        """
        if isinstance(self.subject, Literal):
            raise ValueError("query pattern subject cannot be a literal")
        if isinstance(self.predicate, (Literal, BlankNode)):
            raise ValueError(f"query pattern predicate must be URI or variable, "
                             f"got {self.predicate!r}")

    def variables(self) -> set[Variable]:
        """All variables mentioned by the triple."""
        return {t for t in self if isinstance(t, Variable)}


def triples_of(rows: Iterable[tuple]) -> Iterator[Triple]:
    """Coerce an iterable of 3-tuples (terms or strings) into triples."""
    for row in rows:
        if len(row) != 3:
            raise ValueError(f"expected 3-tuples, got {row!r}")
        yield Triple.of(*row)
