"""A Turtle-subset reader for loading datasets and examples.

Shares the tokenizer with the SPARQL front-end and supports the common
Turtle core: ``@prefix``/``PREFIX``, ``@base``, ``a``, ``;`` and ``,``
abbreviations, IRIs, prefixed names, numbers, booleans and string
literals with language tags or datatypes.  Collections and nested blank
node property lists are outside the subset (the benchmark data never
uses them) and raise :class:`TurtleSyntaxError`.
"""

from __future__ import annotations

from typing import Iterator

from . import _lexer
from .namespaces import RDF, XSD
from .sparql import _TokenCursor
from .terms import BlankNode, Literal, Term, URI, Variable
from .triples import Triple


class TurtleSyntaxError(ValueError):
    """Raised on input outside the supported Turtle subset."""


class _TurtleParser:
    def __init__(self, text: str):
        try:
            tokens = list(_lexer.tokenize(text))
        except _lexer.LexError as exc:
            raise TurtleSyntaxError(str(exc)) from exc
        self.cursor = _TokenCursor(tokens)
        self.prefixes: dict[str, str] = {}
        self.base = ""
        self._blank_counter = 0

    def parse(self) -> Iterator[Triple]:
        from .sparql import SparqlSyntaxError

        try:
            while self.cursor.peek().kind != _lexer.EOF:
                if self._parse_directive():
                    continue
                yield from self._parse_statement()
        except SparqlSyntaxError as exc:
            # The token cursor is shared with the SPARQL parser and
            # raises its error type; re-badge it for Turtle callers.
            raise TurtleSyntaxError(str(exc)) from exc

    def _parse_directive(self) -> bool:
        token = self.cursor.peek()
        if token.kind != _lexer.KEYWORD:
            return False
        word = token.value
        if word in ("@prefix", "PREFIX", "prefix"):
            self.cursor.next()
            name = self.cursor.expect(_lexer.PNAME).value
            prefix = name.split(":", 1)[0]
            iri = self.cursor.expect(_lexer.IRI).value
            self.prefixes[prefix] = iri
            self.cursor.accept(_lexer.PUNCT, ".")
            return True
        if word in ("@base", "BASE", "base"):
            self.cursor.next()
            self.base = self.cursor.expect(_lexer.IRI).value
            self.cursor.accept(_lexer.PUNCT, ".")
            return True
        return False

    def _parse_statement(self) -> Iterator[Triple]:
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term(position="object")
                yield Triple(subject, predicate, obj)
                if not self.cursor.accept(_lexer.PUNCT, ","):
                    break
            if not self.cursor.accept(_lexer.PUNCT, ";"):
                break
            nxt = self.cursor.peek()
            if nxt.kind == _lexer.PUNCT and nxt.value == ".":
                break
        self.cursor.expect(_lexer.PUNCT, ".")

    def _parse_verb(self) -> Term:
        if self.cursor.accept(_lexer.KEYWORD, "a"):
            return RDF.type
        return self._parse_term(position="predicate")

    def _parse_term(self, position: str) -> Term:
        token = self.cursor.next()
        if token.kind == _lexer.IRI:
            value = token.value
            if self.base and "://" not in value:
                value = self.base + value
            return URI(value)
        if token.kind == _lexer.PNAME:
            prefix, _, local = token.value.partition(":")
            if prefix not in self.prefixes:
                raise TurtleSyntaxError(f"undeclared prefix {prefix!r}: {token}")
            return URI(self.prefixes[prefix] + local)
        if token.kind == _lexer.STRING:
            return self._finish_literal(token.value)
        if token.kind == _lexer.NUMBER:
            datatype = XSD.decimal if "." in token.value else XSD.integer
            return Literal(token.value, datatype=datatype)
        if token.kind == _lexer.KEYWORD and token.value in ("true", "false"):
            return Literal(token.value, datatype=XSD.boolean)
        if token.kind == _lexer.VAR:
            # Turtle proper has no variables, but query-by-example files
            # use them; callers building QueryGraphs welcome this.
            return Variable(token.value)
        if token.kind == _lexer.PUNCT and token.value == "[":
            if self.cursor.accept(_lexer.PUNCT, "]"):
                self._blank_counter += 1
                return BlankNode(f"anon{self._blank_counter}")
            raise TurtleSyntaxError("nested blank node property lists are "
                                    "outside the supported Turtle subset")
        if token.kind == _lexer.PUNCT and token.value == "(":
            raise TurtleSyntaxError("RDF collections are outside the "
                                    "supported Turtle subset")
        raise TurtleSyntaxError(f"expected {position}, found {token}")

    def _finish_literal(self, value: str) -> Literal:
        lang = self.cursor.accept(_lexer.LANGTAG)
        if lang:
            return Literal(value, language=lang.value)
        if self.cursor.accept(_lexer.DTYPE_SEP):
            token = self.cursor.next()
            if token.kind == _lexer.IRI:
                return Literal(value, datatype=URI(token.value))
            if token.kind == _lexer.PNAME:
                prefix, _, local = token.value.partition(":")
                if prefix not in self.prefixes:
                    raise TurtleSyntaxError(f"undeclared prefix {prefix!r}")
                return Literal(value, datatype=URI(self.prefixes[prefix] + local))
            raise TurtleSyntaxError(f"expected datatype IRI, found {token}")
        return Literal(value)


def parse(text: str) -> Iterator[Triple]:
    """Parse a Turtle document, yielding triples."""
    return _TurtleParser(text).parse()


def serialize(triples, prefixes: "dict[str, str] | None" = None) -> str:
    """Serialise triples to Turtle with prefix compaction.

    ``prefixes`` maps prefix names to IRI namespaces; when omitted,
    namespaces are derived from the data (the common IRI stems, named
    ``ns1``, ``ns2``, ...).  Triples are grouped by subject with ``;``
    abbreviation, round-trippable through :func:`parse`.
    """
    triples = list(triples)
    if prefixes is None:
        prefixes = _derive_prefixes(triples)
    reverse = sorted(prefixes.items(), key=lambda kv: -len(kv[1]))

    def render(term: Term) -> str:
        if isinstance(term, URI):
            for name, namespace in reverse:
                if term.value.startswith(namespace):
                    local = term.value[len(namespace):]
                    if local and all(c.isalnum() or c in "_-"
                                     for c in local):
                        return f"{name}:{local}"
            return term.n3()
        return term.n3()

    lines = [f"@prefix {name}: <{namespace}> ."
             for name, namespace in sorted(prefixes.items())]
    if lines:
        lines.append("")
    by_subject: dict[Term, list[Triple]] = {}
    order: list[Term] = []
    for triple in triples:
        if triple.subject not in by_subject:
            by_subject[triple.subject] = []
            order.append(triple.subject)
        by_subject[triple.subject].append(triple)
    for subject in order:
        group = by_subject[subject]
        head = render(subject)
        parts = [f"{render(t.predicate)} {render(t.object)}"
                 for t in group]
        if len(parts) == 1:
            lines.append(f"{head} {parts[0]} .")
        else:
            joined = " ;\n    ".join(parts)
            lines.append(f"{head} {joined} .")
    return "\n".join(lines) + "\n"


def write_file(triples, path,
               prefixes: "dict[str, str] | None" = None) -> int:
    """Write triples to a ``.ttl`` file; returns the number written."""
    triples = list(triples)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(serialize(triples, prefixes=prefixes))
    return len(triples)


def _derive_prefixes(triples) -> dict[str, str]:
    """Guess namespaces: the stem up to the last '#' or '/' of each IRI."""
    stems: dict[str, int] = {}
    for triple in triples:
        for term in triple:
            if not isinstance(term, URI):
                continue
            value = term.value
            cut = max(value.rfind("#"), value.rfind("/"))
            if cut > len("http://"):
                stem = value[:cut + 1]
                stems[stem] = stems.get(stem, 0) + 1
    prefixes = {}
    for index, (stem, _count) in enumerate(
            sorted(stems.items(), key=lambda kv: (-kv[1], kv[0]))):
        prefixes[f"ns{index + 1}"] = stem
    return prefixes


def parse_file(path) -> Iterator[Triple]:
    """Parse a ``.ttl`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return parse(text)
