"""Resilient query execution: budgets, degradation, faults, retries.

A production engine serving heavy traffic must guarantee that every
query *finishes, degrades, or fails cleanly* — never hangs, never dies
with an unstructured traceback.  This package supplies the pieces:

- :class:`Budget` / :class:`PartialResult` / :class:`DegradationReason`
  — per-query resource envelopes (wall-clock deadline, expansion cap,
  candidate cap) with cooperative cancellation and machine-readable
  degradation (:mod:`repro.resilience.budget`);
- the :class:`ReproError` exception hierarchy every deliberate error
  derives from (:mod:`repro.resilience.errors`);
- bounded retry-with-backoff for transient storage faults, with an
  optional seeded full-jitter mode (:mod:`repro.resilience.retry`);
- per-shard circuit breakers and quarantine for sharded indexes
  (:mod:`repro.resilience.health`), so a dead partition degrades the
  answer instead of failing the query;
- a deterministic, seeded fault-injection harness
  (:mod:`repro.resilience.faults`) proving the above under storage
  failures, page corruption, clock skew, and shard-scoped chaos plans.
"""

from .budget import (Budget, DegradationCause, DegradationReason,
                     PartialResult)
from .errors import (IndexCorruptError, InvalidQueryError, OverloadedError,
                     PageCorruptError, ParseError, QueryTimeout,
                     QuotaExceededError, ReproError, ShardUnavailableError,
                     StorageError, TransientStorageError)
from .faults import (FaultInjector, FaultPlan, ShardFaultSet, install,
                     uninstall)
from .health import BreakerConfig, ShardBreaker, ShardHealth
from .retry import (DEFAULT_RETRY, JITTERED_RETRY, NO_RETRY, RetryPolicy,
                    retry_call)

__all__ = [
    "BreakerConfig", "Budget", "DEFAULT_RETRY", "DegradationCause",
    "DegradationReason", "FaultInjector", "FaultPlan", "IndexCorruptError",
    "InvalidQueryError", "JITTERED_RETRY", "NO_RETRY", "OverloadedError",
    "PageCorruptError", "ParseError", "PartialResult", "QueryTimeout",
    "QuotaExceededError", "ReproError", "RetryPolicy", "ShardBreaker",
    "ShardFaultSet",
    "ShardHealth", "ShardUnavailableError", "StorageError",
    "TransientStorageError", "install", "retry_call", "uninstall",
]
