"""Query budgets, degradation reasons, and partial results.

A :class:`Budget` travels with one query through
``prepare_query → build_clusters → top_k`` (and the explain forest).
Each stage charges the work it does and polls the budget at cooperative
cancellation points; when a limit trips, the stage *stops where it is*
and records a machine-readable :class:`DegradationReason` instead of
raising.  The engine then returns whatever was found so far as a
:class:`PartialResult` (or raises
:class:`~repro.resilience.errors.QueryTimeout` under
``on_budget="raise"``).

Deadline checks read a clock, which costs more than an integer compare,
so :meth:`Budget.poll` only consults it every ``check_stride`` calls —
the stride is what keeps budget enforcement under the <5 % overhead
target (``benchmarks/bench_resilience_overhead.py``).  The clock is
injectable, which the fault harness uses to simulate clock skew.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass


class DegradationCause(enum.Enum):
    """Why a result is partial (machine-readable)."""

    #: The wall-clock deadline expired mid-query.
    DEADLINE = "deadline"
    #: Candidate evaluation was cut short (``max_candidates`` tripped).
    CLUSTER_TRUNCATION = "cluster_truncation"
    #: The search stopped after ``max_expansions`` frontier pops.
    EXPANSION_CAP = "expansion_cap"
    #: One or more index shards failed mid-query; their candidates are
    #: missing from the answer (the healthy shards' results survive).
    SHARD_FAILED = "shard_failed"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class DegradationReason:
    """One recorded budget trip: what tripped, where, and any detail."""

    cause: DegradationCause
    phase: str            # "prepare" | "cluster" | "search" | "forest"
    detail: str = ""

    def __str__(self):
        text = f"{self.cause.value} in {self.phase}"
        return f"{text} ({self.detail})" if self.detail else text


class Budget:
    """A per-query resource envelope with cooperative cancellation.

    Parameters
    ----------
    deadline_ms:
        Wall-clock budget in milliseconds, measured from construction
        (or the latest :meth:`restart`).  ``None`` means no deadline.
    max_expansions:
        Cap on top-k search frontier pops across the query.
    max_candidates:
        Cap on candidate data paths evaluated during clustering,
        totalled across the query's clusters.
    clock:
        Monotonic-seconds callable (injectable for tests/fault plans).
    check_stride:
        :meth:`poll` reads the clock once per this many calls.

    A budget is single-use state, not configuration: create one per
    query.  All trips are recorded in :attr:`reasons`; stages never
    raise on a trip — degradation decisions belong to the caller.
    """

    def __init__(self, deadline_ms: "float | None" = None,
                 max_expansions: "int | None" = None,
                 max_candidates: "int | None" = None,
                 clock=time.monotonic, check_stride: int = 32):
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        if check_stride < 1:
            raise ValueError(f"check_stride must be >= 1, got {check_stride}")
        self.deadline_ms = deadline_ms
        self.max_expansions = max_expansions
        self.max_candidates = max_candidates
        self.clock = clock
        self.check_stride = check_stride
        self.expansions = 0
        self.candidates = 0
        self.reasons: list[DegradationReason] = []
        self._polls = 0
        self._expired = False
        self.restart()

    def restart(self) -> None:
        """Re-arm the deadline from *now* (counters are preserved)."""
        self._started = self.clock()
        self._deadline_at = (None if self.deadline_ms is None
                             else self._started + self.deadline_ms / 1000.0)
        self._expired = False

    # -- clock ----------------------------------------------------------------

    def elapsed_ms(self) -> float:
        return (self.clock() - self._started) * 1000.0

    def remaining_ms(self) -> "float | None":
        """Milliseconds left on the deadline; ``None`` when unlimited."""
        if self._deadline_at is None:
            return None
        return max(0.0, (self._deadline_at - self.clock()) * 1000.0)

    def expired(self) -> bool:
        """True once the deadline has passed (reads the clock)."""
        if self._deadline_at is None:
            return False
        if not self._expired and self.clock() >= self._deadline_at:
            self._expired = True
        return self._expired

    # -- cooperative checks ------------------------------------------------------

    def note(self, cause: DegradationCause, phase: str,
             detail: str = "") -> DegradationReason:
        """Record one degradation reason (deduplicated per cause+phase)."""
        reason = DegradationReason(cause=cause, phase=phase, detail=detail)
        for existing in self.reasons:
            if existing.cause is cause and existing.phase == phase:
                return existing
        self.reasons.append(reason)
        return reason

    def out_of_time(self, phase: str) -> "DegradationReason | None":
        """Unstrided deadline check; records DEADLINE when tripped.

        Returns the (truthy) recorded reason when the deadline has
        passed, ``None`` otherwise — as do every ``charge_*`` and
        :meth:`poll`, so call sites can both test and report with one
        call.
        """
        if self.expired():
            return self.note(DegradationCause.DEADLINE, phase,
                             f"deadline_ms={self.deadline_ms:g}")
        return None

    def poll(self, phase: str) -> "DegradationReason | None":
        """Strided deadline check for hot loops.

        Reads the clock only every ``check_stride`` calls (but always
        on the first, so a 0 ms deadline trips before any work).  Once
        tripped it stays tripped without touching the clock again.
        """
        if self._deadline_at is None:
            return None
        if self._expired:
            return self.note(DegradationCause.DEADLINE, phase,
                             f"deadline_ms={self.deadline_ms:g}")
        self._polls += 1
        if self._polls != 1 and self._polls % self.check_stride:
            return None
        return self.out_of_time(phase)

    def charge_candidates(self, count: int = 1,
                          phase: str = "cluster") -> "DegradationReason | None":
        """Charge candidate evaluations; the reason when a limit trips."""
        self.candidates += count
        if (self.max_candidates is not None
                and self.candidates >= self.max_candidates):
            return self.note(DegradationCause.CLUSTER_TRUNCATION, phase,
                             f"max_candidates={self.max_candidates}")
        return self.poll(phase)

    def charge_expansion(self,
                         phase: str = "search") -> "DegradationReason | None":
        """Charge one search expansion; the reason when a limit trips."""
        self.expansions += 1
        if (self.max_expansions is not None
                and self.expansions >= self.max_expansions):
            return self.note(DegradationCause.EXPANSION_CAP, phase,
                             f"max_expansions={self.max_expansions}")
        return self.poll(phase)

    @property
    def degraded(self) -> bool:
        return bool(self.reasons)

    def __repr__(self):
        limits = []
        if self.deadline_ms is not None:
            limits.append(f"deadline={self.deadline_ms:g}ms")
        if self.max_expansions is not None:
            limits.append(f"expansions<={self.max_expansions}")
        if self.max_candidates is not None:
            limits.append(f"candidates<={self.max_candidates}")
        state = "tripped" if self.degraded else "ok"
        return f"<Budget {' '.join(limits) or 'unlimited'}: {state}>"


class PartialResult(list):
    """Ranked answers that may have been cut short by a budget.

    A drop-in ``list`` of answers (indexing, iteration and truthiness
    behave exactly like the plain list the engine used to return) with
    the degradation record attached: :attr:`reasons` is the tuple of
    :class:`DegradationReason` explaining any missing work, and
    :attr:`complete` is True when no budget tripped.
    """

    def __init__(self, answers=(), reasons=()):
        super().__init__(answers)
        self.reasons: tuple[DegradationReason, ...] = tuple(reasons)

    @property
    def complete(self) -> bool:
        return not self.reasons

    @property
    def degraded(self) -> bool:
        return bool(self.reasons)

    def causes(self) -> set[DegradationCause]:
        """The distinct causes behind this result's degradation."""
        return {reason.cause for reason in self.reasons}

    def __repr__(self):
        status = ("complete" if self.complete else
                  ", ".join(str(reason) for reason in self.reasons))
        return f"<PartialResult: {len(self)} answers, {status}>"
