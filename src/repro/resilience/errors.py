"""The structured exception hierarchy of the engine.

Every error the library raises deliberately derives from
:class:`ReproError`, so operational code can catch one base class and
know it is looking at a diagnosed condition rather than a stray
``ValueError`` escaping from deep inside a parser or a page decoder.
The leaves keep their historical builtin bases (``ValueError``,
``RuntimeError``, ``TimeoutError``) so existing ``except`` clauses and
tests keep working.

The module is deliberately dependency-free: ``repro.storage``,
``repro.rdf`` and ``repro.engine`` all import it, so it must import
none of them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every structured error raised by this library."""


class ParseError(ReproError, ValueError):
    """Query/data text could not be parsed.

    Carries the 1-based source position when the parser knows it, so
    front-ends can print a one-line ``parse error at line:col: ...``
    diagnostic instead of a traceback.
    """

    def __init__(self, message: str, line: "int | None" = None,
                 column: "int | None" = None):
        super().__init__(message)
        self.line = line
        self.column = column

    @property
    def location(self) -> str:
        """``"line:column"`` when known, ``""`` otherwise."""
        if self.line is None:
            return ""
        if self.column is None:
            return str(self.line)
        return f"{self.line}:{self.column}"

    def one_line(self) -> str:
        """The single-line diagnostic front-ends should print."""
        where = self.location
        prefix = f"parse error at {where}: " if where else "parse error: "
        return prefix + str(self.args[0] if self.args else "")


class InvalidQueryError(ReproError, ValueError):
    """The query parsed but cannot be meaningfully evaluated.

    Raised by up-front validation in :meth:`SamaEngine.query` for empty
    patterns, patterns binding no constants at all, and disconnected
    query graphs — conditions that would otherwise surface as confusing
    failures (or empty answers) deep inside clustering and search.
    """


class QueryTimeout(ReproError, TimeoutError):
    """A query's budget tripped and the caller asked for an error.

    Raised only under ``on_budget="raise"``; the default degradation
    mode returns a :class:`~repro.resilience.budget.PartialResult`
    instead.  ``reasons`` holds the machine-readable
    :class:`~repro.resilience.budget.DegradationReason` records and
    ``partial`` whatever answers were found before the trip.
    """

    def __init__(self, message: str, reasons=(), partial=None):
        super().__init__(message)
        self.reasons = tuple(reasons)
        self.partial = partial


class OverloadedError(ReproError, RuntimeError):
    """The serving layer is at capacity and shed this request.

    Raised by :class:`~repro.serving.service.ServingEngine` when every
    worker is busy and the bounded admission queue is full — the
    alternative would be an unbounded queue, which converts overload
    into unbounded latency.  ``in_flight`` and ``capacity`` report the
    admission state at rejection time so clients can implement backoff.
    """

    def __init__(self, message: str, in_flight: "int | None" = None,
                 capacity: "int | None" = None):
        super().__init__(message)
        self.in_flight = in_flight
        self.capacity = capacity


class QuotaExceededError(ReproError, RuntimeError):
    """A tenant exhausted its admission quota and this request was refused.

    Raised ahead of the engine's capacity semaphore by the per-tenant
    token-bucket admission in the asyncio front end (HTTP 429): the
    *service* still has room, but this API key is sending faster than
    its provisioned rate.  ``retry_after_s`` is the earliest moment a
    retry can succeed (the next token), so well-behaved clients back
    off exactly as long as needed and no longer.
    """

    def __init__(self, message: str, tenant: "str | None" = None,
                 retry_after_s: "float | None" = None):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class StorageError(ReproError, RuntimeError):
    """Invalid or failed page/record operation in the storage layer."""


class TransientStorageError(StorageError):
    """A page read failed in a way that may succeed on retry.

    The buffer pool retries these with bounded exponential backoff
    (see :class:`~repro.resilience.retry.RetryPolicy`) before letting
    them propagate.
    """


class PageCorruptError(StorageError):
    """A page's content does not match its recorded checksum."""


class ShardUnavailableError(StorageError):
    """A shard of a sharded index cannot serve reads right now.

    Raised when a lookup touches a shard that the recovery scan
    quarantined at open time (damaged manifest, unreadable log) or that
    the health board has taken out of rotation.  The scatter-gather
    layer treats it like any other per-shard storage failure: the
    shard's partial comes back empty and the query degrades with
    :data:`~repro.resilience.budget.DegradationCause.SHARD_FAILED`
    instead of failing outright.
    """

    def __init__(self, message: str, shard: "int | None" = None):
        super().__init__(message)
        self.shard = shard


class IndexCorruptError(ReproError, RuntimeError):
    """The on-disk index is unreadable or internally inconsistent."""
