"""Deterministic fault injection for resilience testing.

A :class:`FaultPlan` is a *seeded, immutable description* of the
faults a run should experience: which physical page reads fail
transiently, which pages come back corrupted, and how skewed the
query clock runs.  From one plan you derive live fault sources:

- :meth:`FaultPlan.injector` → a :class:`FaultInjector` installed on a
  :class:`~repro.storage.pagestore.PageStore` (``store.fault_injector``
  or :func:`install`).  The store consults it on every physical read,
  *before* checksum verification — so injected corruption is caught by
  the store's own integrity machinery exactly like real bit rot, and
  injected read failures are retried by the buffer pool exactly like
  real transient I/O errors.
- :meth:`FaultPlan.clock` → a monotonic-but-skewed clock for a
  :class:`~repro.resilience.budget.Budget`, simulating a host whose
  clock jumps forward (deadlines trip early; they never hang).

Determinism is the point: the same plan over the same read sequence
injects the same faults, so every failure a test finds is replayable
from its seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .errors import TransientStorageError


@dataclass(frozen=True)
class FaultPlan:
    """A seeded recipe of storage faults and clock skew.

    ``read_failure_rate`` / ``corrupt_rate`` are per-physical-read
    probabilities drawn from the seeded stream; ``fail_reads`` names
    explicit read ordinals (0-based) that must fail and
    ``corrupt_pages`` page ids whose reads always come back damaged.
    ``max_failures`` bounds the total injected failures — set it below
    the retry budget to model blips that heal, leave it ``None`` for
    persistent trouble.  ``clock_skew_ms`` is the average forward jump
    the skewed clock adds per reading.
    """

    seed: int = 0
    read_failure_rate: float = 0.0
    corrupt_rate: float = 0.0
    fail_reads: tuple = ()
    corrupt_pages: tuple = ()
    max_failures: "int | None" = None
    clock_skew_ms: float = 0.0
    #: Shard-scoped faults (chaos harness): shards in ``fail_shards``
    #: hard-fail every physical read; ``shard_fail_rate`` additionally
    #: hard-fails each shard with that probability (one seeded draw per
    #: shard, so the set of dead shards is a deterministic function of
    #: the plan); shards in ``slow_shards`` sleep ``slow_shard_ms``
    #: per physical read (stragglers for hedging tests).  Shard faults
    #: are persistent by design — they model a dead or wedged
    #: partition, not a blip — so ``max_failures`` does not arm them.
    fail_shards: tuple = ()
    shard_fail_rate: float = 0.0
    slow_shards: tuple = ()
    slow_shard_ms: float = 0.0

    def injector(self, shard: "int | None" = None) -> "FaultInjector":
        """A fresh live injector for this plan (one per store).

        ``shard`` scopes the injector to one shard of a sharded index
        so the shard-level faults above know whether they apply.
        """
        return FaultInjector(self, shard=shard)

    def shard_is_failed(self, shard: int) -> bool:
        """Whether ``shard`` is hard-failed under this plan (seeded)."""
        if shard in self.fail_shards:
            return True
        if self.shard_fail_rate:
            draw = random.Random((self.seed << 8) ^ (shard * 0x9E3779B9))
            return draw.random() < self.shard_fail_rate
        return False

    def failed_shards(self, shard_count: int) -> "tuple[int, ...]":
        """All shards of ``shard_count`` this plan hard-fails."""
        return tuple(shard for shard in range(shard_count)
                     if self.shard_is_failed(shard))

    def clock(self):
        """A monotonic clock that jumps forward per this plan's skew."""
        rng = random.Random(self.seed ^ 0x5DEECE66D)
        offset = [0.0]

        def skewed() -> float:
            if self.clock_skew_ms:
                offset[0] += (self.clock_skew_ms / 1000.0) * 2 * rng.random()
            return time.monotonic() + offset[0]

        return skewed


class FaultInjector:
    """The live, stateful side of a :class:`FaultPlan`.

    One injector watches one store's physical read stream.  Counters
    (:attr:`reads`, :attr:`failures_injected`,
    :attr:`corruptions_injected`) let tests assert the plan actually
    fired.
    """

    def __init__(self, plan: FaultPlan, shard: "int | None" = None,
                 sleep=time.sleep):
        self.plan = plan
        self.shard = shard
        self._sleep = sleep
        self._rng = random.Random(plan.seed)
        self.reads = 0
        self.failures_injected = 0
        self.corruptions_injected = 0
        self.slow_reads_injected = 0
        self._shard_failed = (shard is not None
                              and plan.shard_is_failed(shard))
        self._shard_slow = (shard is not None and plan.slow_shard_ms > 0
                            and (not plan.slow_shards
                                 or shard in plan.slow_shards))

    def _armed(self) -> bool:
        if self.plan.max_failures is None:
            return True
        return (self.failures_injected + self.corruptions_injected
                < self.plan.max_failures)

    def on_read(self, page_id: int, data: bytes) -> bytes:
        """Filter one physical page read; may raise or damage it."""
        ordinal = self.reads
        self.reads += 1
        # Draw both decisions unconditionally so the random stream
        # stays aligned with the read ordinal regardless of outcomes.
        fail_draw = self._rng.random()
        corrupt_draw = self._rng.random()
        if self._shard_failed:
            # A dead partition: every read fails, retries included, and
            # max_failures does not heal it.
            self.failures_injected += 1
            raise TransientStorageError(
                f"injected shard failure (shard {self.shard}, "
                f"read #{ordinal}, page {page_id}, seed {self.plan.seed})")
        if self._shard_slow:
            self.slow_reads_injected += 1
            self._sleep(self.plan.slow_shard_ms / 1000.0)
        if not self._armed():
            return data
        if ordinal in self.plan.fail_reads \
                or fail_draw < self.plan.read_failure_rate:
            self.failures_injected += 1
            raise TransientStorageError(
                f"injected read failure (read #{ordinal}, page {page_id}, "
                f"seed {self.plan.seed})")
        if page_id in self.plan.corrupt_pages \
                or corrupt_draw < self.plan.corrupt_rate:
            self.corruptions_injected += 1
            return _damage(data, self._rng)
        return data

    def __repr__(self):
        scope = f" shard={self.shard}" if self.shard is not None else ""
        return (f"<FaultInjector seed={self.plan.seed}{scope}: "
                f"{self.reads} reads, "
                f"{self.failures_injected} failures, "
                f"{self.corruptions_injected} corruptions>")


def _damage(data: bytes, rng: random.Random) -> bytes:
    """Flip a few bytes of ``data`` (always actually changes it)."""
    if not data:
        return data
    damaged = bytearray(data)
    for _ in range(1 + rng.randrange(4)):
        position = rng.randrange(len(damaged))
        damaged[position] ^= 0xFF
    return bytes(damaged)


class ShardFaultSet:
    """The per-shard injectors installed on one sharded index.

    Indexable by shard number (``fault_set[2].failures_injected``) with
    aggregate counters summing over every live shard, so assertions
    written against one :class:`FaultInjector` read the same either way.
    """

    def __init__(self, injectors: "list[FaultInjector | None]"):
        self._injectors = injectors

    def __getitem__(self, shard: int) -> "FaultInjector | None":
        return self._injectors[shard]

    def __iter__(self):
        return iter(self._injectors)

    def __len__(self) -> int:
        return len(self._injectors)

    @property
    def reads(self) -> int:
        return sum(i.reads for i in self._injectors if i is not None)

    @property
    def failures_injected(self) -> int:
        return sum(i.failures_injected for i in self._injectors
                   if i is not None)

    @property
    def corruptions_injected(self) -> int:
        return sum(i.corruptions_injected for i in self._injectors
                   if i is not None)

    def __repr__(self):
        return (f"<ShardFaultSet over {len(self._injectors)} shards: "
                f"{self.reads} reads, {self.failures_injected} failures>")


def install(target, plan: FaultPlan):
    """Install ``plan`` on a store, index, or engine; returns the injector.

    Accepts anything exposing a page store: a ``PageStore`` itself, a
    ``PathIndex`` (via ``.page_store``), or a ``SamaEngine`` (via
    ``.index.page_store``).  A ``ShardedIndex`` (direct or behind an
    engine) gets one shard-scoped injector per live shard — that is how
    the plan's ``fail_shards`` / ``shard_fail_rate`` / ``slow_shards``
    know which shard they are watching — returned as a
    :class:`ShardFaultSet`.  To remove injection use :func:`uninstall`.
    """
    sharded = _resolve_sharded(target)
    if sharded is not None:
        injectors: "list[FaultInjector | None]" = []
        for shard_no, shard in enumerate(sharded.shards):
            store = getattr(shard, "page_store", None)
            if store is None:          # quarantined placeholder
                injectors.append(None)
                continue
            injector = plan.injector(shard=shard_no)
            store.fault_injector = injector
            injectors.append(injector)
        return ShardFaultSet(injectors)
    store = _resolve_store(target)
    injector = plan.injector()
    store.fault_injector = injector
    return injector


def uninstall(target) -> None:
    """Remove any installed injector from ``target``'s page store(s)."""
    sharded = _resolve_sharded(target)
    if sharded is not None:
        for shard in sharded.shards:
            store = getattr(shard, "page_store", None)
            if store is not None:
                store.fault_injector = None
        return
    _resolve_store(target).fault_injector = None


def _resolve_sharded(target):
    if getattr(target, "is_sharded", False):
        return target
    index = getattr(target, "index", None)
    if index is not None and getattr(index, "is_sharded", False):
        return index
    return None


def _resolve_store(target):
    if hasattr(target, "fault_injector"):
        return target
    if hasattr(target, "page_store"):
        return target.page_store
    if hasattr(target, "index"):
        return target.index.page_store
    raise TypeError(f"cannot find a page store on {type(target).__name__}")
