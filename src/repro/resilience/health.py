"""Per-shard health tracking: circuit breakers and quarantine.

A :class:`ShardHealth` board rides on every
:class:`~repro.index.sharded.ShardedIndex` and answers one question per
shard at dispatch time — *is this shard worth sending work to right
now?* — so a dead partition costs one failed probe per cooldown window
instead of a storage-timeout per candidate per query.

Each shard gets a :class:`ShardBreaker`, a classic three-state circuit
breaker:

- **closed** — healthy; every dispatch is allowed.  Failures increment
  a consecutive-failure counter; reaching ``failure_threshold`` trips
  the breaker open.
- **open** — the shard is out of rotation; dispatches are refused
  (callers degrade with ``SHARD_FAILED`` instead of paying the failure
  again).  After a cooldown the breaker moves to half-open.
- **half-open** — exactly one *probe* dispatch is admitted.  Success
  closes the circuit (full re-admission); failure re-opens it with the
  cooldown doubled (capped), plus a small seeded jitter so many
  servers probing one recovering shard do not stampede in lockstep.

**Quarantine** is the administrative superstate: a quarantined shard
(damaged manifest found by the startup recovery scan, or an operator's
decision) admits no probes at all until :meth:`ShardHealth.readmit`.

Determinism: the board only changes behaviour after a failure is
recorded, so a fault-free run dispatches exactly as if the board did
not exist — the bit-identical-rankings guarantee of the scatter-gather
merge is untouched.  The clock and jitter seed are injectable, so
breaker trajectories are replayable in tests.

>>> health = ShardHealth(2, BreakerConfig(failure_threshold=2))
>>> health.allow(0), health.allow(1)
(True, True)
>>> health.record_failure(0, "boom")
>>> health.allow(0)             # one failure: still closed
True
>>> health.record_failure(0, "boom again")
>>> health.allow(0)             # threshold reached: circuit open
False
>>> health.degraded
True
>>> health.state(0)
'open'
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

#: Breaker state names (plain strings: they go straight into /stats).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class BreakerConfig:
    """Tunables of one shard's circuit breaker."""

    #: Consecutive failures that trip the circuit open.
    failure_threshold: int = 3
    #: Seconds the circuit stays open before admitting a probe.
    cooldown_s: float = 2.0
    #: Cooldown growth per failed probe (exponential, capped).
    backoff_multiplier: float = 2.0
    max_cooldown_s: float = 60.0
    #: Fraction of the cooldown added as seeded jitter ([0, jitter)).
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {self.failure_threshold}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, "
                             f"got {self.cooldown_s}")


class ShardBreaker:
    """The circuit breaker of one shard (state machine above).

    Not thread-safe on its own — :class:`ShardHealth` serialises every
    transition under one board lock, which is plenty: transitions are
    a few attribute writes, and dispatch-time ``allow`` is one state
    compare in the common (closed) case.
    """

    __slots__ = ("config", "state", "consecutive_failures", "cooldown_s",
                 "retry_at", "probe_in_flight", "last_error",
                 "failures_total", "successes_total", "trips_total",
                 "probes_total", "hedges_total", "_rng")

    def __init__(self, config: BreakerConfig, shard: int = 0):
        self.config = config
        self.state = CLOSED
        self.consecutive_failures = 0
        self.cooldown_s = config.cooldown_s
        self.retry_at = 0.0
        self.probe_in_flight = False
        self.last_error = ""
        self.failures_total = 0
        self.successes_total = 0
        self.trips_total = 0
        self.probes_total = 0
        self.hedges_total = 0
        # Per-shard stream: two shards of one board never share draws,
        # and the same (seed, shard) always jitters identically.
        self._rng = random.Random((config.seed << 8) ^ (shard * 0x61C88647))

    def allow(self, now: float) -> bool:
        if self.state == CLOSED:
            return True
        if self.state == QUARANTINED:
            return False
        if self.state == OPEN:
            if now < self.retry_at:
                return False
            self.state = HALF_OPEN
            self.probe_in_flight = True
            self.probes_total += 1
            return True
        # Half-open: one probe at a time.
        if self.probe_in_flight:
            return False
        self.probe_in_flight = True
        self.probes_total += 1
        return True

    def record_success(self, now: float) -> None:
        self.successes_total += 1
        self.consecutive_failures = 0
        if self.state == QUARANTINED:
            return            # only readmit() clears quarantine
        if self.state in (HALF_OPEN, OPEN):
            # The probe came back healthy: full re-admission, cooldown
            # reset so the next incident starts from scratch.
            self.cooldown_s = self.config.cooldown_s
        self.state = CLOSED
        self.probe_in_flight = False

    def record_failure(self, now: float, error: str = "") -> None:
        self.failures_total += 1
        self.consecutive_failures += 1
        if error:
            self.last_error = error
        if self.state == QUARANTINED:
            return
        if self.state == HALF_OPEN:
            # Failed probe: back off harder before the next one.
            self.cooldown_s = min(
                self.cooldown_s * self.config.backoff_multiplier,
                self.config.max_cooldown_s)
            self._open(now)
        elif (self.state == CLOSED
              and self.consecutive_failures >= self.config.failure_threshold):
            self._open(now)

    def quarantine(self, reason: str) -> None:
        self.state = QUARANTINED
        self.last_error = reason
        self.probe_in_flight = False

    def readmit(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.cooldown_s = self.config.cooldown_s
        self.probe_in_flight = False

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.trips_total += 1
        self.probe_in_flight = False
        jitter = self.cooldown_s * self.config.jitter * self._rng.random()
        self.retry_at = now + self.cooldown_s + jitter


class ShardHealth:
    """The health board of one sharded index: N breakers, one lock.

    The scatter-gather layer asks :meth:`allow` before dispatching a
    shard task and reports the outcome with :meth:`record_success` /
    :meth:`record_failure`; the serving layer projects
    :meth:`snapshot` into ``/healthz``, ``/stats`` and the
    ``sama_shard_*`` metric families.
    """

    def __init__(self, shard_count: int,
                 config: "BreakerConfig | None" = None,
                 clock=time.monotonic):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.config = config or BreakerConfig()
        self.clock = clock
        self._lock = threading.Lock()
        self._breakers = [ShardBreaker(self.config, shard)
                          for shard in range(shard_count)]

    # -- dispatch-time interface -------------------------------------------

    def allow(self, shard: int) -> bool:
        """Whether work may be sent to ``shard`` right now.

        May consume the single half-open probe slot — a caller that is
        granted ``True`` on a non-closed breaker *is* the probe and
        must report back via ``record_success``/``record_failure``.
        """
        with self._lock:
            return self._breakers[shard].allow(self.clock())

    def record_success(self, shard: int) -> None:
        with self._lock:
            self._breakers[shard].record_success(self.clock())

    def record_failure(self, shard: int, error: "object" = "") -> None:
        with self._lock:
            self._breakers[shard].record_failure(self.clock(), str(error))

    def note_hedge(self, shard: int) -> None:
        """Count one hedged (duplicated) dispatch against ``shard``."""
        with self._lock:
            self._breakers[shard].hedges_total += 1

    # -- administration -----------------------------------------------------

    def quarantine(self, shard: int, reason: str = "") -> None:
        """Take ``shard`` out of rotation until :meth:`readmit`."""
        with self._lock:
            self._breakers[shard].quarantine(reason)

    def readmit(self, shard: int) -> None:
        """Administratively re-admit ``shard`` (post-repair)."""
        with self._lock:
            self._breakers[shard].readmit()

    # -- introspection -------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._breakers)

    def state(self, shard: int) -> str:
        with self._lock:
            return self._breakers[shard].state

    def failed_shards(self) -> "list[int]":
        """Shards currently out of rotation (open or quarantined)."""
        with self._lock:
            return [shard for shard, breaker in enumerate(self._breakers)
                    if breaker.state in (OPEN, QUARANTINED)]

    def quarantined_shards(self) -> "list[tuple[int, str]]":
        """Quarantined shards with their reasons.

        Distinct from :meth:`failed_shards`: a merely *open* circuit
        recovers on its own through half-open probes, so dispatchers
        must keep asking :meth:`allow` about it — only quarantine is
        final until :meth:`readmit`, which is what lets a query mark
        these shards lost up front without wedging recovery.
        """
        with self._lock:
            return [(shard, breaker.last_error)
                    for shard, breaker in enumerate(self._breakers)
                    if breaker.state == QUARANTINED]

    def unhealthy_shards(self) -> "list[int]":
        """Shards in any non-closed state (includes half-open probes)."""
        with self._lock:
            return [shard for shard, breaker in enumerate(self._breakers)
                    if breaker.state != CLOSED]

    @property
    def degraded(self) -> bool:
        """True when any shard is not fully healthy."""
        with self._lock:
            return any(breaker.state != CLOSED
                       for breaker in self._breakers)

    def snapshot(self) -> "list[dict]":
        """One JSON-ready status document per shard (for ``/stats``)."""
        with self._lock:
            return [{
                "shard": shard,
                "state": breaker.state,
                "consecutive_failures": breaker.consecutive_failures,
                "failures": breaker.failures_total,
                "successes": breaker.successes_total,
                "trips": breaker.trips_total,
                "probes": breaker.probes_total,
                "hedges": breaker.hedges_total,
                "last_error": breaker.last_error,
            } for shard, breaker in enumerate(self._breakers)]

    def __repr__(self):
        with self._lock:
            states = [breaker.state for breaker in self._breakers]
        return f"<ShardHealth {states}>"
