"""Bounded retry with exponential backoff for transient faults.

The storage layer is the only place the engine touches a device, so it
is the only place failures can be *transient* — a flaky read that would
succeed if tried again.  :class:`RetryPolicy` describes how hard to
try; :func:`retry_call` runs a callable under a policy.  The buffer
pool retries physical page reads with the default policy, so a blip
injected (or real) below it never surfaces unless it persists.

Delays are deliberately tiny by default (the store is local disk, not
a network service) and the sleep function is injectable so tests can
retry without actually waiting.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .errors import PageCorruptError, TransientStorageError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to back off between tries.

    ``retry_on`` lists the exception types worth retrying; anything
    else propagates immediately.  Corrupt-page reads are retried too:
    a re-read genuinely can clear a torn or in-flight-damaged read,
    and persistent corruption just exhausts the (cheap) attempts and
    then surfaces as the same typed error.

    With ``jitter=True`` each backoff is drawn uniformly from
    ``[0, exponential cap]`` ("full jitter"), which decorrelates the
    retry storms of many workers hitting the same failing shard.  The
    draws come from a :class:`random.Random` seeded with ``seed`` per
    :func:`retry_call` invocation, so a given call site retries with
    the exact same delays on every run — fault-injection tests stay
    replayable.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    retry_on: tuple = (TransientStorageError, PageCorruptError)
    sleep: "object" = field(default=time.sleep, repr=False)
    jitter: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")

    def delay_for(self, attempt: int,
                  rng: "random.Random | None" = None) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        Without jitter (or without an ``rng``) this is the deterministic
        exponential schedule capped at ``max_delay``; with both, a full-
        jitter draw over ``[0, cap]``.
        """
        cap = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter and rng is not None:
            return rng.uniform(0.0, cap)
        return cap

    def rng(self) -> "random.Random | None":
        """A fresh seeded jitter stream (``None`` when jitter is off)."""
        return random.Random(self.seed) if self.jitter else None


#: Used by the buffer pool unless a caller passes its own policy.
DEFAULT_RETRY = RetryPolicy()

#: Never retry (a policy, not ``None``, so call sites stay uniform).
NO_RETRY = RetryPolicy(max_attempts=1)

#: Full-jitter variant for fan-out callers (many workers retrying the
#: same shard must not back off in lockstep).
JITTERED_RETRY = RetryPolicy(jitter=True)


def retry_call(fn, *args, policy: RetryPolicy = DEFAULT_RETRY,
               on_retry=None, **kwargs):
    """Call ``fn`` under ``policy``; returns its result or re-raises.

    ``on_retry``, when given, is invoked as ``on_retry(attempt, exc)``
    before each backoff sleep — the buffer pool uses it to count
    retries in its stats.
    """
    attempt = 1
    rng = policy.rng()
    while True:
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            policy.sleep(policy.delay_for(attempt, rng))
            attempt += 1
