"""Bounded retry with exponential backoff for transient faults.

The storage layer is the only place the engine touches a device, so it
is the only place failures can be *transient* — a flaky read that would
succeed if tried again.  :class:`RetryPolicy` describes how hard to
try; :func:`retry_call` runs a callable under a policy.  The buffer
pool retries physical page reads with the default policy, so a blip
injected (or real) below it never surfaces unless it persists.

Delays are deliberately tiny by default (the store is local disk, not
a network service) and the sleep function is injectable so tests can
retry without actually waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .errors import PageCorruptError, TransientStorageError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to back off between tries.

    ``retry_on`` lists the exception types worth retrying; anything
    else propagates immediately.  Corrupt-page reads are retried too:
    a re-read genuinely can clear a torn or in-flight-damaged read,
    and persistent corruption just exhausts the (cheap) attempts and
    then surfaces as the same typed error.
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    retry_on: tuple = (TransientStorageError, PageCorruptError)
    sleep: "object" = field(default=time.sleep, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * self.multiplier ** (attempt - 1),
                   self.max_delay)


#: Used by the buffer pool unless a caller passes its own policy.
DEFAULT_RETRY = RetryPolicy()

#: Never retry (a policy, not ``None``, so call sites stay uniform).
NO_RETRY = RetryPolicy(max_attempts=1)


def retry_call(fn, *args, policy: RetryPolicy = DEFAULT_RETRY,
               on_retry=None, **kwargs):
    """Call ``fn`` under ``policy``; returns its result or re-raises.

    ``on_retry``, when given, is invoked as ``on_retry(attempt, exc)``
    before each backoff sleep — the buffer pool uses it to count
    retries in its stats.
    """
    attempt = 1
    while True:
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            policy.sleep(policy.delay_for(attempt))
            attempt += 1
