"""The similarity measure: λ/Λ quality, ψ/Ψ conformity, and score (§4).

``score(a, Q) = Λ(a, Q) + Ψ(a, Q)`` is a distance — lower is more
relevant — coherent with the weighted edit-cost relevance of
Definition 4 (Theorem 1).  The weights default to the configuration of
the paper's experiments (a=1, b=0.5, c=2, d=1, e=1).
"""

from .conformity import (conformity, conformity_degree, pairwise_degrees, psi)
from .quality import lambda_cost, quality
from .relevance import (Operation, Transformation, gamma, is_more_relevant,
                        operation_weight)
from .score import ScoreBreakdown, score_paths, score_value
from .weights import PAPER_WEIGHTS, ScoringWeights

__all__ = [
    "Operation", "PAPER_WEIGHTS", "ScoreBreakdown", "ScoringWeights",
    "Transformation", "conformity", "conformity_degree", "gamma",
    "is_more_relevant", "lambda_cost", "operation_weight",
    "pairwise_degrees", "psi", "quality", "score_paths", "score_value",
]
