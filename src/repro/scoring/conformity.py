"""The conformity component of the score: ψ and Ψ (§4.1).

Conformity measures how faithfully the *combination* of the retrieved
paths mirrors the combination of the query paths: for every pair of
query paths ``(qᵢ, qⱼ)`` that share nodes, the corresponding data paths
``(pᵢ, pⱼ)`` should share nodes too.

The paper presents two views of the same quantity and we expose both:

- :func:`psi` — the distance form entering ``score`` (§4.1 formula):
  ``ψ = e·|χ(qᵢ,qⱼ)| / |χ(pᵢ,pⱼ)|`` when the data paths intersect, and
  the full penalty ``e·|χ(qᵢ,qⱼ)|`` when they do not.  Perfect
  conformity yields ``e``; a deficient intersection yields more.
- :func:`conformity_degree` — the normalised ratio
  ``|χ(pᵢ,pⱼ)| / |χ(qᵢ,qⱼ)|`` used as the forest edge labels of Fig. 4
  (1.0 = perfectly conforming, the paper draws < 1 edges dashed).

Fig. 4's labels are the *degree* (the pair ``(p7, p1)`` is labelled
``0.5``), while the formula text defines the *distance*; see DESIGN.md
for the reconciliation.  Both are monotone images of each other, so
Theorem 1 holds either way.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..paths.intersection import IntersectionGraph, chi
from ..paths.model import Path
from .weights import PAPER_WEIGHTS, ScoringWeights


def psi(query_a: Path, query_b: Path, data_a: Path, data_b: Path,
        weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """The ψ distance of §4.1 for one pair of query/data paths.

    Returns 0 for query pairs that do not intersect (they impose no
    conformity constraint, so they contribute nothing to Ψ).

    Example — Fig. 1's Q1 chain next to a second query path reusing
    both of its variables.  When the data paths share both junction
    nodes (``A0056`` and ``B1432``) conformity is perfect and ψ equals
    the weight ``e = 1``; when they share only the bill, the pair
    conforms half-way (Fig. 4 would label the forest edge ``0.5``) and
    the distance doubles:

    >>> from repro.paths.model import Path
    >>> gov = "http://example.org/govtrack/"
    >>> q_chain = Path([gov + "CarlaBunes", "?v1", "?v2"],
    ...                [gov + "sponsor", gov + "aTo"])
    >>> q_pair = Path(["?v1", "?v2"], [gov + "aTo"])
    >>> p_chain = Path([gov + "CarlaBunes", gov + "A0056", gov + "B1432"],
    ...                [gov + "sponsor", gov + "aTo"])
    >>> p_good = Path([gov + "A0056", gov + "B1432"], [gov + "aTo"])
    >>> psi(q_chain, q_pair, p_chain, p_good)
    1.0
    >>> p_half = Path([gov + "A0930", gov + "B1432"], [gov + "aTo"])
    >>> psi(q_chain, q_pair, p_chain, p_half)
    2.0
    >>> conformity_degree(q_chain, q_pair, p_chain, p_half)
    0.5
    """
    query_common = len(chi(query_a, query_b))
    if query_common == 0:
        return 0.0
    data_common = len(chi(data_a, data_b))
    if data_common == 0:
        return weights.conformity * query_common
    return weights.conformity * query_common / data_common


def conformity_degree(query_a: Path, query_b: Path,
                      data_a: Path, data_b: Path) -> float:
    """The Fig. 4 forest edge label: |χ(p)| / |χ(q)| (1.0 = perfect).

    Query pairs with no intersection have degree 1.0 by convention
    (nothing to conform to).
    """
    query_common = len(chi(query_a, query_b))
    if query_common == 0:
        return 1.0
    data_common = len(chi(data_a, data_b))
    return data_common / query_common


def conformity(query_ig: IntersectionGraph, data_paths: Sequence[Path],
               weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """The Ψ of §4.1 over a full candidate combination.

    ``data_paths[i]`` is the data path aligned to the i-th query path
    of ``query_ig``; the sum ranges over the IG's edges — exactly the
    query path pairs with nodes in common, the pairs ψ is defined on.
    """
    if len(data_paths) != len(query_ig):
        raise ValueError(f"expected {len(query_ig)} data paths "
                         f"(one per query path), got {len(data_paths)}")
    total = 0.0
    for i, j, shared in query_ig.edges():
        data_common = len(chi(data_paths[i], data_paths[j]))
        if data_common == 0:
            total += weights.conformity * len(shared)
        else:
            total += weights.conformity * len(shared) / data_common
    return total


def pairwise_degrees(query_ig: IntersectionGraph,
                     data_paths: Sequence[Path]) -> dict[tuple[int, int], float]:
    """Conformity degrees for every IG edge — the Fig. 4 labels."""
    degrees = {}
    for i, j, shared in query_ig.edges():
        data_common = len(chi(data_paths[i], data_paths[j]))
        degrees[(i, j)] = data_common / len(shared)
    return degrees
