"""The quality component of the score: λ and Λ (§4.1, Equation 1).

``λ(p, q)`` is the weighted count of the alignment's operations::

    λ(p, q) = a·n⁻_N + b·n↑_N + c·n⁻_E + d·n↑_E

and ``Λ(a, Q) = Σ_{q ∈ Q} λ(p_q, q)`` sums it over every query path
``q`` with ``p_q`` the data path aligned to it.  Deletions enter at
their configured (default zero) weights so ablations can turn them on.
"""

from __future__ import annotations

from typing import Iterable

from ..paths.alignment import Alignment, AlignmentCounts
from .weights import PAPER_WEIGHTS, ScoringWeights


def lambda_cost(counts: "AlignmentCounts | Alignment",
                weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """The λ of Equation 1 for one aligned path pair.

    Accepts either raw :class:`AlignmentCounts` or a full
    :class:`Alignment` (its counts are used).

    Example — Fig. 1's amendment chain.  Binding the query's variables
    to Carla Bunes' concrete amendment and bill is pure substitution,
    which Definition 4 prices at zero; swapping the ``aTo`` edge for a
    different label pays the edge-mismatch weight ``c = 2``:

    >>> from repro.paths.alignment import align
    >>> from repro.paths.model import Path
    >>> gov = "http://example.org/govtrack/"
    >>> query = Path([gov + "CarlaBunes", "?v1", "?v2"],
    ...              [gov + "sponsor", gov + "aTo"])
    >>> data = Path([gov + "CarlaBunes", gov + "A0056", gov + "B1432"],
    ...             [gov + "sponsor", gov + "aTo"])
    >>> lambda_cost(align(data, query))
    0.0
    >>> detour = Path([gov + "CarlaBunes", gov + "A0056", gov + "B1432"],
    ...               [gov + "sponsor", gov + "proposedTo"])
    >>> lambda_cost(align(detour, query))
    2.0
    """
    if isinstance(counts, Alignment):
        counts = counts.counts
    return (weights.node_mismatch * counts.node_mismatches
            + weights.node_insertion * counts.node_insertions
            + weights.edge_mismatch * counts.edge_mismatches
            + weights.edge_insertion * counts.edge_insertions
            + weights.node_deletion * counts.node_deletions
            + weights.edge_deletion * counts.edge_deletions)


def quality(alignments: Iterable[Alignment],
            weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """The Λ of §4.1: total alignment cost over all query paths.

    ``alignments`` holds one alignment per query path of the answer
    being scored (a query path left unmatched contributes through its
    deletion counts, which the engine encodes as an alignment against
    an empty stand-in — see ``repro.engine.search``).
    """
    return sum(lambda_cost(alignment.counts, weights)
               for alignment in alignments)
