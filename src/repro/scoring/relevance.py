"""The reference notion of relevance (Definitions 3–4) and Theorem 1 support.

An (approximate) answer to ``Q`` is ``τ(φ(Q))`` for a substitution φ
and a transformation τ built from six basic update operations.  The
cost ``γ(τ)`` of a transformation is its ω-weighted size; answer ``a1``
is *more relevant* than ``a2`` when ``γ(τ1) < γ(τ2)``.

The paper's §3.1 text writes ``γ(τ) = z · Σ ω(εᵢ)`` but its Theorem 1
proof computes the plain weighted sum (``γ(τᵢ) = n⁻_N·a + n↑_N·b +
n⁻_E·c + n↑_E·d``); the extra factor ``z`` would break the proof's own
inequality chain, so we implement the plain sum and treat the ``z ·``
as a typo (documented in DESIGN.md).

This module exists mostly so tests and the evaluation oracle can check
that ``score`` is coherent with relevance (Theorem 1): it converts
alignments into explicit transformations and prices them with the same
ω the scoring weights encode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..paths.alignment import Alignment
from .weights import PAPER_WEIGHTS, ScoringWeights


class Operation(enum.Enum):
    """The six basic update operations of §3.1."""

    NODE_INSERTION = "node-insertion"
    NODE_DELETION = "node-deletion"
    NODE_RELABELING = "node-relabeling"
    EDGE_INSERTION = "edge-insertion"
    EDGE_DELETION = "edge-deletion"
    EDGE_RELABELING = "edge-relabeling"


def operation_weight(op: Operation,
                     weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """The ω of Definition 4 under the Theorem 1 proof's assignment.

    Relabelings correspond to the mismatch counters of Equation 1
    (a for nodes, c for edges); insertions to b and d; deletions to the
    configured (default zero) deletion weights.
    """
    mapping = {
        Operation.NODE_RELABELING: weights.node_mismatch,
        Operation.NODE_INSERTION: weights.node_insertion,
        Operation.EDGE_RELABELING: weights.edge_mismatch,
        Operation.EDGE_INSERTION: weights.edge_insertion,
        Operation.NODE_DELETION: weights.node_deletion,
        Operation.EDGE_DELETION: weights.edge_deletion,
    }
    return mapping[op]


@dataclass(frozen=True)
class Transformation:
    """A τ: an explicit sequence of basic update operations."""

    operations: tuple[Operation, ...]

    @classmethod
    def from_operations(cls, operations: Iterable[Operation]) -> "Transformation":
        return cls(tuple(operations))

    @classmethod
    def from_alignment(cls, alignment: Alignment) -> "Transformation":
        """The τ a single path alignment implies."""
        counts = alignment.counts
        ops: list[Operation] = []
        ops.extend([Operation.NODE_RELABELING] * counts.node_mismatches)
        ops.extend([Operation.NODE_INSERTION] * counts.node_insertions)
        ops.extend([Operation.EDGE_RELABELING] * counts.edge_mismatches)
        ops.extend([Operation.EDGE_INSERTION] * counts.edge_insertions)
        ops.extend([Operation.NODE_DELETION] * counts.node_deletions)
        ops.extend([Operation.EDGE_DELETION] * counts.edge_deletions)
        return cls(tuple(ops))

    @classmethod
    def from_alignments(cls, alignments: Sequence[Alignment]) -> "Transformation":
        """The τ of a whole answer: concatenation over its paths."""
        ops: list[Operation] = []
        for alignment in alignments:
            ops.extend(cls.from_alignment(alignment).operations)
        return cls(tuple(ops))

    @property
    def is_empty(self) -> bool:
        """Empty τ ⇔ the answer is exact (Definition 3)."""
        return not self.operations

    def cost(self, weights: ScoringWeights = PAPER_WEIGHTS) -> float:
        """γ(τ): the ω-weighted size of the transformation."""
        return sum(operation_weight(op, weights) for op in self.operations)

    def __len__(self):
        return len(self.operations)


def gamma(transformation: Transformation,
          weights: ScoringWeights = PAPER_WEIGHTS) -> float:
    """Module-level alias for ``transformation.cost`` (paper notation)."""
    return transformation.cost(weights)


def is_more_relevant(tau_1: Transformation, tau_2: Transformation,
                     weights: ScoringWeights = PAPER_WEIGHTS) -> bool:
    """Definition 4: ``a1 = τ1(φ1(Q))`` is more relevant than ``a2``."""
    return tau_1.cost(weights) < tau_2.cost(weights)
