"""The full similarity measure: score(a, Q) = Λ(a, Q) + Ψ(a, Q) (§4.1).

Lower scores mean more relevant answers (the measure is a distance
approximating weighted graph edit cost).  :func:`score_paths` scores a
candidate combination of data paths against the query's paths;
:class:`ScoreBreakdown` keeps the per-component values for inspection,
explanation and the engine's incremental search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..paths.alignment import Alignment, LabelMatcher, align, exact_match
from ..paths.intersection import IntersectionGraph
from ..paths.model import Path
from .conformity import conformity
from .quality import lambda_cost, quality
from .weights import PAPER_WEIGHTS, ScoringWeights


@dataclass(frozen=True)
class ScoreBreakdown:
    """A score with its Λ / Ψ components and per-path alignments."""

    quality: float              # Λ(a, Q)
    conformity: float           # Ψ(a, Q)
    alignments: tuple[Alignment, ...]

    @property
    def total(self) -> float:
        """score(a, Q) = Λ + Ψ."""
        return self.quality + self.conformity

    def lambda_of(self, index: int) -> float:
        """Reconstruct λ for the ``index``-th query path (paper weights)."""
        return lambda_cost(self.alignments[index].counts)

    def __str__(self):
        return (f"score={self.total:.3f} "
                f"(Λ={self.quality:.3f}, Ψ={self.conformity:.3f})")


def score_paths(data_paths: Sequence[Path], query_paths: Sequence[Path],
                weights: ScoringWeights = PAPER_WEIGHTS,
                matcher: LabelMatcher = exact_match,
                query_ig: "IntersectionGraph | None" = None) -> ScoreBreakdown:
    """Score a candidate answer given as one data path per query path.

    ``data_paths[i]`` is aligned against ``query_paths[i]``; Λ sums the
    λ costs and Ψ sums ψ over the intersecting query path pairs.  The
    caller can pass a precomputed ``query_ig`` (the engine reuses one
    per query) or let this function build it.

    Example — Fig. 1's Q1 chain plus a second query path reusing its
    variables, answered by data paths that substitute cleanly (Λ = 0)
    but share only the bill node, so half the required intersection is
    missing and Ψ pays double the perfect-conformity weight:

    >>> from repro.paths.model import Path
    >>> gov = "http://example.org/govtrack/"
    >>> q_chain = Path([gov + "CarlaBunes", "?v1", "?v2"],
    ...                [gov + "sponsor", gov + "aTo"])
    >>> q_pair = Path(["?v1", "?v2"], [gov + "aTo"])
    >>> p_chain = Path([gov + "CarlaBunes", gov + "A0056", gov + "B1432"],
    ...                [gov + "sponsor", gov + "aTo"])
    >>> p_half = Path([gov + "A0930", gov + "B1432"], [gov + "aTo"])
    >>> breakdown = score_paths([p_chain, p_half], [q_chain, q_pair])
    >>> print(breakdown)
    score=2.000 (Λ=0.000, Ψ=2.000)
    >>> breakdown.total
    2.0
    """
    if len(data_paths) != len(query_paths):
        raise ValueError(f"need one data path per query path: "
                         f"{len(data_paths)} vs {len(query_paths)}")
    if query_ig is None:
        query_ig = IntersectionGraph(query_paths)
    alignments = tuple(align(p, q, matcher)
                       for p, q in zip(data_paths, query_paths))
    return ScoreBreakdown(
        quality=quality(alignments, weights),
        conformity=conformity(query_ig, list(data_paths), weights),
        alignments=alignments,
    )


def score_value(data_paths: Sequence[Path], query_paths: Sequence[Path],
                weights: ScoringWeights = PAPER_WEIGHTS,
                matcher: LabelMatcher = exact_match) -> float:
    """Just the scalar score(a, Q) — convenience over :func:`score_paths`.

    >>> from repro.paths.model import Path
    >>> gov = "http://example.org/govtrack/"
    >>> q = Path([gov + "CarlaBunes", "?v1"], [gov + "sponsor"])
    >>> p = Path([gov + "CarlaBunes", gov + "A0056"], [gov + "sponsor"])
    >>> score_value([p], [q])
    0.0
    """
    return score_paths(data_paths, query_paths, weights, matcher).total
