"""Scoring weights: the parameters a, b, c, d, e of §4.1.

The weights realise the relevance function ω of Definition 4 on the
basic update operations:

====================  ======  ===========================================
parameter             symbol  operation weighted
====================  ======  ===========================================
``node_mismatch``     a       a node of p whose label is not in q (n⁻_N)
``node_insertion``    b       a node τ inserts into q (n↑_N)
``edge_mismatch``     c       an edge of p whose label is not in q (n⁻_E)
``edge_insertion``    d       an edge τ inserts into q (n↑_E)
``conformity``        e       the weight of the conformity term ψ
``node_deletion``     —       ω fixed to 0 in the paper's Theorem 1 proof
``edge_deletion``     —       ω fixed to 0, same reason
====================  ======  ===========================================

The paper's experiments use ``a=1, b=0.5, c=2, d=1`` (§6.2) with
``e=1``; :meth:`ScoringWeights.paper` returns exactly that
configuration, and it is the library default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ScoringWeights:
    """Weight configuration for λ, ψ and the reference edit cost γ."""

    node_mismatch: float = 1.0     # a
    node_insertion: float = 0.5    # b
    edge_mismatch: float = 2.0     # c
    edge_insertion: float = 1.0    # d
    conformity: float = 1.0        # e
    node_deletion: float = 0.0     # ω(node deletion), 0 per Theorem 1 proof
    edge_deletion: float = 0.0     # ω(edge deletion), 0 per Theorem 1 proof

    def __post_init__(self):
        for name in ("node_mismatch", "node_insertion", "edge_mismatch",
                     "edge_insertion", "conformity", "node_deletion",
                     "edge_deletion"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    @classmethod
    def paper(cls) -> "ScoringWeights":
        """The configuration of the paper's experiments (§6.2)."""
        return cls(node_mismatch=1.0, node_insertion=0.5,
                   edge_mismatch=2.0, edge_insertion=1.0, conformity=1.0)

    @classmethod
    def uniform(cls, weight: float = 1.0) -> "ScoringWeights":
        """All mismatch/insertion operations at one weight (ablations)."""
        return cls(node_mismatch=weight, node_insertion=weight,
                   edge_mismatch=weight, edge_insertion=weight,
                   conformity=weight)

    @classmethod
    def structure_only(cls) -> "ScoringWeights":
        """Only insertions cost; label mismatches are free (ablation).

        Useful to isolate how much of Sama's effectiveness comes from
        topology versus label agreement.
        """
        return cls(node_mismatch=0.0, node_insertion=0.5,
                   edge_mismatch=0.0, edge_insertion=1.0, conformity=1.0)

    @classmethod
    def labels_only(cls) -> "ScoringWeights":
        """Only label mismatches cost; insertions are free (ablation)."""
        return cls(node_mismatch=1.0, node_insertion=0.0,
                   edge_mismatch=2.0, edge_insertion=0.0, conformity=0.0)

    def with_conformity(self, weight: float) -> "ScoringWeights":
        """A copy with the conformity weight e replaced."""
        return replace(self, conformity=weight)

    @property
    def insertion_pair_cost(self) -> float:
        """Cost of inserting one (edge, node) pair: b + d."""
        return self.node_insertion + self.edge_insertion


#: The default configuration, matching the paper's experiments.
PAPER_WEIGHTS = ScoringWeights.paper()
