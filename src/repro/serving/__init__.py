"""The serving layer: a long-lived, concurrent query service.

The paper's §5 splits Sama into an offline index build and an online
query phase; this package is the online phase grown into a service:

- :class:`ServingEngine` — one resident :class:`~repro.engine.sama.
  SamaEngine` behind a bounded worker pool with admission control
  (typed :class:`~repro.resilience.errors.OverloadedError` on
  overload, deadline-tightening under queue pressure);
- :class:`ResultCache` — an LRU with a byte budget, keyed by the
  canonical query form + ``k`` + the index *epoch*, so incremental
  index updates invalidate exactly the affected entries;
- :mod:`repro.serving.canonical` — alpha-renaming + pattern-order
  normalisation behind those keys;
- :mod:`repro.serving.http` / :mod:`repro.serving.client` — a
  stdlib-only JSON-over-HTTP front end (``POST /query``,
  ``GET /healthz``, ``GET /stats``, ``GET /metrics`` in Prometheus
  text format) and its client helper;
- :mod:`repro.serving.aserve` — the asyncio front end for
  thousand-connection workloads: HTTP/1.1 keep-alive with strict
  framing, bounded connection backlog, single-flight coalescing of
  identical in-flight queries, and per-tenant token-bucket quotas
  (``sama serve --frontend asyncio``).

CLI: ``sama serve INDEX_DIR`` and ``sama bench-serve INDEX_DIR``.
"""

from .aserve import (AsyncServingServer, SingleFlight, TenantQuotas,
                     TokenBucket, serve_async)
from .cache import CachedResult, ResultCache, ResultCacheStats
from .canonical import cache_key, canonical_form
from .client import ServingClient, ServingClientError
from .http import ServingRequestHandler, ServingServer, serve
from .service import (RequestFingerprint, ServedResult, ServingConfig,
                      ServingEngine, ServingStats, StatsSnapshot,
                      answers_payload)

__all__ = [
    "AsyncServingServer", "CachedResult", "RequestFingerprint",
    "ResultCache", "ResultCacheStats", "ServedResult", "ServingClient",
    "ServingClientError", "ServingConfig", "ServingEngine",
    "ServingRequestHandler", "ServingServer", "ServingStats",
    "SingleFlight", "StatsSnapshot", "TenantQuotas", "TokenBucket",
    "answers_payload", "cache_key", "canonical_form", "serve",
    "serve_async",
]
