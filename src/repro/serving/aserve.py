"""The asyncio HTTP/1.1 front end: keep-alive, single-flight, quotas.

The threaded front end (:mod:`repro.serving.http`) holds one OS thread
per connection — fine for tens of clients, hopeless for thousands.
This module serves the same four endpoints from a single event loop
(stdlib ``asyncio`` only), with three additions the ROADMAP's serving
north star asks for:

- **Correct HTTP/1.1 framing under keep-alive.**  Requests are read
  with explicit ``Content-Length`` framing (bodies via
  ``readexactly``, never a short read), every response carries its own
  ``Content-Length``, and any condition that leaves bytes unaccounted
  for on the wire (oversized body, malformed request line, truncated
  body) answers with ``Connection: close`` and drops the connection —
  a desynchronised connection is never reused.

- **Single-flight deduplication.**  N concurrent requests for the same
  canonical-form × k × epoch key trigger *one* engine computation; the
  other N−1 await the leader's ``asyncio.Future`` and receive the
  byte-identical response body.  Under hot-query traffic (the 61.8×
  warm-cache result of ``BENCH_serving.json``) this removes the cold
  stampede the cache alone cannot: the cache only helps *after* the
  first computation finishes, single-flight helps *while* it runs.
  Requests carrying an explicit per-request ``deadline_ms`` bypass
  coalescing — a degraded result computed under the leader's budget
  must not be shared with callers that asked for a different one.

- **Per-tenant token-bucket quotas.**  Tenants are identified by the
  ``X-API-Key`` header (absent → the ``"anonymous"`` tenant).  Each
  tenant's bucket refills at ``tenant_rate`` tokens/second up to
  ``tenant_burst``; an empty bucket answers ``429`` with a
  ``Retry-After`` computed from the actual refill time.  Admission
  happens *ahead of* the engine semaphore, so one chatty tenant is
  throttled before it can occupy serving capacity that other tenants
  paid for.

Connections beyond ``max_connections`` are refused immediately with a
``503`` + ``Connection: close`` (bounded backlog: overload becomes a
fast typed signal, never an unbounded accept queue), and every
connection gets per-read/per-write timeouts so a slow-loris client
holds neither a worker nor the loop.

The public surface mirrors :class:`~repro.serving.http.ServingServer`
(``serve_background`` / ``serve_forever`` / ``shutdown`` /
``graceful_shutdown``), so ``sama serve --frontend asyncio`` and the
SIGTERM drain path are drop-in.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from ..obs import Sample, get_registry
from ..resilience.errors import (InvalidQueryError, OverloadedError,
                                 ParseError, QuotaExceededError, ReproError)
from .http import MAX_BODY_BYTES
from .service import ServingEngine

#: Upper bound on the request head (request line + headers).
MAX_HEAD_BYTES = 16 << 10

_JSON = "application/json"


class TokenBucket:
    """One tenant's admission budget: ``rate`` tokens/s, ``burst`` cap.

    Lazily refilled on each :meth:`acquire` from a monotonic clock —
    no background task per tenant.  Thread-safe via the caller (the
    event loop serialises access; the CLI path never shares buckets
    across loops).
    """

    __slots__ = ("rate", "burst", "tokens", "updated",
                 "requests", "throttled")

    def __init__(self, rate: float, burst: float,
                 now: "float | None" = None):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic() if now is None else now
        self.requests = 0
        self.throttled = 0

    def acquire(self, now: "float | None" = None) -> "float | None":
        """Take one token; ``None`` on success, else seconds-to-retry."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        self.requests += 1
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        self.throttled += 1
        return (1.0 - self.tokens) / self.rate


class TenantQuotas:
    """The per-tenant bucket map plus its counters.

    ``rate=None`` disables quotas entirely (every acquire succeeds).
    ``api_keys``, when given, is an allow-list: a request whose key is
    not in it is rejected outright (403), keeping unknown tenants from
    minting themselves fresh buckets.
    """

    #: Hard cap on distinct tenant buckets — beyond it, unknown keys
    #: share one overflow bucket instead of letting a key-minting
    #: client grow the map without bound.
    MAX_TENANTS = 4096

    def __init__(self, rate: "float | None" = None, burst: float = 10.0,
                 api_keys: "set[str] | None" = None):
        self.rate = rate
        self.burst = burst
        self.api_keys = set(api_keys) if api_keys else None
        self._buckets: "dict[str, TokenBucket]" = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if (len(self._buckets) >= self.MAX_TENANTS
                    and tenant not in self._buckets):
                tenant = "(overflow)"
                bucket = self._buckets.get(tenant)
                if bucket is not None:
                    return bucket
            # rate 1.0 is a placeholder for counting-only buckets
            # (quotas disabled): their acquire() is never called.
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate if self.rate is not None else 1.0, self.burst)
        return bucket

    def admit(self, tenant: str) -> None:
        """Count the request; :class:`QuotaExceededError` when over."""
        if self.api_keys is not None and tenant not in self.api_keys:
            raise QuotaExceededError(
                f"unknown API key {tenant!r}", tenant=tenant,
                retry_after_s=None)
        bucket = self._bucket(tenant)
        if self.rate is None:
            bucket.requests += 1
            return
        retry_after = bucket.acquire()
        if retry_after is not None:
            raise QuotaExceededError(
                f"tenant {tenant!r} over its {self.rate:g} req/s quota",
                tenant=tenant, retry_after_s=retry_after)

    def snapshot(self) -> "dict[str, dict]":
        return {tenant: {"requests": bucket.requests,
                         "throttled": bucket.throttled}
                for tenant, bucket in sorted(self._buckets.items())}


class SingleFlight:
    """The in-flight map: one leader future per request key.

    Followers of a key await the leader's future and share its
    *serialised response bytes* — not a re-rendering — so coalesced
    responses are bit-identical by construction.
    """

    def __init__(self):
        self._inflight: "dict[str, asyncio.Future]" = {}
        self.leaders = 0
        self.coalesced = 0

    def lead_or_follow(self, key: str) -> "tuple[bool, asyncio.Future]":
        """(is_leader, future) for ``key``; leaders must later resolve
        the future via :meth:`finish` (success or failure, always)."""
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return False, future
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        return True, future

    def finish(self, key: str, future: "asyncio.Future",
               result=None, error: "BaseException | None" = None) -> None:
        self._inflight.pop(key, None)
        if not future.done():
            if error is not None:
                future.set_exception(error)
                # The followers all retrieve it; silence "exception was
                # never retrieved" if there were none.
                future.exception()
            else:
                future.set_result(result)


class _ConnectionStats:
    """Counters the front end exposes on ``/stats`` and ``/metrics``."""

    def __init__(self):
        self.accepted = 0
        self.rejected = 0
        self.active = 0
        self.requests = 0
        self.framing_close = 0   # connections closed to protect framing
        self.timeouts = 0


class AsyncServingServer:
    """A :class:`ServingEngine` behind an asyncio HTTP/1.1 listener.

    The event loop runs on a dedicated thread so the public lifecycle
    API is synchronous and interchangeable with
    :class:`~repro.serving.http.ServingServer` — the CLI, the tests
    and the SIGTERM drain path treat both front ends identically.
    """

    def __init__(self, serving: ServingEngine, host: str = "127.0.0.1",
                 port: int = 8080, *, max_connections: int = 1024,
                 read_timeout_s: float = 30.0,
                 write_timeout_s: float = 30.0,
                 tenant_rate: "float | None" = None,
                 tenant_burst: float = 10.0,
                 api_keys: "set[str] | None" = None,
                 verbose: bool = False):
        self.serving = serving
        self._host = host
        self._requested_port = port
        self.max_connections = max_connections
        self.read_timeout_s = read_timeout_s
        self.write_timeout_s = write_timeout_s
        self.verbose = verbose
        self.quotas = TenantQuotas(rate=tenant_rate, burst=tenant_burst,
                                   api_keys=api_keys)
        self.flight = SingleFlight()
        self.connections = _ConnectionStats()
        self._writers: "set[asyncio.StreamWriter]" = set()
        self.registry = serving.registry
        self._disconnects = self.registry.counter(
            "sama_client_disconnects_total",
            "Responses aborted because the client disconnected mid-write")
        self._waiters_total = self.registry.counter(
            "sama_singleflight_waiters_total",
            "Requests answered by awaiting another request's computation")
        self._collector = self._collect_samples
        self.registry.register_collector(self._collector, owner=self)

        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: "BaseException | None" = None
        self._bound: "tuple[str, int] | None" = None
        self._closed = False

    # -- lifecycle (sync facade over the loop thread) ----------------------

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self._host

    @property
    def port(self) -> int:
        return self._bound[1] if self._bound else self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_background(self) -> "AsyncServingServer":
        """Start the loop thread + listener; returns once bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._run_loop,
                                        name="sama-aserve", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        if self._bound is None:
            raise RuntimeError("asyncio front end failed to bind in time")
        return self

    def serve_forever(self) -> None:
        """CLI path: start in the background, block until shutdown."""
        self.serve_background()
        try:
            while not self._stopped.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:
            raise

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._handle_connection,
                                         self._host, self._requested_port))
                sock = self._server.sockets[0]
                self._bound = sock.getsockname()[:2]
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
            # Cancel whatever survived the stop so the loop can close.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_default_executor())
        finally:
            loop.close()
            self._loop = None
            self._stopped.set()

    def shutdown(self, close_engine: bool = True) -> None:
        """Stop the listener and the loop; drain the engine's workers."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is not None and loop.is_running():
            async def _stop():
                if self._server is not None:
                    self._server.close()
                    await self._server.wait_closed()
                # Close idle keep-alive connections so their handler
                # tasks unwind on EOF instead of being cancelled inside
                # ``readuntil`` (abrupt cancellation makes the stdlib
                # stream protocol log spurious CancelledError
                # tracebacks at loop teardown).
                for writer in list(self._writers):
                    try:
                        writer.close()
                    except Exception:
                        pass
                for _ in range(50):
                    if not self._writers:
                        break
                    await asyncio.sleep(0.02)
                loop.stop()
            asyncio.run_coroutine_threadsafe(_stop(), loop)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.registry.unregister_collector(self._collector)
        self.serving.close(close_engine=close_engine)
        self._stopped.set()

    def graceful_shutdown(self, drain_deadline_s: "float | None" = None,
                          close_engine: bool = True) -> bool:
        """SIGTERM parity with the threaded server: drain, then stop.

        New requests are refused with 503 + ``Retry-After`` the moment
        the drain starts (the listener stays up so load balancers see
        ``/healthz`` flip); in-flight requests get ``drain_deadline_s``
        to finish before the loop stops.
        """
        drained = self.serving.drain(drain_deadline_s)
        self.shutdown(close_engine=close_engine)
        return drained

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        stats = self.connections
        if stats.active >= self.max_connections:
            # Bounded backlog: refuse *now* with a typed signal rather
            # than queueing the accept into unbounded latency.
            stats.rejected += 1
            await self._respond(writer, 503, {
                "error": "OverloadedError",
                "message": f"connection backlog full "
                           f"({self.max_connections} connections)",
            }, headers={"Retry-After": "1"}, close=True)
            await self._close_writer(writer)
            return
        stats.accepted += 1
        stats.active += 1
        self._writers.add(writer)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            self._disconnects.inc()
        except asyncio.CancelledError:
            raise
        except Exception:
            # A handler bug must not take the loop down; the connection
            # is sacrificed, the server keeps serving.
            stats.framing_close += 1
        finally:
            stats.active -= 1
            self._writers.discard(writer)
            await self._close_writer(writer)

    async def _serve_connection(self, reader, writer) -> None:
        """The keep-alive loop: one request per iteration."""
        while True:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.read_timeout_s)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    # Bytes arrived but the head never completed: the
                    # framing is broken, close without reuse.
                    self.connections.framing_close += 1
                return  # clean EOF between requests: client is done
            except asyncio.LimitOverrunError:
                self.connections.framing_close += 1
                await self._respond(writer, 431, {
                    "error": "BadRequest",
                    "message": f"request head over {MAX_HEAD_BYTES} bytes",
                }, close=True)
                return
            except asyncio.TimeoutError:
                self.connections.timeouts += 1
                await self._respond(writer, 408, {
                    "error": "RequestTimeout",
                    "message": f"no request within "
                               f"{self.read_timeout_s:g}s",
                }, close=True)
                return
            if len(head) > MAX_HEAD_BYTES:
                self.connections.framing_close += 1
                await self._respond(writer, 431, {
                    "error": "BadRequest",
                    "message": f"request head over {MAX_HEAD_BYTES} bytes",
                }, close=True)
                return
            keep_alive = await self._serve_request(head, reader, writer)
            if not keep_alive:
                return

    async def _serve_request(self, head: bytes, reader, writer) -> bool:
        """Answer one framed request; True to keep the connection."""
        self.connections.requests += 1
        try:
            request_line, headers = _parse_head(head)
            method, path, version = request_line
        except ValueError as exc:
            self.connections.framing_close += 1
            await self._respond(writer, 400, {
                "error": "BadRequest", "message": str(exc)}, close=True)
            return False

        # HTTP/1.1 defaults to keep-alive; 1.0 must opt in.
        connection = headers.get("connection", "").lower()
        keep_alive = (connection != "close" if version == "HTTP/1.1"
                      else connection == "keep-alive")

        if "chunked" in headers.get("transfer-encoding", "").lower():
            # Chunked bodies are not framed by Content-Length; refuse
            # rather than guess (and never reuse the connection).
            await self._respond(writer, 411, {
                "error": "BadRequest",
                "message": "chunked bodies are not supported; send "
                           "Content-Length"}, close=True)
            return False

        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            await self._respond(writer, 400, {
                "error": "BadRequest",
                "message": "malformed Content-Length"}, close=True)
            return False
        if length > MAX_BODY_BYTES:
            # Oversized: never read (or skip) the body — close instead.
            await self._respond(writer, 413, {
                "error": "BadRequest",
                "message": f"request body over {MAX_BODY_BYTES} bytes",
            }, close=True)
            return False
        body = b""
        if length > 0:
            try:
                body = await asyncio.wait_for(reader.readexactly(length),
                                              self.read_timeout_s)
            except asyncio.IncompleteReadError:
                self.connections.framing_close += 1
                return False
            except asyncio.TimeoutError:
                self.connections.timeouts += 1
                await self._respond(writer, 408, {
                    "error": "RequestTimeout",
                    "message": f"request body not received within "
                               f"{self.read_timeout_s:g}s"}, close=True)
                return False

        if method == "GET":
            return await self._handle_get(path, writer, keep_alive)
        if method == "POST":
            return await self._handle_post(path, headers, body, writer,
                                           keep_alive)
        await self._respond(writer, 405, {
            "error": "MethodNotAllowed", "message": method},
            headers={"Allow": "GET, POST"}, close=not keep_alive)
        return keep_alive

    async def _handle_get(self, path, writer, keep_alive) -> bool:
        if path == "/healthz":
            payload = self.serving.health_payload()
            status = 503 if payload["status"] == "draining" else 200
            await self._respond(writer, status, payload,
                                close=not keep_alive)
        elif path == "/stats":
            await self._respond(writer, 200, self.stats_payload(),
                                close=not keep_alive)
        elif path == "/metrics":
            body = self.serving.render_metrics().encode("utf-8")
            await self._respond_raw(
                writer, 200, body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                close=not keep_alive)
        else:
            await self._respond(writer, 404, {
                "error": "NotFound", "message": path}, close=not keep_alive)
        return keep_alive

    async def _handle_post(self, path, headers, body, writer,
                           keep_alive) -> bool:
        if path != "/query":
            await self._respond(writer, 404, {
                "error": "NotFound", "message": path}, close=not keep_alive)
            return keep_alive
        try:
            document = _parse_query_document(body)
        except ValueError as exc:
            await self._respond(writer, 400, {
                "error": "BadRequest", "message": str(exc)},
                close=not keep_alive)
            return keep_alive
        query, k, deadline_ms = document

        tenant = headers.get("x-api-key", "").strip() or "anonymous"
        try:
            self.quotas.admit(tenant)
        except QuotaExceededError as exc:
            if exc.retry_after_s is None:
                await self._respond(writer, 403, {
                    "error": "QuotaExceededError", "message": str(exc),
                    "tenant": tenant}, close=not keep_alive)
                return keep_alive
            retry_after = max(1, int(exc.retry_after_s + 0.999))
            await self._respond(writer, 429, {
                "error": "QuotaExceededError", "message": str(exc),
                "tenant": tenant,
                "retry_after_s": round(exc.retry_after_s, 3),
            }, headers={"Retry-After": str(retry_after)},
                close=not keep_alive)
            return keep_alive

        status, payload, raw = await self._answer(query, k, deadline_ms)
        if raw is not None:
            await self._respond_raw(writer, status, raw,
                                    content_type=_JSON,
                                    close=not keep_alive)
        else:
            extra = {}
            if status == 503:
                extra["Retry-After"] = ("5" if self.serving.draining
                                        else "1")
            await self._respond(writer, status, payload, headers=extra,
                                close=not keep_alive)
        return keep_alive

    async def _answer(self, query, k, deadline_ms
                      ) -> "tuple[int, dict | None, bytes | None]":
        """(status, json payload, pre-serialised body) for one query.

        The leader of a single-flight group serialises its 200 response
        once and every follower returns those bytes verbatim — that is
        what makes coalesced responses bit-identical.
        """
        loop = asyncio.get_running_loop()
        try:
            fingerprint = await loop.run_in_executor(
                None, self.serving.fingerprint, query, k)
        except (ParseError, InvalidQueryError) as exc:
            message = (exc.one_line() if isinstance(exc, ParseError)
                       else str(exc))
            return 400, {"error": type(exc).__name__,
                         "message": message}, None
        except Exception as exc:
            return 500, {"error": "InternalError",
                         "message": type(exc).__name__}, None

        # Explicit per-request deadlines bypass coalescing: the leader's
        # budget is not the follower's, and a degraded ranking must not
        # be replayed to a caller that asked with a healthier one.
        coalescable = deadline_ms is None
        if coalescable:
            is_leader, future = self.flight.lead_or_follow(fingerprint.key)
            if not is_leader:
                self._waiters_total.inc()
                try:
                    return await asyncio.shield(future)
                except asyncio.CancelledError:
                    raise
                except BaseException:
                    # The leader failed; followers fall through and try
                    # on their own (the failure may have been transient
                    # admission, not the query).
                    return await self._compute(fingerprint, k, deadline_ms)
            try:
                result = await self._compute(fingerprint, k, deadline_ms)
            except BaseException as exc:
                self.flight.finish(fingerprint.key, future, error=exc)
                raise
            self.flight.finish(fingerprint.key, future, result=result)
            return result
        return await self._compute(fingerprint, k, deadline_ms)

    async def _compute(self, fingerprint, k, deadline_ms
                       ) -> "tuple[int, dict | None, bytes | None]":
        try:
            engine_future = self.serving.submit(
                fingerprint.graph, k, deadline_ms=deadline_ms,
                fingerprint=fingerprint)
        except OverloadedError as exc:
            return 503, {
                "error": "OverloadedError", "message": str(exc),
                "in_flight": exc.in_flight, "capacity": exc.capacity,
                "draining": self.serving.draining}, None
        except (ParseError, InvalidQueryError) as exc:
            message = (exc.one_line() if isinstance(exc, ParseError)
                       else str(exc))
            return 400, {"error": type(exc).__name__,
                         "message": message}, None
        except ReproError as exc:
            return 500, {"error": type(exc).__name__,
                         "message": str(exc)}, None
        except Exception as exc:
            return 500, {"error": "InternalError",
                         "message": type(exc).__name__}, None
        try:
            result = await asyncio.wrap_future(engine_future)
        except (ParseError, InvalidQueryError) as exc:
            message = (exc.one_line() if isinstance(exc, ParseError)
                       else str(exc))
            return 400, {"error": type(exc).__name__,
                         "message": message}, None
        except ReproError as exc:
            return 500, {"error": type(exc).__name__,
                         "message": str(exc)}, None
        except Exception as exc:
            return 500, {"error": "InternalError",
                         "message": type(exc).__name__}, None
        payload = dict(result.payload)
        payload["cached"] = result.cached
        payload["latency_ms"] = round(result.latency_ms, 3)
        raw = json.dumps(payload).encode("utf-8")
        return 200, None, raw

    # -- responses ----------------------------------------------------------

    async def _respond(self, writer, status: int, payload: dict,
                       headers: "dict[str, str] | None" = None,
                       close: bool = False) -> None:
        await self._respond_raw(writer, status,
                                json.dumps(payload).encode("utf-8"),
                                content_type=_JSON, headers=headers,
                                close=close)

    async def _respond_raw(self, writer, status: int, body: bytes,
                           content_type: str = _JSON,
                           headers: "dict[str, str] | None" = None,
                           close: bool = False) -> None:
        reason = _REASONS.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 "Server: sama-aserve/1.0"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await asyncio.wait_for(writer.drain(), self.write_timeout_s)
        except (ConnectionResetError, BrokenPipeError):
            self._disconnects.inc()
        except asyncio.TimeoutError:
            self.connections.timeouts += 1
            raise ConnectionResetError("write timeout") from None

    async def _close_writer(self, writer) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except BaseException:
            # Best-effort teardown: a reset, a timeout, or cancellation
            # during shutdown — the connection is gone either way.
            pass

    # -- introspection -------------------------------------------------------

    def stats_payload(self) -> dict:
        """``/stats`` = the engine's document + front-end sections."""
        payload = self.serving.stats_payload()
        payload["frontend"] = "asyncio"
        payload["connections"] = {
            "active": self.connections.active,
            "accepted": self.connections.accepted,
            "rejected": self.connections.rejected,
            "max": self.max_connections,
            "framing_close": self.connections.framing_close,
            "timeouts": self.connections.timeouts,
        }
        payload["singleflight"] = {
            "leaders": self.flight.leaders,
            "coalesced": self.flight.coalesced,
            "in_flight_keys": len(self.flight._inflight),
        }
        payload["tenants"] = self.quotas.snapshot()
        return payload

    def _collect_samples(self):
        yield Sample("sama_async_connections", "gauge",
                     "Connections currently held by the asyncio front end",
                     self.connections.active)
        yield Sample("sama_async_connections_total", "counter",
                     "Connections accepted by the asyncio front end",
                     self.connections.accepted)
        yield Sample("sama_async_connections_rejected_total", "counter",
                     "Connections refused by the bounded backlog",
                     self.connections.rejected)
        yield Sample("sama_async_framing_closes_total", "counter",
                     "Connections closed to protect HTTP framing",
                     self.connections.framing_close)
        yield Sample("sama_singleflight_leaders_total", "counter",
                     "Requests that led a single-flight computation",
                     self.flight.leaders)
        for tenant, row in self.quotas.snapshot().items():
            label = (("tenant", tenant),)
            yield Sample("sama_tenant_requests_total", "counter",
                         "Requests received per tenant (API key)",
                         row["requests"], label)
            yield Sample("sama_tenant_throttled_total", "counter",
                         "Requests refused by the tenant's token bucket",
                         row["throttled"], label)

    def __repr__(self):
        return (f"<AsyncServingServer on {self.url}: "
                f"{self.connections.active}/{self.max_connections} "
                f"connections, {self.flight.coalesced} coalesced>")


_REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    411: "Length Required", 413: "Payload Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _parse_head(head: bytes) -> "tuple[tuple[str, str, str], dict]":
    """(request line, lower-cased header map) or ``ValueError``."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:
        raise ValueError("undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ValueError(f"unsupported protocol {version!r}")
    headers: "dict[str, str]" = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return (method, path, version), headers


def _parse_query_document(body: bytes) -> "tuple[str, int | None, float | None]":
    """Validate the POST /query body; shared shape with the threaded
    front end (same messages, same 400 conditions)."""
    if not body:
        raise ValueError("empty request body")
    document = json.loads(body.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("request body must be a JSON object")
    query = document.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ValueError("'query' must be non-empty SPARQL text")
    k = document.get("k")
    if k is not None and (not isinstance(k, int) or k < 1):
        raise ValueError("'k' must be a positive integer")
    deadline_ms = document.get("deadline_ms")
    if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms < 0):
        raise ValueError("'deadline_ms' must be a number >= 0")
    return query, k, deadline_ms


def serve_async(engine_or_serving, host: str = "127.0.0.1",
                port: int = 8080, **kwargs) -> AsyncServingServer:
    """Wrap an engine (or serving engine) in an asyncio front end."""
    serving = engine_or_serving
    if not isinstance(serving, ServingEngine):
        serving = ServingEngine(serving)
    return AsyncServingServer(serving, host=host, port=port, **kwargs)
