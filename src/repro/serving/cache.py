"""The epoch-keyed result cache: LRU under a byte budget.

Entries are complete served results (the ranked answers plus their
wire payload) keyed by :func:`repro.serving.canonical.cache_key` — the
canonical query text, ``k``, and the **index epoch** at evaluation
time.  Because the epoch is part of the key, an index update
invalidates every affected entry *by construction*: post-update
lookups carry the new epoch and miss, while the stale entries age out
of the LRU (or are dropped eagerly via :meth:`drop_stale_epochs`).

**Composite epochs.**  Over a sharded index the epoch in the key is
not a scalar but the *per-shard epoch vector* — e.g.
``epoch=(3, 0, 1, 0)|k=10|<canonical form>`` — taken from the index's
``epoch_vector``.  An update bumps only the epochs of the shards it
touched, so the key (and therefore the set of invalidated entries)
tracks exactly which partitions moved; the serving engine's monotone
freshness check still uses the scalar sum, which only ever grows.
Because query execution fans out to *all* shards, any component
differing from the current vector makes an entry unreachable — vector
entries are stale under :meth:`drop_stale_epochs` exactly when they
differ from the current vector (components never decrease, so a
differing vector can never become current again).  Single-shard and
static indexes keep the plain integer epoch key unchanged.

The budget is in bytes of wire payload, not entry count, so one huge
k=1000 ranking cannot pin the cache while hundreds of small results
are evicted around it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any


def _is_stale(entry_epoch: "int | tuple", current: "int | tuple") -> bool:
    """True when an entry keyed at ``entry_epoch`` can never hit again.

    Mixed types (an integer entry surviving a reshard to a vector
    epoch, or vice versa) are trivially stale: the key format changed,
    so the entry is unreachable.
    """
    if isinstance(entry_epoch, tuple) or isinstance(current, tuple):
        return entry_epoch != current
    return entry_epoch < current


@dataclass
class ResultCacheStats:
    """Counters exposed on ``/stats``."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    stale_dropped: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class CachedResult:
    """One cache entry: the answers exactly as the engine returned them."""

    answers: Any               # PartialResult — returned verbatim on a hit
    payload: dict              # JSON-ready wire form
    size_bytes: int
    epoch: "int | tuple"       # scalar epoch, or per-shard vector (sharded)
    key: str = field(repr=False, default="")


class ResultCache:
    """Thread-safe LRU over served results with a byte budget.

    ``max_bytes=0`` disables caching entirely (every lookup misses,
    nothing is stored) — the cache-off arm of the serving benchmark.
    An entry larger than the whole budget is never admitted.
    """

    def __init__(self, max_bytes: int = 64 << 20):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.stats = ResultCacheStats()
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    @property
    def current_bytes(self) -> int:
        # Under the lock: ``/stats`` scrapes race with eviction, and a
        # torn read here could report bytes from mid-eviction (entries
        # popped, budget not yet released).
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> "CachedResult | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, entry: CachedResult) -> bool:
        """Admit ``entry`` (keyed by ``entry.key``); False if too big.

        A zero byte budget means *caching is disabled*: nothing is
        admitted, not even a zero-byte entry (``size_bytes == 0`` used
        to slip past the too-big check because ``0 > 0`` is false).
        """
        if not entry.key:
            raise ValueError("cache entry has no key")
        if self.max_bytes == 0 or entry.size_bytes > self.max_bytes:
            return False
        with self._lock:
            old = self._entries.pop(entry.key, None)
            if old is not None:
                self._bytes -= old.size_bytes
            self._entries[entry.key] = entry
            self._bytes += entry.size_bytes
            self.stats.insertions += 1
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.size_bytes
                self.stats.evictions += 1
            return True

    def drop_stale_epochs(self, current_epoch: "int | tuple") -> int:
        """Eagerly drop entries from epochs before ``current_epoch``.

        Purely a byte-budget optimisation: stale entries can never be
        *returned* (their keys embed the old epoch), but until evicted
        they occupy budget that live results could use.

        Scalar epochs are ordered, so "stale" means ``<``.  Composite
        (per-shard vector) epochs are compared for *inequality*: shard
        epochs never decrease, so any entry whose vector differs from
        the current one can never be looked up again.
        """
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if _is_stale(entry.epoch, current_epoch)]
            for key in stale:
                entry = self._entries.pop(key)
                self._bytes -= entry.size_bytes
            self.stats.stale_dropped += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry *and* reset the counters.

        ``clear()`` starts a fresh measurement window: a hit rate that
        mixed pre- and post-clear lookups would misstate the behaviour
        of the current (empty) cache, so the stats reset with the
        entries.
        """
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.stats = ResultCacheStats()

    def stats_snapshot(self) -> ResultCacheStats:
        """A point-in-time copy of the counters, taken under the lock."""
        with self._lock:
            return replace(self.stats)

    def __repr__(self):
        # One locked snapshot: entry count, bytes and hit rate must
        # describe the same instant even while eviction is running.
        with self._lock:
            entries = len(self._entries)
            current = self._bytes
            hit_rate = self.stats.hit_rate
        return (f"<ResultCache: {entries} entries, "
                f"{current}/{self.max_bytes} bytes, "
                f"hit rate {hit_rate:.2%}>")
