"""Canonical forms for BGP queries: the result cache's key function.

Two SPARQL basic graph patterns that differ only in variable names or
in the order of their triple patterns describe the same query and must
hit the same cache entry; two patterns that differ in *any* constant,
in structure, or in how variables are shared must never collide.  The
canonical form delivers both:

- triple patterns are treated as a set (the engine evaluates the query
  graph, which already has RDF set semantics) and emitted sorted;
- variables are alpha-renamed to ``?_0, ?_1, ...`` by the numbering
  that minimises the rendered form, so the canonical text depends only
  on the *structure* of variable sharing, never on the author's names.

Minimisation searches over variable numberings.  To keep that cheap
for real queries (the paper's workload tops out at 7 variables) the
variables are first partitioned by iterated structural refinement —
only orderings that respect the refinement classes are tried, and
within-class permutations are capped at :data:`PERMUTATION_CAP`.
Queries whose symmetric variable groups exceed the cap (degenerate,
highly regular patterns) fall back to a deterministic in-class order;
the form is then still stable per process but may distinguish two
renamings of such a query — a cache miss, never a false hit.
"""

from __future__ import annotations

import itertools

from ..rdf.graph import DataGraph, QueryGraph
from ..rdf.sparql import SelectQuery, parse_select
from ..rdf.terms import Term, Variable
from ..rdf.triples import Triple

#: Upper bound on the variable numberings tried during minimisation.
PERMUTATION_CAP = 40_320  # 8!


def canonical_form(query) -> str:
    """The canonical text of ``query`` (SPARQL text, a parsed
    :class:`SelectQuery`, or a query/data graph).

    One sorted, alpha-renamed triple pattern per line.  Equal strings
    ⇔ same BGP up to variable renaming and pattern order (modulo the
    permutation cap documented above).
    """
    triples = _pattern_set(query)
    variables = sorted({term for triple in triples for term in triple
                        if isinstance(term, Variable)})
    if not variables:
        return "\n".join(sorted(_render(t, {}) for t in triples))
    best = None
    for naming in _candidate_namings(triples, variables):
        rendered = "\n".join(sorted(_render(t, naming) for t in triples))
        if best is None or rendered < best:
            best = rendered
    return best


def cache_key(query, k: int, epoch: int, mode: str = "off") -> str:
    """The result-cache key: canonical query text + ``k`` + data epoch
    + retrieval mode.

    ``mode`` is the engine's two-stage retrieval mode (``off`` /
    ``safe`` / ``approx``).  Safe mode returns the exhaustive rankings
    by construction, but approximate mode may not — keying the cache
    by mode guarantees staged and exhaustive results never alias, even
    across a config flip on a reused cache."""
    return f"epoch={epoch}|k={k}|mode={mode}|{canonical_form(query)}"


def _pattern_set(query) -> list[Triple]:
    if isinstance(query, str):
        query = parse_select(query)
    if isinstance(query, SelectQuery):
        query = query.graph()
    if isinstance(query, (QueryGraph, DataGraph)):
        return sorted(set(query.triples()),
                      key=lambda t: _render(t, {}, blank_variables=True))
    raise TypeError(f"cannot canonicalise {type(query).__name__} as a query")


def _render(triple: Triple, naming: dict, blank_variables: bool = False) -> str:
    parts = []
    for term in triple:
        if isinstance(term, Variable):
            parts.append("?_" if blank_variables else f"?_{naming[term]}")
        else:
            parts.append(term.n3())
    return " ".join(parts)


def _candidate_namings(triples: list[Triple], variables: list[Variable]):
    """Yield variable → id dicts worth trying, refinement classes first.

    Classes are ordered by their (rename-invariant) structural
    signature; ids are dealt to classes in that order and permuted only
    within each class.  The cross-product of in-class permutations is
    capped — beyond the cap the remaining orderings are cut off, which
    can only split (never merge) cache entries.
    """
    classes = _refinement_classes(triples, variables)
    per_class = [itertools.islice(itertools.permutations(group),
                                  PERMUTATION_CAP)
                 for group in classes]
    produced = 0
    for combo in itertools.product(*per_class):
        naming = {}
        for group in combo:
            for variable in group:
                naming[variable] = len(naming)
        yield naming
        produced += 1
        if produced >= PERMUTATION_CAP:
            return


def _refinement_classes(triples: list[Triple],
                        variables: list[Variable]) -> list[list[Variable]]:
    """Partition variables by iterated structural refinement.

    Each round, a variable's signature is the sorted multiset of its
    occurrence contexts: the triple rendered with constants verbatim,
    every variable replaced by its current class colour, plus the
    positions the variable itself occupies.  Classes are returned
    ordered by final signature — an ordering invariant under renaming,
    because signatures never mention variable names.
    """
    colors = dict.fromkeys(variables, 0)
    while True:
        signatures = {}
        for variable in variables:
            contexts = []
            for triple in triples:
                if variable not in triple:
                    continue
                shape = tuple(
                    ("var", colors[term]) if isinstance(term, Variable)
                    else ("const", term.n3())
                    for term in triple)
                positions = tuple(i for i, term in enumerate(triple)
                                  if term == variable)
                contexts.append((shape, positions))
            signatures[variable] = tuple(sorted(contexts))
        ordered = sorted(set(signatures.values()))
        refined = {v: ordered.index(signatures[v]) for v in variables}
        if refined == colors:
            break
        colors = refined
    classes: dict[int, list[Variable]] = {}
    for variable in variables:
        classes.setdefault(colors[variable], []).append(variable)
    return [sorted(classes[color]) for color in sorted(classes)]
