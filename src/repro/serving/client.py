"""A tiny stdlib client for the serving HTTP API.

Used by ``sama bench-serve``, the CI smoke job, and tests; also a
reasonable starting point for applications::

    from repro.serving import ServingClient

    client = ServingClient("http://127.0.0.1:8080")
    result = client.query("SELECT ?x WHERE { ?x <http://...> ?y . }", k=5)
    for row in result["answers"]:
        print(row["score"], row["bindings"])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..resilience.errors import (OverloadedError, QuotaExceededError,
                                 ReproError)


class ServingClientError(ReproError, RuntimeError):
    """A non-2xx response from the serving API (other than overload
    or quota exhaustion, which raise their typed errors)."""

    def __init__(self, message: str, status: int,
                 body: "dict | None" = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}


class ServingClient:
    """Blocking JSON client for one serving endpoint.

    Fig. 1(b)'s Q1 against a server indexing the GovTrack graph (the
    examples are ``+SKIP`` because they need a running server; see
    docs/OPERATIONS.md for starting one with ``sama serve``):

    >>> client = ServingClient("http://127.0.0.1:8080")
    >>> result = client.query(
    ...     "SELECT ?v3 WHERE {"
    ...     " <http://example.org/govtrack/CarlaBunes>"
    ...     " <http://example.org/govtrack/sponsor> ?v1 ."
    ...     " ?v1 <http://example.org/govtrack/aTo> ?v2 ."
    ...     " ?v2 <http://example.org/govtrack/subject> 'Health Care' ."
    ...     " ?v3 <http://example.org/govtrack/sponsor> ?v2 ."
    ...     " ?v3 <http://example.org/govtrack/gender> 'Male' . }",
    ...     k=3)                                     # doctest: +SKIP
    >>> round(result["answers"][0]["score"], 3)      # doctest: +SKIP
    2.0
    >>> client.stats()["shards"]                     # doctest: +SKIP
    4
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 api_key: "str | None" = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.api_key = api_key

    # -- wire helpers -------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: "dict | None" = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if self.api_key:
            # Tenant identity for the asyncio front end's quotas; the
            # threaded front end ignores it.
            headers["X-API-Key"] = self.api_key
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except Exception:
                body = {}
            if exc.code == 503:
                raise OverloadedError(
                    body.get("message", "server overloaded"),
                    in_flight=body.get("in_flight"),
                    capacity=body.get("capacity")) from exc
            if exc.code == 429:
                raise QuotaExceededError(
                    body.get("message", "tenant quota exceeded"),
                    tenant=body.get("tenant"),
                    retry_after_s=body.get("retry_after_s")) from exc
            raise ServingClientError(
                body.get("message", f"HTTP {exc.code} from {path}"),
                status=exc.code, body=body) from exc

    # -- API ---------------------------------------------------------------

    def query(self, sparql: str, k: "int | None" = None,
              deadline_ms: "float | None" = None) -> dict:
        """POST /query; the ranked-answers document."""
        payload: dict = {"query": sparql}
        if k is not None:
            payload["k"] = k
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/query", payload)

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")
