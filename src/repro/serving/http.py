"""JSON-over-HTTP front end for a :class:`ServingEngine` (stdlib only).

Endpoints::

    POST /query    {"query": "SELECT ...", "k": 10, "deadline_ms": 500}
    GET  /healthz  liveness + index epoch
    GET  /stats    cache hit rate, in-flight, p50/p95 latency, shed count
    GET  /metrics  Prometheus text exposition (stage histograms, counters)

Errors map onto HTTP the way the typed hierarchy intends: bad queries
are 400 (with the parser's one-line diagnostic), shed requests are 503
with a ``Retry-After`` hint, deadline trips under ``on_budget=raise``
semantics never happen here (the service degrades to partial results,
reported in the 200 body), and anything unexpected is a 500 that never
leaks a traceback to the client.

The server is a :class:`ThreadingHTTPServer`: one OS thread per
connection doing I/O, while the actual query work is bounded by the
serving engine's worker pool + admission control — slow clients hold
sockets, not workers.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..resilience.errors import (InvalidQueryError, OverloadedError,
                                 ParseError, ReproError)
from .service import ServingEngine

#: Hard cap on accepted request bodies (a query, not a dataset).
MAX_BODY_BYTES = 1 << 20


class ServingRequestHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints onto the serving engine."""

    server_version = "sama-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The serving engine is attached to the server object by serve().
    @property
    def serving(self) -> ServingEngine:
        return self.server.serving_engine  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- helpers -----------------------------------------------------------

    def _note_disconnect(self) -> None:
        """Count a client that went away mid-write (never a crash)."""
        self.close_connection = True
        self.serving.registry.counter(
            "sama_client_disconnects_total",
            "Responses aborted because the client disconnected mid-write",
        ).inc()

    def _send_json(self, status: int, payload: dict,
                   headers: "dict[str, str] | None" = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            if self.close_connection:
                # The framing code decided this connection cannot be
                # reused (oversized/truncated body); tell the client so
                # it does not pipeline into a socket about to close.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up between sending the request and reading
            # the answer.  That is their prerogative, not our crash: the
            # handler thread must survive to serve the next connection.
            self._note_disconnect()

    def _read_raw_body(self) -> bytes:
        """The declared request body, read *fully* (or ``ValueError``).

        A single ``rfile.read(length)`` is not enough: a slow or
        chunking client delivers the body in pieces, and a short read
        here would both truncate the JSON *and* desynchronise the
        keep-alive connection (the unread tail would be parsed as the
        next request line).  Loop until ``length`` bytes or EOF; a
        truncated body closes the connection, because the framing can
        no longer be trusted.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            self.close_connection = True
            raise ValueError("missing or malformed Content-Length")
        if length <= 0:
            raise ValueError("empty request body")
        if length > MAX_BODY_BYTES:
            # Never read (or drain) an oversized body — the connection
            # cannot be reused, so mark it for closing.
            self.close_connection = True
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        if remaining > 0:
            self.close_connection = True
            raise ValueError(
                f"truncated request body ({length - remaining}/{length} "
                f"bytes received)")
        return b"".join(chunks)

    def _drain_body(self) -> None:
        """Consume a request body that is not going to be used.

        Error responses sent while the body is still in the socket
        would leave those bytes to be parsed as the *next* request
        under keep-alive (connection desync).  Either the body is
        drained here, or the connection is marked to close.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except (TypeError, ValueError):
            self.close_connection = True
            return
        if length <= 0:
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    def _read_body(self) -> dict:
        raw = self._read_raw_body()
        document = json.loads(raw.decode("utf-8"))
        if not isinstance(document, dict):
            raise ValueError("request body must be a JSON object")
        return document

    # -- endpoints ---------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            payload = self.serving.health_payload()
            # "draining" is 503 so load balancers stop routing here;
            # "degraded" stays 200 — the surviving shards still answer,
            # and pulling the instance would turn partial loss into
            # total loss.
            status = 503 if payload["status"] == "draining" else 200
            self._send_json(status, payload)
        elif self.path == "/stats":
            self._send_json(200, self.serving.stats_payload())
        elif self.path == "/metrics":
            body = self.serving.render_metrics().encode("utf-8")
            try:
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                self._note_disconnect()
        else:
            self._send_json(404, {"error": "NotFound", "message": self.path})

    def do_POST(self):  # noqa: N802 - stdlib naming
        if self.path != "/query":
            # The 404 must still account for the declared body: leftover
            # bytes would desync the next keep-alive request.
            self._drain_body()
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        try:
            document = self._read_body()
            query = document.get("query")
            if not isinstance(query, str) or not query.strip():
                raise ValueError("'query' must be non-empty SPARQL text")
            k = document.get("k")
            if k is not None and (not isinstance(k, int) or k < 1):
                raise ValueError("'k' must be a positive integer")
            deadline_ms = document.get("deadline_ms")
            if deadline_ms is not None and (
                    not isinstance(deadline_ms, (int, float))
                    or deadline_ms < 0):
                raise ValueError("'deadline_ms' must be a number >= 0")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": "BadRequest", "message": str(exc)})
            return

        try:
            result = self.serving.query(query, k=k, deadline_ms=deadline_ms)
        except OverloadedError as exc:
            draining = self.serving.draining
            self._send_json(503, {
                "error": "OverloadedError", "message": str(exc),
                "in_flight": exc.in_flight, "capacity": exc.capacity,
                "draining": draining,
            }, headers={"Retry-After": "5" if draining else "1"})
            return
        except (ParseError, InvalidQueryError) as exc:
            message = (exc.one_line() if isinstance(exc, ParseError)
                       else str(exc))
            self._send_json(400, {"error": type(exc).__name__,
                                  "message": message})
            return
        except ReproError as exc:
            self._send_json(500, {"error": type(exc).__name__,
                                  "message": str(exc)})
            return
        except Exception as exc:  # never leak a traceback to the wire
            self._send_json(500, {"error": "InternalError",
                                  "message": type(exc).__name__})
            return
        payload = dict(result.payload)
        payload["cached"] = result.cached
        payload["latency_ms"] = round(result.latency_ms, 3)
        self._send_json(200, payload)


class ServingServer:
    """A serving engine bound to a listening HTTP socket.

    ``port=0`` picks a free port (tests, benchmarks); the bound port is
    on :attr:`port` after construction.  :meth:`serve_background` runs
    the accept loop on a daemon thread and returns immediately —
    :meth:`shutdown` stops the loop, drains the engine's workers, and
    closes the index.
    """

    def __init__(self, serving: ServingEngine, host: str = "127.0.0.1",
                 port: int = 8080, verbose: bool = False):
        self.serving = serving
        self.httpd = ThreadingHTTPServer((host, port), ServingRequestHandler)
        self.httpd.daemon_threads = True
        self.httpd.serving_engine = serving  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (the CLI path)."""
        self.httpd.serve_forever()

    def serve_background(self) -> "ServingServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="sama-serve-http", daemon=True)
        self._thread.start()
        return self

    def shutdown(self, close_engine: bool = True) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.serving.close(close_engine=close_engine)

    def graceful_shutdown(self, drain_deadline_s: "float | None" = None,
                          close_engine: bool = True) -> bool:
        """SIGTERM path: drain, then stop the listener and close.

        New requests are refused with 503 + ``Retry-After`` the moment
        the drain starts (the listener stays up so those refusals — and
        ``/healthz`` flipping to 503 — are actually observable by load
        balancers); in-flight requests get ``drain_deadline_s`` to
        finish, and only then does the accept loop stop.  Returns
        whether the drain completed inside the deadline.
        """
        drained = self.serving.drain(drain_deadline_s)
        self.shutdown(close_engine=close_engine)
        return drained

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def serve(engine_or_serving, host: str = "127.0.0.1", port: int = 8080,
          verbose: bool = False) -> ServingServer:
    """Wrap an engine (or serving engine) in a ready-to-run HTTP server."""
    serving = engine_or_serving
    if not isinstance(serving, ServingEngine):
        serving = ServingEngine(serving)
    return ServingServer(serving, host=host, port=port, verbose=verbose)
