"""The long-lived concurrent query service around one ``SamaEngine``.

The CLI evaluates one query per process: open the index, answer, exit.
A :class:`ServingEngine` instead keeps one hot engine resident — open
``PathIndex`` (or ``IncrementalIndex``), warm buffer pool, interned
label dictionary — and dispatches queries across a bounded worker
pool, the shape the paper's §5 online/offline split implies for a
production deployment.

Three mechanisms make it safe under load:

- **Admission control.**  At most ``workers + max_queue`` requests are
  in flight; anything beyond that is rejected *immediately* with a
  typed :class:`~repro.resilience.errors.OverloadedError`.  There is
  deliberately no unbounded queue — overload turns into a fast, typed
  error the client can back off from, never into unbounded latency.
- **Load-shedding by degradation.**  Admitted requests that must wait
  for a worker (the pool is saturated) have their deadline tightened
  to ``queue_deadline_ms``, reusing the resilience layer's
  :class:`~repro.resilience.budget.Budget` machinery: under pressure
  the service degrades to partial results instead of falling behind.
- **Epoch-keyed result caching.**  Results are cached under the
  canonical query form + ``k`` + the index epoch
  (:mod:`repro.serving.canonical`); an ``IncrementalIndex`` update
  bumps the epoch, so every affected entry is unreachable from the
  next request onwards.  Only *complete* results are cached — a
  deadline-degraded ranking must not be replayed to clients that
  asked with a healthier budget.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from ..engine.sama import SamaEngine
from ..obs import Sample, SlowQueryLog, get_registry, start_trace
from ..resilience.budget import PartialResult
from ..resilience.errors import OverloadedError
from .cache import CachedResult, ResultCache
from .canonical import cache_key

#: Latency samples kept for the p50/p95 estimates on ``/stats``.
LATENCY_WINDOW = 4096


@dataclass
class ServingConfig:
    """Tunables of a :class:`ServingEngine`."""

    #: Worker threads evaluating queries concurrently.
    workers: int = 4
    #: Admitted requests allowed to wait beyond the busy workers.
    #: ``workers + max_queue`` is the hard in-flight cap.
    max_queue: int = 8
    #: Result-cache byte budget; 0 disables caching.
    cache_bytes: int = 64 << 20
    #: Default top-k when a request does not specify one.
    default_k: int = 10
    #: Default per-request deadline (None = unlimited).
    default_deadline_ms: "float | None" = None
    #: Deadline forced onto requests admitted while all workers are
    #: busy (load-shedding by degradation); None leaves them untouched.
    queue_deadline_ms: "float | None" = None
    #: Requests slower than this (ms) are written to the structured
    #: slow-query log as JSON lines; None disables the log.
    slow_query_ms: "float | None" = None
    #: Destination of the slow-query log; None logs to stderr.
    slow_query_log: "str | None" = None


@dataclass(eq=False)
class RequestFingerprint:
    """The canonical identity of one request, computed once.

    ``key`` is the canonical-form × k × epoch (× retrieval-mode) string
    that both the result cache and the asyncio front end's single-flight
    map key by.  Front ends compute the fingerprint to decide whether a
    request can coalesce onto an in-flight computation, then hand it
    back to :meth:`ServingEngine.submit` so the query is only
    canonicalised once per request.
    """

    graph: "object"            # the coerced QueryGraph
    k: int
    key: str
    epoch_key: "int | tuple"   # scalar epoch or per-shard vector
    epoch: int                 # monotone scalar (vector sum when sharded)


@dataclass
class ServedResult:
    """One answered request: the ranked answers plus serving metadata."""

    answers: PartialResult
    payload: dict
    cached: bool
    latency_ms: float
    epoch: int
    k: int

    @property
    def complete(self) -> bool:
        return self.answers.complete


def answers_payload(answers: PartialResult, k: int, epoch: int) -> dict:
    """The JSON-ready wire form of a ranked result."""
    rows = []
    for rank, answer in enumerate(answers, start=1):
        bindings = answer.substitution()
        rows.append({
            "rank": rank,
            "score": round(answer.score, 9),
            "quality": round(answer.quality, 9),
            "conformity": round(answer.conformity, 9),
            "exact": answer.is_exact,
            "complete": answer.is_complete,
            "bindings": {f"?{variable.value}": bindings[variable].n3()
                         for variable in sorted(bindings,
                                                key=lambda v: v.value)},
        })
    return {
        "k": k,
        "epoch": epoch,
        "complete": answers.complete,
        "reasons": [str(reason) for reason in answers.reasons],
        "answers": rows,
    }


@dataclass(frozen=True)
class StatsSnapshot:
    """All serving counters plus the latency window, captured atomically.

    Consumers (``/stats``, the registry collector, percentile reads)
    take one snapshot and derive everything from it, so no reader can
    observe half-updated counters (``served > requests``) or a latency
    window from a different moment than the counts.
    """

    requests: int
    served: int
    errors: int
    shed: int
    degraded: int
    drain_rejected: int
    latencies: "tuple[float, ...]"

    def percentile(self, fraction: float) -> "float | None":
        if not self.latencies:
            return None
        ordered = sorted(self.latencies)
        position = min(len(ordered) - 1,
                       max(0, round(fraction * (len(ordered) - 1))))
        return ordered[position]


class ServingStats:
    """Thread-safe serving counters + a latency reservoir.

    Every mutation happens under one lock, and :meth:`snapshot` reads
    all of it under that same lock — readers never mix counters from
    different instants.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.served = 0
        self.errors = 0
        self.shed = 0
        self.degraded = 0
        self.drain_rejected = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    def note_request(self) -> None:
        with self._lock:
            self.requests += 1

    def note_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def note_drain_rejected(self) -> None:
        with self._lock:
            self.drain_rejected += 1

    def record(self, latency_ms: float, *, error: bool = False,
               degraded: bool = False) -> None:
        with self._lock:
            self.served += 1
            if error:
                self.errors += 1
            if degraded:
                self.degraded += 1
            self._latencies.append(latency_ms)

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            return StatsSnapshot(
                requests=self.requests, served=self.served,
                errors=self.errors, shed=self.shed, degraded=self.degraded,
                drain_rejected=self.drain_rejected,
                latencies=tuple(self._latencies))

    def percentile(self, fraction: float) -> "float | None":
        return self.snapshot().percentile(fraction)


class ServingEngine:
    """A concurrent, caching query service over one resident engine.

    The wrapped :class:`SamaEngine` is shared by every worker thread:
    per-query state (budgets, memos, prepared queries) is already
    request-local, and the storage layer's buffer pool is lock-
    protected.  Close the service, not the engine — :meth:`close`
    drains the pool before closing the index underneath it.
    """

    def __init__(self, engine: SamaEngine,
                 config: "ServingConfig | None" = None):
        self.engine = engine
        self.config = config or ServingConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.config.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.capacity = self.config.workers + self.config.max_queue
        self.cache = ResultCache(self.config.cache_bytes)
        self.stats = ServingStats()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="sama-serve")
        self._admission = threading.Semaphore(self.capacity)
        self._in_flight = 0
        self._flight_lock = threading.Lock()
        # _seen_epoch is check-and-set under its own lock: two racing
        # submits must not both observe one epoch bump (double
        # drop_stale_epochs), and a thread holding an older epoch must
        # never overwrite a newer one it lost the race to.
        self._epoch_lock = threading.Lock()
        self._seen_epoch = self.epoch
        self._closed = False
        self._draining = False
        self.registry = get_registry()
        self._latency_hist = self.registry.histogram(
            "sama_request_seconds",
            "End-to-end served request latency (cache hits included)")
        self.slow_log: "SlowQueryLog | None" = None
        if self.config.slow_query_ms is not None:
            self.slow_log = SlowQueryLog(self.config.slow_query_ms,
                                         path=self.config.slow_query_log)
        self._collector = self._collect_samples
        self.registry.register_collector(self._collector, owner=self)

    # -- data version ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The index's current data epoch (0 for static indexes).

        Over a sharded index this is the *sum* of the per-shard epochs
        — still monotone, which is all the check-and-set in
        :meth:`submit` needs.
        """
        return getattr(self.engine.index, "epoch", 0)

    @property
    def epoch_vector(self) -> "tuple[int, ...]":
        """Per-shard data epochs; a one-tuple for unsharded indexes."""
        vector = getattr(self.engine.index, "epoch_vector", None)
        if vector is None:
            return (self.epoch,)
        return tuple(vector)

    @property
    def epoch_key(self) -> "int | tuple":
        """The epoch component of cache keys.

        A plain integer for unsharded indexes (keys stay byte-identical
        to pre-sharding deployments); the full per-shard epoch vector
        when the index has more than one shard, so an update
        invalidates exactly the entries whose shards moved (see
        :mod:`repro.serving.cache`).
        """
        vector = self.epoch_vector
        if len(vector) <= 1:
            return self.epoch
        return vector

    @property
    def in_flight(self) -> int:
        return self._in_flight

    # -- request path -------------------------------------------------------

    def _retrieval_mode(self) -> str:
        """The retrieval-mode component of cache keys (two-stage
        rankings are not interchangeable with exact ones).

        Quotient-compressed scoring is appended when active: it is
        proven rank-preserving for unbudgeted queries, but served
        queries run under deadlines, where a class representative lost
        to a trip loses its members too — so quotiented and
        exhaustive results never alias in the cache.
        """
        mode = getattr(getattr(self.engine, "config", None),
                       "two_stage", "off")
        resolver = getattr(self.engine, "quotient_resolver", None)
        if resolver is not None and resolver() is not None:
            return f"{mode}+quotient"
        return mode

    def fingerprint(self, query,
                    k: "int | None" = None) -> RequestFingerprint:
        """Canonicalise one request into a :class:`RequestFingerprint`.

        Front ends that deduplicate (the asyncio single-flight layer)
        call this first, key their in-flight map by ``.key``, and pass
        the fingerprint to :meth:`submit` so canonicalisation happens
        once per request, not twice.
        """
        k = self.config.default_k if k is None else k
        graph = self.engine._coerce_query(query)
        epoch_key = self.epoch_key
        epoch = epoch_key if isinstance(epoch_key, int) else sum(epoch_key)
        key = cache_key(graph, k, epoch_key, self._retrieval_mode())
        return RequestFingerprint(graph=graph, k=k, key=key,
                                  epoch_key=epoch_key, epoch=epoch)

    def submit(self, query, k: "int | None" = None, *,
               deadline_ms: "float | None" = None,
               fingerprint: "RequestFingerprint | None" = None,
               ) -> "Future[ServedResult]":
        """Admit one request; a future for its :class:`ServedResult`.

        Raises :class:`OverloadedError` synchronously when the service
        is at capacity (the request is *shed*, nothing was queued).
        Cache hits are answered inline on the caller's thread — they
        cost a dictionary lookup and are never shed.  ``fingerprint``
        (from :meth:`fingerprint`) is reused when it still matches the
        requested ``k`` and the current epoch; a stale one is simply
        recomputed.
        """
        if self._closed:
            raise RuntimeError("serving engine is closed")
        if self._draining:
            # Draining refuses *before* the cache: a drain exists to
            # move traffic elsewhere, and answering hits here would
            # keep load-balancer health checks believing we serve.
            self.stats.note_drain_rejected()
            raise OverloadedError(
                "service is draining (restart or shutdown in progress)",
                in_flight=self._in_flight, capacity=self.capacity)
        started = time.perf_counter()
        self.stats.note_request()
        k = self.config.default_k if k is None else k
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms

        epoch_key = self.epoch_key
        epoch = epoch_key if isinstance(epoch_key, int) else sum(epoch_key)
        with self._epoch_lock:
            # Monotone check-and-set: only the single thread that
            # advances _seen_epoch drops stale entries, and a reader
            # that raced in with an older epoch cannot regress it.
            # Sharded epochs reduce to their (monotone) sum here.
            advanced = epoch > self._seen_epoch
            if advanced:
                self._seen_epoch = epoch
        if advanced:
            # The data moved under us: eagerly release the bytes held
            # by entries no future request can reach.
            self.cache.drop_stale_epochs(epoch_key)

        fresh = (fingerprint is not None and fingerprint.k == k
                 and fingerprint.epoch_key == epoch_key)
        if fresh:
            graph = fingerprint.graph
            key = fingerprint.key if self.cache.max_bytes else ""
        else:
            # No (or stale) fingerprint: canonicalise here.  A stale
            # one means the epoch moved since the front end computed it
            # — the fresh key keeps the entry from being filed (or
            # looked up) under the dead epoch.  Without a cache there
            # is nothing to key, so the canonical form is never built.
            graph = (fingerprint.graph if fingerprint is not None
                     else self.engine._coerce_query(query))
            key = (cache_key(graph, k, epoch_key, self._retrieval_mode())
                   if self.cache.max_bytes else "")

        if key:
            entry = self.cache.get(key)
            if entry is not None:
                latency = (time.perf_counter() - started) * 1000.0
                self.stats.record(latency)
                self._latency_hist.observe(latency / 1000.0)
                future: "Future[ServedResult]" = Future()
                future.set_result(ServedResult(
                    answers=entry.answers, payload=entry.payload,
                    cached=True, latency_ms=latency, epoch=epoch, k=k))
                return future

        if not self._admission.acquire(blocking=False):
            self.stats.note_shed()
            raise OverloadedError(
                f"serving capacity exhausted "
                f"({self._in_flight}/{self.capacity} in flight)",
                in_flight=self._in_flight, capacity=self.capacity)
        with self._flight_lock:
            self._in_flight += 1
            queued = self._in_flight > self.config.workers
        if queued and self.config.queue_deadline_ms is not None:
            if deadline_ms is None:
                deadline_ms = self.config.queue_deadline_ms
            else:
                deadline_ms = min(deadline_ms, self.config.queue_deadline_ms)
        try:
            return self._pool.submit(self._serve, graph, k, deadline_ms,
                                     key, epoch, epoch_key, started)
        except BaseException:
            with self._flight_lock:
                self._in_flight -= 1
            self._admission.release()
            raise

    def query(self, query, k: "int | None" = None, *,
              deadline_ms: "float | None" = None) -> ServedResult:
        """Answer one request synchronously (submit + wait)."""
        return self.submit(query, k, deadline_ms=deadline_ms).result()

    def _serve(self, graph, k: int, deadline_ms: "float | None",
               key: str, epoch: int, epoch_key: "int | tuple",
               started: float) -> ServedResult:
        try:
            if self.slow_log is not None:
                # Capture the per-stage breakdown so a slow line says
                # where the time went, not just that it went.
                with start_trace() as trace:
                    answers = self.engine.query(graph, k=k,
                                                deadline_ms=deadline_ms)
                stages_ms = trace.stage_ms()
            else:
                answers = self.engine.query(graph, k=k,
                                            deadline_ms=deadline_ms)
                stages_ms = None
            payload = answers_payload(answers, k, epoch)
            if key and answers.complete and self.epoch_key == epoch_key:
                # Complete results only: a degraded ranking must not be
                # replayed to callers with healthier budgets.  The
                # epoch re-check keeps a result computed during an
                # update from being filed under the pre-update key.
                size = len(json.dumps(payload).encode("utf-8"))
                self.cache.put(CachedResult(
                    answers=answers, payload=payload, size_bytes=size,
                    epoch=epoch_key, key=key))
            latency = (time.perf_counter() - started) * 1000.0
            self.stats.record(latency, degraded=answers.degraded)
            self._latency_hist.observe(latency / 1000.0)
            if self.slow_log is not None:
                self.slow_log.note(
                    latency_ms=latency,
                    query=key or getattr(graph, "name", "") or "<query>",
                    k=k, epoch=epoch, cached=False,
                    degraded=answers.degraded, answers=len(answers),
                    stages_ms=stages_ms)
            return ServedResult(answers=answers, payload=payload,
                                cached=False, latency_ms=latency,
                                epoch=epoch, k=k)
        except Exception:
            self.stats.record((time.perf_counter() - started) * 1000.0,
                              error=True)
            raise
        finally:
            with self._flight_lock:
                self._in_flight -= 1
            self._admission.release()

    # -- introspection ------------------------------------------------------

    def stats_payload(self) -> dict:
        """The ``/stats`` document (all counters, JSON-ready).

        Serving counters come from one :meth:`ServingStats.snapshot`
        and cache counters from one locked copy, so the document is
        internally consistent — it can never report ``served >
        requests`` mid-update.  The registry's scalar series ride
        along under ``"obs"``.
        """
        snap = self.stats.snapshot()
        cache = self.cache.stats_snapshot()
        health = getattr(self.engine.index, "health", None)
        resolver = getattr(self.engine, "quotient_resolver", None)
        resolver = resolver() if resolver is not None else None
        quotients = resolver.quotients if resolver is not None else None
        return {
            "epoch": self.epoch,
            "shards": getattr(self.engine.index, "shard_count", 1),
            "epochs": list(self.epoch_vector),
            "in_flight": self._in_flight,
            "capacity": self.capacity,
            "workers": self.config.workers,
            "draining": self._draining,
            "requests": snap.requests,
            "served": snap.served,
            "errors": snap.errors,
            "shed": snap.shed,
            "degraded": snap.degraded,
            "drain_rejected": snap.drain_rejected,
            "shard_health": (health.snapshot()
                             if health is not None else None),
            "quotient": (None if quotients is None else {
                "classes": quotients.class_count,
                "paths": quotients.path_count,
                "compression_ratio": round(quotients.compression_ratio, 2),
            }),
            "latency_p50_ms": snap.percentile(0.50),
            "latency_p95_ms": snap.percentile(0.95),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
                "evictions": cache.evictions,
                "entries": len(self.cache),
                "bytes": self.cache.current_bytes,
                "max_bytes": self.cache.max_bytes,
            },
            "obs": self.registry.snapshot(),
        }

    def _collect_samples(self):
        """Project serving/cache/storage stats into registry samples.

        Runs at scrape time only (``/metrics``), reading the same stats
        objects the hot paths already maintain — one source of truth,
        zero additional cost per request or page read.
        """
        snap = self.stats.snapshot()
        for name, value in (("requests", snap.requests),
                            ("served", snap.served),
                            ("errors", snap.errors),
                            ("shed", snap.shed),
                            ("degraded", snap.degraded)):
            yield Sample(f"sama_serving_{name}_total", "counter",
                         f"Requests {name} by the serving engine", value)
        yield Sample("sama_serving_in_flight", "gauge",
                     "Requests admitted and not yet answered",
                     self._in_flight)
        yield Sample("sama_serving_capacity", "gauge",
                     "Hard in-flight cap (workers + max_queue)",
                     self.capacity)
        yield Sample("sama_index_epoch", "gauge",
                     "Data epoch of the served index", self.epoch)
        vector = self.epoch_vector
        if len(vector) > 1:
            for shard_no, shard_epoch in enumerate(vector):
                yield Sample("sama_index_shard_epoch", "gauge",
                             "Data epoch of one index shard", shard_epoch,
                             (("shard", str(shard_no)),))

        cache = self.cache.stats_snapshot()
        for result, value in (("hit", cache.hits), ("miss", cache.misses)):
            yield Sample("sama_result_cache_lookups_total", "counter",
                         "Result-cache lookups by outcome", value,
                         (("result", result),))
        yield Sample("sama_result_cache_insertions_total", "counter",
                     "Results admitted to the cache", cache.insertions)
        yield Sample("sama_result_cache_evictions_total", "counter",
                     "Results evicted by the byte budget", cache.evictions)
        yield Sample("sama_result_cache_stale_dropped_total", "counter",
                     "Entries dropped by epoch invalidation",
                     cache.stale_dropped)
        yield Sample("sama_result_cache_bytes", "gauge",
                     "Bytes of wire payload currently cached",
                     self.cache.current_bytes)
        yield Sample("sama_result_cache_entries", "gauge",
                     "Entries currently cached", len(self.cache))

        index = self.engine.index
        pool = getattr(index, "cache_stats", None)
        if pool is not None:
            for result, value in (("hit", pool.hits), ("miss", pool.misses)):
                yield Sample("sama_buffer_pool_accesses_total", "counter",
                             "Buffer-pool page accesses by outcome", value,
                             (("result", result),))
            yield Sample("sama_buffer_pool_prefetches_total", "counter",
                         "Pages faulted in by sequential read-ahead",
                         pool.prefetches)
            yield Sample("sama_buffer_pool_retries_total", "counter",
                         "Physical reads retried after transient failure",
                         pool.retries)
        io = getattr(index, "io_stats", None)
        if io is not None:
            yield Sample("sama_page_reads_total", "counter",
                         "Physical page reads", io.page_reads)
            yield Sample("sama_page_writes_total", "counter",
                         "Physical page writes", io.page_writes)
            yield Sample("sama_page_read_seconds_total", "counter",
                         "Seconds spent in physical page reads",
                         io.read_seconds)
        decodes = getattr(index, "decode_count", None)
        if decodes is not None:
            yield Sample("sama_record_decodes_total", "counter",
                         "Path records decoded from storage", decodes)

        # Per-shard breakdowns when the served index is a ShardedIndex:
        # same series shapes as the aggregates above, with a ``shard``
        # label, so a hot or slow partition is visible at a glance.
        shards = getattr(index, "shards", None)
        if getattr(index, "is_sharded", False) and shards:
            for shard_no, shard in enumerate(shards):
                label = (("shard", str(shard_no)),)
                shard_io = getattr(shard, "io_stats", None)
                if shard_io is not None:
                    yield Sample("sama_shard_page_reads_total", "counter",
                                 "Physical page reads per shard",
                                 shard_io.page_reads, label)
                    yield Sample("sama_shard_page_read_seconds_total",
                                 "counter",
                                 "Seconds in physical page reads per shard",
                                 shard_io.read_seconds, label)
                shard_pool = getattr(shard, "cache_stats", None)
                if shard_pool is not None:
                    for result, value in (("hit", shard_pool.hits),
                                          ("miss", shard_pool.misses)):
                        yield Sample(
                            "sama_shard_buffer_pool_accesses_total",
                            "counter",
                            "Buffer-pool accesses per shard by outcome",
                            value, label + (("result", result),))
                yield Sample("sama_shard_record_decodes_total", "counter",
                             "Path records decoded per shard",
                             shard.decode_count, label)
            health = getattr(index, "health", None)
            if health is not None:
                for row in health.snapshot():
                    label = (("shard", str(row["shard"])),)
                    yield Sample("sama_shard_healthy", "gauge",
                                 "1 when the shard's circuit breaker is "
                                 "closed, 0 otherwise",
                                 1.0 if row["state"] == "closed" else 0.0,
                                 label)
                    yield Sample("sama_shard_failures_total", "counter",
                                 "Dispatch failures recorded against the "
                                 "shard", row["failures"], label)
                    yield Sample("sama_shard_breaker_trips_total", "counter",
                                 "Times the shard's circuit opened",
                                 row["trips"], label)
                    yield Sample("sama_shard_probes_total", "counter",
                                 "Half-open probe dispatches admitted",
                                 row["probes"], label)
                    yield Sample("sama_shard_hedges_total", "counter",
                                 "Hedged (duplicated) dispatches sent to "
                                 "the shard", row["hedges"], label)

    def render_metrics(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self.registry.render()

    def health_payload(self) -> dict:
        """The ``/healthz`` document.

        ``status`` is ``"draining"`` while a graceful shutdown is in
        progress (the HTTP layer maps it to 503 so load balancers pull
        this instance), ``"degraded"`` when any shard of a sharded
        index is quarantined or circuit-open (still 200: the surviving
        shards answer, degraded beats dead), and ``"ok"`` otherwise.
        """
        status = "ok"
        health = getattr(self.engine.index, "health", None)
        failed: "list[int]" = []
        if health is not None:
            failed = health.failed_shards()
            if health.degraded:
                status = "degraded"
        if self._draining:
            status = "draining"
        payload = {"status": status, "epoch": self.epoch,
                   "paths": self.engine.index.path_count}
        if health is not None:
            payload["shards"] = health.shard_count
            payload["failed_shards"] = failed
        return payload

    # -- lifecycle ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def start_drain(self) -> None:
        """Stop admitting requests; in-flight work keeps running."""
        self._draining = True

    def drain(self, deadline_s: "float | None" = None,
              poll_s: float = 0.02) -> bool:
        """Gracefully quiesce: refuse new work, wait out the in-flight.

        Returns True when the last in-flight request finished inside
        ``deadline_s`` (``None`` waits indefinitely); False when the
        deadline expired with requests still running — the caller
        decides whether to close anyway (``close()`` then still waits
        for the pool, but every admitted request got its chance).
        """
        self.start_drain()
        deadline = (None if deadline_s is None
                    else time.monotonic() + deadline_s)
        while self._in_flight > 0:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)
        return True

    def close(self, close_engine: bool = True) -> None:
        """Drain the worker pool; optionally close the engine under it."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        self._pool.shutdown(wait=True)
        self.registry.unregister_collector(self._collector)
        if self.slow_log is not None:
            self.slow_log.close()
        if close_engine:
            self.engine.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return (f"<ServingEngine: {self.config.workers} workers, "
                f"{self._in_flight}/{self.capacity} in flight, "
                f"epoch {self.epoch}>")
