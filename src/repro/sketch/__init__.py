"""repro.sketch — two-stage retrieval: minhash recall + exact rerank.

See :mod:`repro.sketch.minhash` for the signature scheme,
:mod:`repro.sketch.store` for the per-shard persisted ``sketch.bin``
artifacts, and :mod:`repro.sketch.twostage` for the candidate filter
the engine wires into ``build_clusters``.
"""

from .minhash import (DEFAULT_BANDS, DEFAULT_NUM_PERM, DEFAULT_SEED,
                      SketchParams, band_keys, coefficients,
                      estimate_jaccard, signature)
from .store import (SKETCH_FILE, ShardSketch, SketchFormatError,
                    build_sketches, invalidate_sketches, load_shard_sketch,
                    load_sketches, sketch_path)
from .twostage import (APPROX_MIN_KEEP, SketchIndex, TwoStageFilter,
                       validate_mode)

__all__ = [
    "APPROX_MIN_KEEP",
    "DEFAULT_BANDS",
    "DEFAULT_NUM_PERM",
    "DEFAULT_SEED",
    "SKETCH_FILE",
    "ShardSketch",
    "SketchFormatError",
    "SketchIndex",
    "SketchParams",
    "TwoStageFilter",
    "band_keys",
    "build_sketches",
    "coefficients",
    "estimate_jaccard",
    "invalidate_sketches",
    "load_shard_sketch",
    "load_sketches",
    "sketch_path",
    "signature",
    "validate_mode",
]
