"""MinHash signatures over interned label ids (stdlib only, seeded).

A stored path is summarised by the *set* of dense label ids of its
nodes and edges (the same signature set the shard router hashes).  Its
minhash signature is ``num_perm`` universal-hash minima over that set::

    h_i(x) = (a_i * x + b_i) mod (2^61 - 1)
    sig[i] = min over the set of h_i(x)

The coefficients ``a_i, b_i`` are drawn from ``random.Random(seed)``
once per parameter set, so the same ``(seed, num_perm)`` always yields
the same signature for the same id set — in any process, on any
platform.  That determinism is what lets signatures be persisted next
to a shard and recomputed for queries by whichever process answers
them (asserted by ``tests/test_sketch.py``).

The classic banded LSH trick turns signatures into a candidate recall
structure: the signature is cut into ``bands`` slices of
``num_perm // bands`` rows, each slice hashed into a bucket, and two
sets collide when *any* band slice agrees.  With 32 permutations in
8 bands of 4 rows, sets at Jaccard similarity ``s`` collide with
probability ``1 - (1 - s^4)^8`` — near-certain above ~0.6, rare below
~0.2 — which is the recall/pruning dial the approximate retrieval mode
rides (see :mod:`repro.sketch.twostage`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: The Mersenne prime 2^61 - 1: the universal-hash modulus.  Big
#: enough that distinct small label ids essentially never collide,
#: small enough that ``a * x + b`` stays a fast machine-word-ish int.
MERSENNE_PRIME = (1 << 61) - 1

#: Signature slot of an *empty* id set.  No hash value can reach the
#: modulus itself, so empty sets collide only with empty sets.
EMPTY_SLOT = MERSENNE_PRIME

DEFAULT_SEED = 2013
DEFAULT_NUM_PERM = 32
DEFAULT_BANDS = 8


@dataclass(frozen=True)
class SketchParams:
    """The (seed, permutations, bands) triple identifying a sketch space.

    Two sketches are comparable only when their params are equal; the
    store persists the triple in every sketch file header and the
    loader refuses to mix spaces.
    """

    seed: int = DEFAULT_SEED
    num_perm: int = DEFAULT_NUM_PERM
    bands: int = DEFAULT_BANDS

    def __post_init__(self):
        if self.num_perm < 1:
            raise ValueError(f"num_perm must be >= 1, got {self.num_perm}")
        if self.bands < 1:
            raise ValueError(f"bands must be >= 1, got {self.bands}")
        if self.num_perm % self.bands:
            raise ValueError(
                f"bands ({self.bands}) must divide num_perm "
                f"({self.num_perm}) so every band gets equal rows")
        if not 0 <= self.seed < (1 << 64):
            raise ValueError("seed must fit an unsigned 64-bit int")

    @property
    def rows_per_band(self) -> int:
        return self.num_perm // self.bands


def coefficients(params: SketchParams) -> "tuple[tuple[int, int], ...]":
    """The seeded ``(a_i, b_i)`` universal-hash coefficient pairs.

    Drawn from ``random.Random(params.seed)`` — Python's Mersenne
    Twister is specified and stable across versions and platforms, so
    the coefficient sequence is a pure function of the seed.
    """
    rng = random.Random(params.seed)
    return tuple((rng.randrange(1, MERSENNE_PRIME),
                  rng.randrange(0, MERSENNE_PRIME))
                 for _ in range(params.num_perm))


def signature(ids, coeffs) -> "tuple[int, ...]":
    """The minhash signature of an id set under ``coeffs``.

    ``ids`` may be any iterable of non-negative ints (duplicates are
    harmless: min() over a multiset equals min() over its set).  An
    empty set yields all-:data:`EMPTY_SLOT`.
    """
    ids = list(ids)
    if not ids:
        return tuple([EMPTY_SLOT] * len(coeffs))
    return tuple(min((a * x + b) % MERSENNE_PRIME for x in ids)
                 for a, b in coeffs)


def band_keys(sig, params: SketchParams) -> "list[tuple]":
    """The banded LSH bucket keys of one signature.

    Each key is ``(band number, the band's signature slice)``; two
    signatures share a bucket exactly when some band slice agrees.
    """
    rows = params.rows_per_band
    return [(band, tuple(sig[band * rows:(band + 1) * rows]))
            for band in range(params.bands)]


def estimate_jaccard(sig_a, sig_b) -> float:
    """The fraction of agreeing signature slots — the unbiased minhash
    estimator of the Jaccard similarity of the underlying id sets."""
    if len(sig_a) != len(sig_b):
        raise ValueError("signatures come from different sketch spaces")
    if not sig_a:
        return 0.0
    agree = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
    return agree / len(sig_a)
