"""Per-shard sketch files: build, persist, validate, invalidate.

Each index directory (or each ``shard-NN/`` of a sharded index) may
carry a ``sketch.bin`` holding one row per stored path, in the shard's
``all_offsets()`` walk order:

- the path's storage offset and stored length,
- its distinct node label ids and distinct edge label ids (sorted),
- its minhash signature (:mod:`repro.sketch.minhash`).

The file is written through :func:`repro.storage.atomic.atomic_write_bytes`
— the same tmp-fsync-rename path every other artifact uses — so a
crash mid-build leaves either the old sketch or none, never a torn one.

The header records the shard **epoch** at build time.  Loaders compare
it against the live epoch (``ShardedIndex.epoch_vector`` per shard,
``PathIndex.epoch`` otherwise) and treat any mismatch as *no sketch*:
compaction renumbers offsets and incremental rounds add paths, so a
stale sketch must fall back to exhaustive recall rather than serve
wrong candidates.  :func:`invalidate_sketches` deletes sketch files
eagerly after such rewrites; the epoch check is the backstop for
writers that forget.
"""

from __future__ import annotations

import os
import struct
from array import array

from ..storage.atomic import atomic_write_bytes
from .minhash import SketchParams, band_keys, coefficients, signature

#: File name of a shard's persisted sketch, next to its paths.log.
SKETCH_FILE = "sketch.bin"

_MAGIC = b"SKH1"
_VERSION = 1
#: magic, version, num_perm, bands, reserved, seed, epoch, rows
_HEADER = struct.Struct("<4sHHHHQqQ")
#: per row: storage offset, stored length, #node ids, #edge ids
_ROW = struct.Struct("<QIHH")


class SketchFormatError(Exception):
    """A sketch file that is not a valid SKH1 artifact."""


def sketch_path(directory: str) -> str:
    return os.path.join(directory, SKETCH_FILE)


class ShardSketch:
    """One shard's sketch rows plus the banded LSH bucket index.

    Rows are addressed by ``row_of[storage offset]`` — the same
    offset-space shard tasks use — and the bucket index is rebuilt in
    memory at load (it is derivable from the signatures, so persisting
    it would only add a second thing to keep consistent).
    """

    __slots__ = ("params", "epoch", "offsets", "lengths", "node_sets",
                 "edge_sets", "signatures", "row_of", "_buckets")

    def __init__(self, params: SketchParams, epoch: int, offsets,
                 lengths, node_sets, edge_sets, signatures):
        self.params = params
        self.epoch = epoch
        self.offsets = offsets
        self.lengths = lengths
        self.node_sets = node_sets
        self.edge_sets = edge_sets
        self.signatures = signatures
        self.row_of = {offset: row for row, offset in enumerate(offsets)}
        self._buckets = None

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def buckets(self) -> dict:
        """Banded LSH buckets: band key -> list of row numbers."""
        if self._buckets is None:
            buckets: "dict[tuple, list[int]]" = {}
            params = self.params
            for row, sig in enumerate(self.signatures):
                for key in band_keys(sig, params):
                    buckets.setdefault(key, []).append(row)
            self._buckets = buckets
        return self._buckets

    def collision_rows(self, query_signature) -> "set[int]":
        """Rows sharing at least one LSH band with ``query_signature``."""
        rows: "set[int]" = set()
        buckets = self.buckets
        for key in band_keys(query_signature, self.params):
            hit = buckets.get(key)
            if hit:
                rows.update(hit)
        return rows

    @classmethod
    def from_index(cls, index, params: SketchParams,
                   epoch: int) -> "ShardSketch":
        """Sketch every stored path of one open (shard) index.

        Rides the columnar projection (:class:`ColumnarView`) so the
        id-extraction walk is shared with the procs scoring path
        instead of decoding ``Path`` objects a second way.
        """
        from ..index.columnar import ColumnarView

        view = ColumnarView.build(index)
        node_ids = view.node_ids
        node_offs = view.node_offs
        edge_ids = view.edge_ids
        coeffs = coefficients(params)
        offsets = list(index.all_offsets())
        lengths = array("l")
        node_sets = []
        edge_sets = []
        signatures = []
        for row, offset in enumerate(offsets):
            start = node_offs[row]
            stored_len = node_offs[row + 1] - start
            nset = frozenset(node_ids[start:start + stored_len])
            edge_start = start - row
            eset = frozenset(edge_ids[edge_start:edge_start + stored_len - 1])
            lengths.append(stored_len)
            node_sets.append(nset)
            edge_sets.append(eset)
            signatures.append(signature(nset | eset, coeffs))
        return cls(params, epoch, offsets, lengths, node_sets, edge_sets,
                   signatures)

    def save(self, path: str) -> None:
        chunks = [_HEADER.pack(_MAGIC, _VERSION, self.params.num_perm,
                               self.params.bands, 0, self.params.seed,
                               self.epoch, len(self.offsets))]
        for row, offset in enumerate(self.offsets):
            nodes = sorted(self.node_sets[row])
            edges = sorted(self.edge_sets[row])
            chunks.append(_ROW.pack(offset, self.lengths[row],
                                    len(nodes), len(edges)))
            chunks.append(array("I", nodes).tobytes())
            chunks.append(array("I", edges).tobytes())
            chunks.append(array("Q", self.signatures[row]).tobytes())
        atomic_write_bytes(path, b"".join(chunks))

    @classmethod
    def load(cls, path: str) -> "ShardSketch":
        """Parse a sketch file; raises :class:`SketchFormatError` when
        the bytes are not a well-formed SKH1 artifact (the caller maps
        that, like a missing file, to exhaustive-recall fallback)."""
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < _HEADER.size:
            raise SketchFormatError(f"{path}: truncated header")
        (magic, version, num_perm, bands, _reserved, seed, epoch,
         rows) = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise SketchFormatError(f"{path}: bad magic {magic!r}")
        if version != _VERSION:
            raise SketchFormatError(f"{path}: unsupported version {version}")
        try:
            params = SketchParams(seed=seed, num_perm=num_perm, bands=bands)
        except ValueError as exc:
            raise SketchFormatError(f"{path}: {exc}") from exc
        cursor = _HEADER.size
        offsets = []
        lengths = array("l")
        node_sets = []
        edge_sets = []
        signatures = []
        sig_bytes = 8 * num_perm
        for _ in range(rows):
            if cursor + _ROW.size > len(blob):
                raise SketchFormatError(f"{path}: truncated row header")
            offset, stored_len, n_nodes, n_edges = _ROW.unpack_from(
                blob, cursor)
            cursor += _ROW.size
            need = 4 * (n_nodes + n_edges) + sig_bytes
            if cursor + need > len(blob):
                raise SketchFormatError(f"{path}: truncated row body")
            nodes = array("I")
            nodes.frombytes(blob[cursor:cursor + 4 * n_nodes])
            cursor += 4 * n_nodes
            edges = array("I")
            edges.frombytes(blob[cursor:cursor + 4 * n_edges])
            cursor += 4 * n_edges
            sig = array("Q")
            sig.frombytes(blob[cursor:cursor + sig_bytes])
            cursor += sig_bytes
            offsets.append(offset)
            lengths.append(stored_len)
            node_sets.append(frozenset(nodes))
            edge_sets.append(frozenset(edges))
            signatures.append(tuple(sig))
        if cursor != len(blob):
            raise SketchFormatError(f"{path}: trailing bytes after rows")
        return cls(params, epoch, offsets, lengths, node_sets, edge_sets,
                   signatures)


def _shard_surfaces(index):
    """Yield ``(directory, shard index or None, live epoch)`` for every
    healthy persistence surface of ``index``.

    Quarantined shards are skipped: their page store is gone, their
    offsets route nowhere, and rebuilding after recovery produces a
    fresh-epoch sketch anyway.
    """
    from ..index.sharded import ShardedIndex, shard_dir

    if isinstance(index, ShardedIndex):
        epochs = index.epoch_vector
        for shard_no, shard in enumerate(index.shards):
            if getattr(shard, "quarantined", False):
                continue
            yield (shard_dir(index.directory, shard_no), shard_no,
                   epochs[shard_no])
    else:
        directory = getattr(index, "directory", None)
        if directory:
            yield directory, None, getattr(index, "epoch", 0)


def build_sketches(index, params: "SketchParams | None" = None) -> "list[str]":
    """Build and persist a sketch file per (healthy) shard of ``index``.

    Returns the written paths.  Works for a plain :class:`PathIndex`
    and a :class:`ShardedIndex`; each file is keyed by its shard's
    current epoch so later compaction or incremental rounds orphan it.
    """
    params = params or SketchParams()
    written = []
    for directory, shard_no, epoch in _shard_surfaces(index):
        source = index if shard_no is None else index.shards[shard_no]
        sketch = ShardSketch.from_index(source, params, epoch)
        target = sketch_path(directory)
        sketch.save(target)
        written.append(target)
    return written


def load_shard_sketch(directory: str, expected_epoch: int,
                      ) -> "ShardSketch | None":
    """Load one shard's sketch, or ``None`` when it is absent, corrupt,
    or built against a different epoch (stale ⇒ exhaustive recall)."""
    path = sketch_path(directory)
    try:
        sketch = ShardSketch.load(path)
    except FileNotFoundError:
        return None
    except (SketchFormatError, OSError):
        return None
    if sketch.epoch != expected_epoch:
        return None
    return sketch


def load_sketches(index) -> "list[ShardSketch | None] | None":
    """Load every shard sketch of ``index``, aligned with its shards.

    Returns ``None`` when no shard has a usable sketch at all (the
    engine then skips two-stage filtering entirely); otherwise a list
    with ``None`` holes for shards that must fall back to exhaustive
    recall (quarantined, stale, missing — the filter passes their
    candidates through unjudged).  All loaded sketches must share one
    parameter set; stragglers from a partial rebuild with different
    params are dropped to ``None``.
    """
    from ..index.sharded import ShardedIndex

    if isinstance(index, ShardedIndex):
        slots: "list[ShardSketch | None]" = [None] * index.shard_count
        for directory, shard_no, epoch in _shard_surfaces(index):
            slots[shard_no] = load_shard_sketch(directory, epoch)
    else:
        slots = [None]
        for directory, _shard_no, epoch in _shard_surfaces(index):
            slots[0] = load_shard_sketch(directory, epoch)
    loaded = [sketch for sketch in slots if sketch is not None]
    if not loaded:
        return None
    canonical = loaded[0].params
    return [sketch if sketch is None or sketch.params == canonical else None
            for sketch in slots]


def invalidate_sketches(directory: str) -> int:
    """Delete persisted sketches under ``directory`` (top level and any
    ``shard-NN/``); returns how many files were removed.  Called after
    rewrites that renumber offsets — compaction, resharding — where
    waiting for the epoch check would leave dead bytes on disk."""
    removed = 0
    candidates = [sketch_path(directory)]
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        entries = []
    for entry in entries:
        if entry.startswith("shard-"):
            candidates.append(sketch_path(os.path.join(directory, entry)))
    for path in candidates:
        try:
            os.remove(path)
        except FileNotFoundError:
            continue
        except OSError:
            continue
        removed += 1
    return removed
